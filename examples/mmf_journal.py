"""The MultiMedia Forum scenario (Section 1 of the paper).

An interactive online journal: readers access documents through the table
of contents, through database queries on attributes, and through vague
content-based queries; the editorial team adds and modifies documents at
any time.  This example exercises all of it, including the paper's two
Section 4.4 queries verbatim and the update-propagation workflow of
Section 4.6.

Run:  python examples/mmf_journal.py
"""

from repro.core import DocumentSystem
from repro.sgml.mmf import build_document, mmf_dtd
from repro.workloads.corpus import CorpusGenerator, load_corpus

system = DocumentSystem()
dtd = mmf_dtd()
system.register_dtd(dtd)

# --- the journal issue: a seeded corpus plus two hand-written articles ----
generator = CorpusGenerator(seed=7)
load_corpus(system, generator.corpus(documents=12, paragraphs=4, sections=1))
system.add_document(
    build_document(
        "WWW and NII: a Survey",
        [
            "the www hypertext web browsers and servers multiply",
            "the nii national information infrastructure funds expansion",
            "archives and mirrors keep the content available",
        ],
        year="1994",
        author="volz",
    ),
    dtd=dtd,
)
travel = system.add_document(
    build_document(
        "Travel Report: Darmstadt",
        ["the gmd ipsi institute hosts the multimedia forum journal"],
        year="1994",
        author="boehm",
        doc_type="report",
    ),
    dtd=dtd,
)

session = system.session
coll_para = session.create_collection(
    "collPara", "ACCESS p FROM p IN PARA", update_policy="deferred"
)
session.index(coll_para)

# --- access path 1: the table of contents (structural navigation) ---------
print("== Table of contents ==")
for doc in system.db.instances_of("MMFDOC"):
    title = doc.send("getAttributeValue", "TITLE")
    paras = len(doc.send("getDescendants", "PARA"))
    print(f"  {title}  ({doc.send('getAttributeValue', 'YEAR')}, {paras} paragraphs)")

# --- access path 2: attribute queries ("all travel reports") --------------
print("\n== All reports ==")
for (title,) in system.query(
    "ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC "
    "WHERE d -> getAttributeValue('TYPE') = 'report'"
):
    print(f"  {title}")

# --- access path 3: the paper's mixed queries ------------------------------
print("\n== Section 4.4 query 1: WWW paragraphs with their length ==")
rows = system.query(
    "ACCESS p, p -> length() FROM p IN PARA "
    "WHERE p -> getIRSValue (collPara, 'WWW') > 0.5;",
    {"collPara": coll_para},
)
for para, length in rows:
    print(f"  {para.send('getTextContent')[:56]!r}  length={length}")

print("\n== Section 4.4 query 2: 1994 docs, WWW paragraph then NII paragraph ==")
rows = system.query(
    "ACCESS d -> getAttributeValue ('TITLE') "
    "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
    "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
    "p1 -> getNext() == p2 AND "
    "p1 -> getContaining ('MMFDOC') == d AND "
    "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
    "p2 -> getIRSValue (collPara, 'NII') > 0.4;",
    {"collPara": coll_para},
)
for (title,) in rows:
    print(f"  {title}")

# --- the editorial team at work (Section 4.6) ------------------------------
print("\n== Editorial updates (deferred propagation) ==")
new_para = system.loader.insert_element(
    travel, "PARA", "a new paragraph about the www workshop in darmstadt"
)
coll_para.send("insertObject", new_para)
print(f"  pending operations: {coll_para.get('pending_ops')}")

# A reader's query forces propagation before evaluation:
hits = session.query(coll_para, "workshop")
print(f"  after reader query, new paragraph retrievable: {new_para.oid in hits.oids()}")
print(f"  forced propagations: {system.context.counters.forced_propagations}")

# An insert-then-delete sequence never reaches the IRS:
doomed = system.loader.insert_element(travel, "PARA", "temporary text")
coll_para.send("insertObject", doomed)
coll_para.send("deleteObject", doomed)
system.loader.remove_element(doomed)
print(f"  annihilated operations: {system.context.counters.updates_cancelled}")
