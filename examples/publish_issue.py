"""Publishing an MMF issue: SGML objects to HTML with relevance marks.

The full journal loop: documents are fragmented into the database, a reader
issues a vague content query, and the issue is rendered to HTML with the
relevant paragraphs highlighted — storage, retrieval and publishing from
one object base.

Run:  python examples/publish_issue.py [output.html]
"""

import sys

from repro.core import DocumentSystem
from repro.sgml.export import HTMLExporter
from repro.sgml.mmf import build_document, mmf_dtd

system = DocumentSystem()
dtd = mmf_dtd()
system.register_dtd(dtd)

issue = [
    build_document(
        "The Web in 1994",
        [
            "the www grew from a physics tool into a mass medium this year",
            "browsers now render images inline and follow hypertext links",
        ],
        abstract="a review of the world wide web's breakthrough year",
        year="1994",
    ),
    build_document(
        "Infrastructure Funding",
        [
            "the nii program allocates funding for regional networks",
            "universities connect their campuses to the backbone",
        ],
        year="1994",
    ),
]
roots = [system.add_document(doc, dtd=dtd) for doc in issue]

session = system.session
collection = session.create_collection("collPara", "ACCESS p FROM p IN PARA")
session.index(collection)

# The reader's vague information need:
values = session.query(collection, "#or(www hypertext)").to_dict()
print(f"query '#or(www hypertext)' matched {len(values)} paragraphs")

exporter = HTMLExporter(highlight_values=values, highlight_threshold=0.42)
pages = [exporter.render_page(root) for root in roots]

output_path = sys.argv[1] if len(sys.argv) > 1 else None
if output_path:
    with open(output_path, "w", encoding="utf-8") as fh:
        fh.write("\n<hr>\n".join(pages))
    print(f"wrote {output_path}")
else:
    for page in pages:
        marked = page.count("<mark>")
        title = page.split("<title>")[1].split("</title>")[0]
        print(f"\n--- {title} ({marked} highlighted paragraphs) ---")
        print(page[:400])
