"""Tuning deriveIRSValue (Section 4.5.2) on the Figure 4 document base.

Reproduces the paper's worked example, compares every shipped derivation
scheme, and registers a custom application-defined scheme — the paper's
whole point being that "the computation is left open to the application."

Run:  python examples/derivation_tuning.py
"""

from repro.core import DocumentSystem
from repro.core.derivation import register_scheme, derive_maximum
from repro.workloads.figure4 import (
    EXPECTED_PAIRS,
    load_figure4,
    rank_documents,
    satisfied_pairs,
)
from repro.workloads.metrics import print_table

system = DocumentSystem()
setup = load_figure4(system)
roots, collection = setup["roots"], setup["collection"]

QUERY = "#and(WWW NII)"

print("Document base (Figure 4): M1..M4 with paragraphs P1..P11")
print("Query:", QUERY)
print("Paper constraints: M2 above all; M3 above M4 and M1.\n")

rows = []
for scheme in (
    "maximum", "average", "weighted_type", "length_weighted",
    "subquery", "subquery_locality",
):
    ranking = rank_documents(roots, collection, QUERY, scheme)
    rows.append(
        [
            scheme,
            " > ".join(name for name, _v in ranking),
            f"{len(satisfied_pairs(ranking))}/{len(EXPECTED_PAIRS)}",
        ]
    )
print_table("Shipped derivation schemes", ["scheme", "ranking", "paper pairs"], rows)


# -- a custom application scheme ---------------------------------------------
def penalize_short_documents(collection_obj, irs_query, obj):
    """Example application scheme: component max, damped for thin documents."""
    base = derive_maximum(collection_obj, irs_query, obj)
    components = len(obj.send("getDescendants", "PARA"))
    return base * min(1.0, components / 3.0)


register_scheme("short_penalty", penalize_short_documents)
ranking = rank_documents(roots, collection, QUERY, "short_penalty")
print("\ncustom 'short_penalty' scheme:",
      " > ".join(name for name, _v in ranking))

# -- per-class override: MMFDOCs decide for themselves -------------------------
system.db.schema.get_class("MMFDOC").add_method(
    "deriveIRSValue",
    lambda obj, coll, query: 0.99 if obj.get("sgml_attributes") else 0.5,
)
collection.set("buffer", {})
value = roots["M1"].send("getIRSValue", collection, QUERY)
print(f"\nper-class override on MMFDOC returns {value} (bypasses the registry)")
