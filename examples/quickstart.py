"""Quickstart: couple an OODBMS and an IRS in ~40 lines.

Builds a DocumentSystem, loads two SGML documents, creates a paragraph
COLLECTION, and runs a mixed query combining a structural attribute filter
with a content-based relevance predicate — the paper's headline capability.

Run:  python examples/quickstart.py
"""

from repro.core import DocumentSystem
from repro.sgml.mmf import build_document, mmf_dtd

# 1. One facade wires OODBMS + IRS + SGML loader + coupling together.
system = DocumentSystem()
dtd = mmf_dtd()
system.register_dtd(dtd)

# 2. Fragment SGML documents into database objects (one per element).
system.add_document(
    build_document(
        "Telnet",
        [
            "Telnet is a protocol for remote terminal sessions",
            "Telnet enables interactive logins on remote hosts",
        ],
        year="1993",
    ),
    dtd=dtd,
)
system.add_document(
    build_document(
        "The Web",
        [
            "The WWW connects hypertext documents worldwide",
            "The NII initiative funds the WWW infrastructure",
        ],
        year="1994",
    ),
    dtd=dtd,
)

# 3. A COLLECTION with a specification query: paragraphs become IRS documents.
session = system.session
coll_para = session.create_collection(
    "collPara", "ACCESS p FROM p IN PARA", derivation="maximum"
)
session.index(coll_para)
print(f"indexed {coll_para.send('memberCount')} paragraph objects")

# 4. Pure content-based access: a ranked ResultSet, best hit first.
hits = session.query(coll_para, "WWW")
print(f"ranked hits for 'WWW': {[round(s, 3) for s in hits.scores()]}")

# 5. A mixed query: structure (YEAR) + content (relevance to 'WWW').
rows = system.query(
    "ACCESS d -> getAttributeValue('TITLE'), p "
    "FROM d IN MMFDOC, p IN PARA "
    "WHERE d -> getAttributeValue('YEAR') = '1994' AND "
    "p -> getContaining('MMFDOC') == d AND "
    "p -> getIRSValue(collPara, 'WWW') > 0.4",
    {"collPara": coll_para},
)
print("\n1994 documents with WWW-relevant paragraphs:")
for title, para in rows:
    value = para.send("getIRSValue", coll_para, "WWW")
    print(f"  {title!r}: {para.send('getTextContent')[:50]!r}  (IRS value {value:.3f})")

# 6. Objects NOT in the collection derive their value from components.
doc = rows[0][1].send("getContaining", "MMFDOC")
derived = doc.send("getIRSValue", coll_para, "WWW")
print(f"\nwhole-document value (derived from paragraphs): {derived:.3f}")
