"""Granularity strategies side by side (Section 4.3).

Indexes one corpus under every granularity policy the paper discusses and
prints the storage/answerability trade-off, then shows how a query about
paragraphs fails under document granularity and succeeds under element
granularity with identical application code.

Run:  python examples/granularity_strategies.py
"""

from repro.core import DocumentSystem
from repro.core.granularity import standard_policies
from repro.workloads.corpus import CorpusGenerator, load_corpus
from repro.workloads.metrics import print_table

system = DocumentSystem()
generator = CorpusGenerator(seed=21)
load_corpus(system, generator.corpus(documents=10, paragraphs=4, sections=1))

rows = []
collections = {}
for policy in standard_policies():
    collection = policy.build(system.db)
    collections[policy.name] = collection
    irs = system.engine.collection(collection.get("irs_name"))
    rows.append(
        [
            policy.name,
            policy.description,
            len(irs),
            irs.index.posting_count,
            irs.indexed_bytes(),
        ]
    )

print_table(
    "Granularity policies (Section 4.3)",
    ["policy", "description", "IRS docs", "postings", "index bytes"],
    rows,
)

# -- the paragraph question under two granularities -------------------------
print("\nWho answers 'which paragraphs discuss www?' directly?")
for name in ("doc_mmfdoc", "type_para"):
    hits = system.session.query(collections[name], "www")
    classes = sorted({hit.element.class_name for hit in hits})
    print(f"  {name:14s} -> {len(hits):3d} results of class {classes}")

# -- document values still available everywhere via derivation ---------------
print("\nWhole-document relevance for 'www' (derived where not indexed):")
# Pick a document that actually discusses www.
doc = system.session.query(collections["doc_mmfdoc"], "www")[0].element
for name in ("doc_mmfdoc", "type_para", "leaves"):
    value = doc.send("getIRSValue", collections[name], "www")
    direct = collections[name].send("containsObject", doc)
    how = "direct" if direct else "derived from components"
    print(f"  {name:14s} -> {value:.3f}  ({how})")
