"""Advanced retrieval: proximity operators, relevance feedback, aggregates.

Shows the capabilities layered on top of the paper's coupling: phrase and
window queries (#odN/#uwN over positional postings), one Rocchio feedback
round through the COLLECTION's expandQuery method, and aggregate mixed
queries (GROUP BY over content predicates).

Run:  python examples/advanced_retrieval.py
"""

from repro.core import DocumentSystem
from repro.core.feedback import install_feedback_method
from repro.sgml.mmf import build_document, mmf_dtd

system = DocumentSystem()
dtd = mmf_dtd()
system.register_dtd(dtd)
install_feedback_method(system.db)

documents = [
    build_document(
        "IR Textbook",
        [
            "information retrieval systems index large document collections",
            "an inverted index maps terms to the documents containing them",
        ],
        year="1994",
    ),
    build_document(
        "Survey",
        [
            "retrieval of information from databases differs from searching",
            "ranking models estimate the relevance of each candidate",
        ],
        year="1994",
    ),
    build_document(
        "Tutorial",
        ["information about retrieval effectiveness and evaluation measures"],
        year="1993",
    ),
]
for document in documents:
    system.add_document(document, dtd=dtd)

session = system.session
coll = session.create_collection("collPara", "ACCESS p FROM p IN PARA")
session.index(coll)

# -- proximity: the phrase vs loose co-occurrence --------------------------
print("phrase  #od1(information retrieval):")
for oid, value in sorted(session.query(coll, "#od1(information retrieval)").to_dict().items()):
    text = system.db.get_object(oid).send("getTextContent")
    print(f"  {value:.3f}  {text[:60]}")

print("\nwindow  #uw8(information retrieval):")
for oid, value in sorted(session.query(coll, "#uw8(information retrieval)").to_dict().items()):
    text = system.db.get_object(oid).send("getTextContent")
    print(f"  {value:.3f}  {text[:60]}")

# -- feedback: expand from a judged-relevant paragraph -----------------------
initial = session.query(coll, "ranking")
judged = [hit.element for hit in initial]
expanded = coll.send("expandQuery", "ranking", judged)
print(f"\nexpanded query: {expanded[:90]}...")
after = session.query(coll, expanded)
print(f"results before feedback: {len(initial)}, after: {len(after)}")

# -- aggregates: relevance statistics per document ----------------------------
rows = system.query(
    "ACCESS d -> getAttributeValue('TITLE'), COUNT(*), "
    "AVG(p -> getIRSValue(c, 'retrieval')) "
    "FROM d IN MMFDOC, p IN PARA "
    "WHERE p -> getContaining('MMFDOC') == d GROUP BY d",
    {"c": coll},
)
print("\nper-document relevance statistics for 'retrieval':")
for title, count, avg in rows:
    print(f"  {title:12s}  paragraphs={count}  avg value={avg:.3f}")
