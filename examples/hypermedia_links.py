"""Hypermedia retrieval (Section 5): images and implies-links.

Shows the two Section 5 mechanisms with no new coupling machinery:
text modes make figures retrievable through the text that references them,
and implies-links both extend a node's IRS document and drive value
derivation for unrepresented nodes.

Run:  python examples/hypermedia_links.py
"""

from repro.core import DocumentSystem
from repro.hypermedia import (
    IMPLIES_TEXT_MODE,
    MEDIA_TEXT_MODE,
    create_link,
    install_hypermedia_text_modes,
    register_link_derivation,
)
from repro.hypermedia.links import DESCRIBES, IMPLIES
from repro.sgml.mmf import build_document, mmf_dtd

system = DocumentSystem()
dtd = mmf_dtd()
system.register_dtd(dtd)
install_hypermedia_text_modes(system.db)
register_link_derivation()

root = system.add_document(
    build_document(
        "Web Topology",
        ["the www topology graph below shows exponential growth of servers"],
        figures=["node and edge diagram"],
    ),
    dtd=dtd,
)
figure = system.db.instances_of("FIGURE")[0]
paragraph = system.db.instances_of("PARA")[0]
create_link(system.db, paragraph, figure, DESCRIBES)

# -- images retrieved through referencing text -------------------------------
session = system.session
caption_only = session.create_collection(
    "figures_caption", "ACCESS f FROM f IN FIGURE", text_mode=0
)
session.index(caption_only)
media = session.create_collection(
    "figures_media", "ACCESS f FROM f IN FIGURE", text_mode=MEDIA_TEXT_MODE
)
session.index(media)

print("query 'www' against figure collections:")
print(f"  caption-only text: {len(session.query(caption_only, 'www'))} hits")
print(f"  media text mode:   {len(session.query(media, 'www'))} hits")
print(f"  figure's media text: {figure.send('getText', MEDIA_TEXT_MODE)!r}")

# -- implies-links extend a node's IRS document -------------------------------
conclusion = system.add_document(
    build_document("Conclusions", ["therefore the trend will continue"]),
    dtd=dtd,
)
conclusion_para = conclusion.send("getDescendants", "PARA")[0]
create_link(system.db, paragraph, conclusion_para, IMPLIES)

augmented = session.create_collection(
    "paras_implies", "ACCESS p FROM p IN PARA", text_mode=IMPLIES_TEXT_MODE
)
session.index(augmented)
hits = session.query(augmented, "www")
print("\nquery 'www' against implies-augmented paragraphs:")
print(f"  conclusion paragraph retrievable: {conclusion_para.oid in hits.oids()}")

# -- link-based derivation for unrepresented nodes ----------------------------
plain = session.create_collection(
    "paras_plain", "ACCESS p FROM p IN PARA", derivation="link_propagation"
)
session.index(plain)
value = conclusion.send("getIRSValue", plain, "www")
print(f"\n'Conclusions' document value for 'www' via link propagation: {value:.3f}")
