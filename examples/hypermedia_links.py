"""Hypermedia retrieval (Section 5): images and implies-links.

Shows the two Section 5 mechanisms with no new coupling machinery:
text modes make figures retrievable through the text that references them,
and implies-links both extend a node's IRS document and drive value
derivation for unrepresented nodes.

Run:  python examples/hypermedia_links.py
"""

from repro.core import DocumentSystem
from repro.core.collection import create_collection, get_irs_result, index_objects
from repro.hypermedia import (
    IMPLIES_TEXT_MODE,
    MEDIA_TEXT_MODE,
    create_link,
    install_hypermedia_text_modes,
    register_link_derivation,
)
from repro.hypermedia.links import DESCRIBES, IMPLIES
from repro.sgml.mmf import build_document, mmf_dtd

system = DocumentSystem()
dtd = mmf_dtd()
system.register_dtd(dtd)
install_hypermedia_text_modes(system.db)
register_link_derivation()

root = system.add_document(
    build_document(
        "Web Topology",
        ["the www topology graph below shows exponential growth of servers"],
        figures=["node and edge diagram"],
    ),
    dtd=dtd,
)
figure = system.db.instances_of("FIGURE")[0]
paragraph = system.db.instances_of("PARA")[0]
create_link(system.db, paragraph, figure, DESCRIBES)

# -- images retrieved through referencing text -------------------------------
caption_only = create_collection(
    system.db, "figures_caption", "ACCESS f FROM f IN FIGURE", text_mode=0
)
index_objects(caption_only)
media = create_collection(
    system.db, "figures_media", "ACCESS f FROM f IN FIGURE",
    text_mode=MEDIA_TEXT_MODE,
)
index_objects(media)

print("query 'www' against figure collections:")
print(f"  caption-only text: {len(get_irs_result(caption_only, 'www'))} hits")
print(f"  media text mode:   {len(get_irs_result(media, 'www'))} hits")
print(f"  figure's media text: {figure.send('getText', MEDIA_TEXT_MODE)!r}")

# -- implies-links extend a node's IRS document -------------------------------
conclusion = system.add_document(
    build_document("Conclusions", ["therefore the trend will continue"]),
    dtd=dtd,
)
conclusion_para = conclusion.send("getDescendants", "PARA")[0]
create_link(system.db, paragraph, conclusion_para, IMPLIES)

augmented = create_collection(
    system.db, "paras_implies", "ACCESS p FROM p IN PARA",
    text_mode=IMPLIES_TEXT_MODE,
)
index_objects(augmented)
values = get_irs_result(augmented, "www")
print("\nquery 'www' against implies-augmented paragraphs:")
print(f"  conclusion paragraph retrievable: {conclusion_para.oid in values}")

# -- link-based derivation for unrepresented nodes ----------------------------
plain = create_collection(
    system.db, "paras_plain", "ACCESS p FROM p IN PARA",
    derivation="link_propagation",
)
index_objects(plain)
value = conclusion.send("getIRSValue", plain, "www")
print(f"\n'Conclusions' document value for 'www' via link propagation: {value:.3f}")
