"""SHARDING — scatter-gather top-k throughput vs the inline union path.

Builds the same seeded corpus (≥100k documents at full size) unsharded
and sharded at several worker counts, measures ranked top-k throughput
through each configuration, and — on every measured query — verifies the
scatter results are *bit-identical* to the unsharded reference.

Honesty contract: process-parallel scoring can only pay off when the
host actually has cores to scatter over.  The artifact records
``cpus`` (``os.cpu_count()``); the ≥2.5x acceptance assertion for
4 workers vs 1 only arms when at least 4 CPUs are present — on a
single-core runner the JSON reports the (expected <1x) measured ratio
instead of pretending.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_sharding.py            # full size
    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke    # CI-sized

Writes ``BENCH_sharding.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.irs.engine import IRSEngine

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_sharding.json")

TOP_K = 10

QUERIES = [
    "topic0",
    "topic1 topic4",
    "#sum(topic0 topic2 topic7)",
    "#sum(topic3 topic5 topic8 topic9)",
    "#wsum(2 topic0 1 topic8 0.5 topic9)",
    "#wsum(3 topic6 1 topic1)",
]


def generate_texts(documents: int, seed: int) -> list:
    """Seeded Zipf-flavoured texts (same shape as the other benches)."""
    rng = random.Random(seed)
    vocabulary = [f"word{i:04d}" for i in range(1200)]
    for i in range(10):
        vocabulary.insert(15 + 10 * i, f"topic{i}")
    weights = [1.0 / rank for rank in range(1, len(vocabulary) + 1)]
    return [
        " ".join(rng.choices(vocabulary, weights, k=rng.randint(20, 60)))
        for _ in range(documents)
    ]


def build_engine(texts: list, shard_count: int) -> IRSEngine:
    engine = IRSEngine(shard_count=shard_count, result_cache_size=0)
    engine.create_collection("bench")
    for text in texts:
        engine.index_document("bench", text)
    return engine


def measure(engine, rounds: int, reference=None) -> dict:
    """Timed query rounds; verifies exactness against ``reference``."""
    latencies = []
    mismatches = 0
    started_all = perf_counter()
    for round_index in range(rounds):
        query = QUERIES[round_index % len(QUERIES)]
        started = perf_counter()
        values = engine.query("bench", query, model="inquery", top_k=TOP_K).values
        latencies.append(perf_counter() - started)
        if reference is not None and values != reference[query]:
            mismatches += 1
    elapsed = perf_counter() - started_all
    latencies.sort()
    return {
        "rounds": rounds,
        "queries_per_sec": round(rounds / elapsed, 2),
        "p50_ms": round(latencies[len(latencies) // 2] * 1000.0, 3),
        "p99_ms": round(latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1000.0, 3),
        "mismatches": mismatches,
    }


def run(smoke: bool, output: str, seed: int) -> dict:
    documents = 8_000 if smoke else 100_000
    rounds = 30 if smoke else 120
    worker_counts = [1, 2] if smoke else [1, 2, 4]
    cpus = os.cpu_count() or 1

    print(f"corpus: {documents} documents, {cpus} cpus")
    texts = generate_texts(documents, seed)

    # Unsharded inline reference: the exactness baseline and the bar every
    # scatter configuration is compared against.
    engine = build_engine(texts, shard_count=0)
    reference = {
        query: engine.query("bench", query, model="inquery", top_k=TOP_K).values
        for query in QUERIES
    }
    inline = measure(engine, rounds)
    del engine
    print(f"{'inline':<10} {inline['queries_per_sec']:>8.2f} q/s   p50 {inline['p50_ms']:>7.2f} ms")

    results = {
        "benchmark": "sharding",
        "description": (
            "scatter-gather top-k throughput over per-shard worker processes "
            "vs the inline union path, with bit-exactness verified per query"
        ),
        "smoke": smoke,
        "seed": seed,
        "cpus": cpus,
        "documents": documents,
        "top_k": TOP_K,
        "queries": QUERIES,
        "inline": inline,
        "scatter": [],
    }

    throughput = {}
    for workers in worker_counts:
        engine = build_engine(texts, shard_count=workers)
        engine.attach_shard_executor()
        try:
            # Warm-up outside the timing: ships each shard replica to its
            # worker (the expensive first sync) and populates impact caches.
            for query in QUERIES:
                values = engine.query(
                    "bench", query, model="inquery", top_k=TOP_K
                ).values
                assert values == reference[query], (
                    f"scatter diverged from inline on warm-up: {query!r}"
                )
            row = measure(engine, rounds, reference)
        finally:
            engine.shutdown_shards()
        del engine
        row["workers"] = workers
        throughput[workers] = row["queries_per_sec"]
        results["scatter"].append(row)
        print(
            f"{workers} workers {row['queries_per_sec']:>8.2f} q/s   "
            f"p50 {row['p50_ms']:>7.2f} ms   mismatches {row['mismatches']}"
        )

    for row in results["scatter"]:
        assert row["mismatches"] == 0, (
            f"{row['workers']}-worker scatter produced non-identical rankings"
        )

    if 4 in throughput:
        results["speedup_4_vs_1"] = round(throughput[4] / throughput[1], 2)
        print(f"4 workers vs 1: {results['speedup_4_vs_1']}x")
        if cpus >= 4:
            assert results["speedup_4_vs_1"] >= 2.5, (
                f"expected >=2.5x at 4 workers on a {cpus}-cpu host, got "
                f"{results['speedup_4_vs_1']}x"
            )
        else:
            results["speedup_note"] = (
                f"host has {cpus} cpu(s); the >=2.5x acceptance bar requires "
                ">=4 cores and is not armed on this run"
            )
            print(results["speedup_note"])

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--output", default=OUTPUT_PATH)
    parser.add_argument("--seed", type=int, default=42)
    options = parser.parse_args()
    run(options.smoke, options.output, options.seed)


if __name__ == "__main__":
    main()
