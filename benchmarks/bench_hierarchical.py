"""HIER — Section 4.3.1 alternative (2): single-level storage, every level
queryable.

[SAZ94] reduce the overhead of multiple per-level indexes "to about 30%"
via compression.  Our equivalent removes the redundancy at the source: only
leaves are physically indexed and any level's exact INQUERY values are
computed from aggregated subtree statistics.

The table compares, for one corpus:

* storage: leaf-only index vs the fully redundant all-elements index
  (overhead percentage relative to a single-document-level index);
* correctness: max |delta| between hierarchically computed values and a
  direct per-level index at the MMFDOC and PARA levels;
* query cost: wholesale level scoring vs a direct collection query.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _get_irs_result
from repro.core.granularity import all_elements, document_level, element_type, leaf_level
from repro.core.hierarchical import hierarchical_result, scorer_for

QUERIES = ["www", "#and(www nii)", "#or(telnet database)"]


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=15, paragraphs=4, sections=1, seed=42)
    collections = {
        "leaf": leaf_level().build(system.db),
        "doc_direct": document_level().build(system.db),
        "para_direct": element_type("PARA").build(system.db),
        "all": all_elements().build(system.db),
    }
    return system, collections


def test_hierarchical_storage_and_exactness(setup, report, benchmark):
    system, collections = setup
    leaf_irs = system.engine.collection(collections["leaf"].get("irs_name"))
    doc_irs = system.engine.collection(collections["doc_direct"].get("irs_name"))
    all_irs = system.engine.collection(collections["all"].get("irs_name"))

    def verify():
        deltas = []
        for query in QUERIES:
            hier_doc = hierarchical_result(collections["leaf"], query, "MMFDOC")
            direct_doc = _get_irs_result(collections["doc_direct"], query)
            for oid, value in direct_doc.items():
                deltas.append(abs(hier_doc.get(oid, 0.0) - value))
            hier_para = hierarchical_result(collections["leaf"], query, "PARA")
            direct_para = _get_irs_result(collections["para_direct"], query)
            for oid, value in direct_para.items():
                deltas.append(abs(hier_para.get(oid, 0.0) - value))
        return max(deltas)

    max_delta = benchmark.pedantic(verify, rounds=3, iterations=1)

    base = doc_irs.indexed_bytes()
    rows = [
        ["document level only (baseline)", base, "0%", "doc"],
        ["leaf level + hierarchical scoring", leaf_irs.indexed_bytes(),
         f"{(leaf_irs.indexed_bytes() - base) / base:+.0%}", "every level, exact"],
        ["all elements (redundant)", all_irs.indexed_bytes(),
         f"{(all_irs.indexed_bytes() - base) / base:+.0%}", "every level, direct"],
    ]
    report(
        "hierarchical_storage",
        "Section 4.3.1 alt (2): storage vs level coverage",
        ["strategy", "index bytes", "overhead vs doc-level", "levels answerable"],
        rows,
        notes=(
            f"Hierarchically computed values agree with direct per-level "
            f"indexes to max |delta| = {max_delta:.2e} across {len(QUERIES)} "
            f"queries x 2 levels.  [SAZ94] reach ~30% overhead for multi-level "
            f"coverage via compression; deriving levels from leaf postings "
            f"keeps overhead near the leaf/document ratio while staying exact."
        ),
    )
    assert max_delta < 1e-9
    assert all_irs.indexed_bytes() > 1.5 * leaf_irs.indexed_bytes()


def test_hierarchical_query_cost(setup, report, benchmark):
    system, collections = setup
    scorer_for(collections["leaf"])  # warm the scorer caches once

    def hierarchical():
        return hierarchical_result(collections["leaf"], "www", "MMFDOC")

    started = perf_counter()
    direct_result = _get_irs_result(collections["doc_direct"], "#max(www www)")
    direct_seconds = perf_counter() - started

    started = perf_counter()
    hier_result = hierarchical()
    hier_seconds = perf_counter() - started
    benchmark(hierarchical)

    report(
        "hierarchical_cost",
        "Section 4.3.1 alt (2): per-query compute cost of derived levels",
        ["strategy", "results", "seconds (cold)"],
        [
            ["direct document index", len(direct_result), direct_seconds],
            ["hierarchical from leaves", len(hier_result), hier_seconds],
        ],
        notes=(
            "The space saving is paid per query: level statistics are "
            "aggregated on demand (then cached).  This is the classic "
            "store-vs-compute trade; the coupling lets applications pick per "
            "collection."
        ),
    )
    assert hier_result
