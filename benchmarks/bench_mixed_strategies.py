"""MIXED — Section 4.5.3: independent vs IRS-first evaluation.

Both strategies answer identically; the table sweeps content selectivity
(threshold) and reports per-object method calls, tuples examined and time.

Expected shape: IRS-first never calls getIRSValue per object; its advantage
grows as the content predicate gets more selective (higher threshold =
fewer candidates survive), which is exactly why [GTZ93]/[HaW92] adopted it.
The caveat the paper states also shows: with document-level objects *not*
represented in the collection, IRS-first misses derived answers.
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, index_objects
from repro.core.mixed import evaluate_independent, evaluate_irs_first

THRESHOLDS = [0.42, 0.45, 0.5, 0.55]


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=40, paragraphs=5, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def test_mixed_strategy_sweep(setup, report, benchmark):
    system, collection = setup

    def sweep():
        results = []
        for threshold in THRESHOLDS:
            query = (
                f"ACCESS p FROM p IN PARA "
                f"WHERE p -> getIRSValue(coll, 'www') > {threshold}"
            )
            collection.set("buffer", {})
            independent = evaluate_independent(system.db, query, {"coll": collection})
            irs_first = evaluate_irs_first(system.db, query, {"coll": collection})
            results.append((threshold, independent, irs_first))
        return results

    results = benchmark.pedantic(sweep, rounds=3, iterations=1)

    rows = []
    for threshold, independent, irs_first in results:
        assert sorted(str(r[0].oid) for r in independent.rows) == sorted(
            str(r[0].oid) for r in irs_first.rows
        )
        rows.append(
            [
                threshold,
                len(independent.rows),
                independent.method_calls,
                irs_first.method_calls,
                independent.tuples_examined,
                irs_first.tuples_examined,
                independent.seconds,
                irs_first.seconds,
            ]
        )
    report(
        "mixed_strategies",
        "Section 4.5.3: independent vs IRS-first evaluation (sweep on threshold)",
        [
            "threshold", "rows",
            "indep method calls", "irs1st method calls",
            "indep tuples", "irs1st tuples",
            "indep seconds", "irs1st seconds",
        ],
        rows,
        notes=(
            "Identical answers; the IRS-first strategy replaces per-candidate "
            "getIRSValue calls with one wholesale IRS result, shrinking the "
            "candidate set before structure predicates run."
        ),
    )
    paras = len(system.db.instances_of("PARA"))
    for _t, _r, indep_calls, irs_calls, _it, _ift, _is, _ifs in rows:
        assert indep_calls == paras
        assert irs_calls == 0


def test_mixed_strategy_derivation_caveat(setup, report, benchmark):
    """IRS-first cannot see derived values — the paper's stated limitation."""
    system, collection = setup
    query = (
        "ACCESS d FROM d IN MMFDOC "
        "WHERE d -> getIRSValue(coll, 'www') > 0.42"
    )

    def run_all():
        collection.set("buffer", {})
        cold_irs_first = evaluate_irs_first(system.db, query, {"coll": collection})
        collection.set("buffer", {})
        independent = evaluate_independent(system.db, query, {"coll": collection})
        # Figure 3 amends derived values into the buffer, so a warm buffer
        # makes previously derived objects visible even to IRS-first.
        warm_irs_first = evaluate_irs_first(system.db, query, {"coll": collection})
        return cold_irs_first, independent, warm_irs_first

    cold_irs_first, independent, warm_irs_first = benchmark.pedantic(
        run_all, rounds=3, iterations=1
    )
    report(
        "mixed_caveat",
        "Section 4.5.3: IRS-first vs derived values (MMFDOC not in collection)",
        ["strategy", "rows", "why"],
        [
            ["irs_first, cold buffer", len(cold_irs_first.rows),
             "IRS only returns represented text objects"],
            ["independent", len(independent.rows),
             "deriveIRSValue computes per-document values"],
            ["irs_first, warm buffer", len(warm_irs_first.rows),
             "derived values were amended into the buffer (Figure 3)"],
        ],
        notes=(
            "Paper: IRS-first verifies structure conditions 'only ... for the "
            "text objects identified in this first step' — objects answered by "
            "derivation are invisible to a cold IRS-first run.  Once the "
            "independent strategy has derived and buffered their values "
            "(Figure 3: 'insert result into the buffer'), a warm IRS-first run "
            "sees them again."
        ),
    )
    assert len(cold_irs_first.rows) == 0
    assert len(independent.rows) > 0
    assert len(warm_irs_first.rows) == len(independent.rows)
