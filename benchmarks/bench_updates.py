"""UPDATES — mixed read/update workloads: segmented index vs epoch rebuild.

Interleaves index mutations (replace / remove / add) with vector-model
queries against two engine configurations over the same seeded corpus and
operation stream:

* ``segmented`` — the log-structured segment stack (memtable, sealed
  segments, tombstones, background size-tiered merging, per-document
  on-demand norms);
* ``epoch-rebuild`` — the monolithic baseline (``SegmentConfig(enabled=
  False)``), where every epoch bump invalidates the statistics cache and
  the next vector query pays the full O(postings) norm sweep, and every
  removal scans the whole postings dictionary.

Reports update throughput and query-latency percentiles, and writes
``BENCH_updates.json`` at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_updates.py            # full size
    PYTHONPATH=src python benchmarks/bench_updates.py --smoke    # CI-sized

Both modes assert the subsystem's acceptance shape: better mixed-workload
p99 query latency than the epoch-rebuild baseline, and *zero* full-norms
sweeps on the segmented side (the per-document norm memo never rebuilds
wholesale, no matter how many propagations land).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import sys
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.irs.engine import IRSEngine
from repro.irs.segments import SegmentConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_updates.json")

QUERIES = [
    "topic0",
    "topic1 topic4",
    "#sum(topic0 topic2 topic7)",
    "#wsum(2 topic0 1 topic8 0.5 topic9)",
    "#or(topic2 #and(topic5 topic6))",
    "#max(topic3 topic4)",
]


def generate_texts(documents: int, seed: int) -> list:
    """Seeded Zipf-flavoured texts (same shape as bench_scoring's corpus)."""
    rng = random.Random(seed)
    vocabulary = [f"word{i:04d}" for i in range(1200)]
    for i in range(10):
        vocabulary.insert(15 + 10 * i, f"topic{i}")
    weights = [1.0 / rank for rank in range(1, len(vocabulary) + 1)]
    return [
        " ".join(rng.choices(vocabulary, weights, k=rng.randint(20, 60)))
        for _ in range(documents)
    ]


def percentile(samples: list, q: float) -> float:
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def run_regime(
    label: str, segmented: bool, documents: int, operations: int, seed: int
) -> dict:
    """One mixed read/update run; returns its measurements.

    The result LRU is disabled so every query really scores — with an
    update before each query the cache would miss anyway (epoch moved),
    but keeping it out removes the bookkeeping from the measurement.
    """
    config = SegmentConfig() if segmented else SegmentConfig(enabled=False)
    engine = IRSEngine(segment_config=config, result_cache_size=0)
    engine.create_collection("bench")

    texts = generate_texts(documents, seed)
    build_started = perf_counter()
    doc_ids = [engine.index_document("bench", text) for text in texts]
    build_seconds = perf_counter() - build_started
    live = set(doc_ids)

    # Warm the statistics caches so both regimes start from a steady state.
    for query in QUERIES:
        engine.query("bench", query, model="vector")

    if segmented:
        engine.start_merge_scheduler()
    rng = random.Random(seed + 1)
    fresh_texts = iter(generate_texts(operations, seed + 2))
    update_seconds = 0.0
    latencies = []
    try:
        for step in range(operations):
            roll = rng.random()
            started = perf_counter()
            if roll < 0.45:
                doc_id = rng.choice(sorted(live))
                engine.replace_document("bench", doc_id, next(fresh_texts))
            elif roll < 0.7 and len(live) > documents // 2:
                doc_id = rng.choice(sorted(live))
                engine.remove_document("bench", doc_id)
                live.discard(doc_id)
            else:
                live.add(engine.index_document("bench", next(fresh_texts)))
            update_seconds += perf_counter() - started

            query = QUERIES[step % len(QUERIES)]
            started = perf_counter()
            engine.query("bench", query, model="vector")
            latencies.append(perf_counter() - started)
    finally:
        engine.stop_merge_scheduler()

    collection = engine.collection("bench")
    result = {
        "regime": label,
        "documents": documents,
        "operations": operations,
        "build_seconds": round(build_seconds, 4),
        "updates_per_sec": round(operations / update_seconds, 1),
        "query_p50_ms": round(percentile(latencies, 0.50) * 1000.0, 3),
        "query_p99_ms": round(percentile(latencies, 0.99) * 1000.0, 3),
        "stats_invalidations": collection.stats.cache_info()["invalidations"],
    }
    if segmented:
        info = collection.segments.info()
        result["segments"] = {
            "sealed": info["sealed"],
            "seals": info["seals"],
            "merges": info["merges"],
            "tombstones": info["tombstones"],
            "tombstones_purged": info["tombstones_purged"],
        }
        # The acceptance claim "no full-statistics rebuild on the update
        # path": the per-document norm memo must still be populated — a
        # wholesale rebuild would have emptied it between query and here.
        result["norm_memo_entries"] = len(collection.stats._doc_norms)
    return result


def run(smoke: bool, output: str, seed: int) -> dict:
    # The rebuild cliff grows with corpus size; below ~1k documents the
    # baseline's full norm sweep is too cheap to dominate the tail, so even
    # the smoke tier needs a reasonably sized corpus to measure the claim.
    documents = 1500 if smoke else 4000
    operations = 250 if smoke else 1000
    results = {
        "benchmark": "updates",
        "description": (
            "mixed read/update workload: update throughput and query latency "
            "percentiles, segmented log-structured index vs monolithic "
            "epoch-rebuild baseline"
        ),
        "smoke": smoke,
        "seed": seed,
        "queries": QUERIES,
        "workload": {"replace": 0.45, "remove": 0.25, "add": 0.30},
        "regimes": [],
    }
    for label, segmented in (("segmented", True), ("epoch-rebuild", False)):
        regime = run_regime(label, segmented, documents, operations, seed)
        results["regimes"].append(regime)
        print(
            f"{label:<14} {regime['updates_per_sec']:>10.1f} updates/s   "
            f"p50 {regime['query_p50_ms']:>8.2f} ms   "
            f"p99 {regime['query_p99_ms']:>8.2f} ms"
        )

    segmented_run, baseline = results["regimes"]
    results["p99_speedup"] = round(
        baseline["query_p99_ms"] / segmented_run["query_p99_ms"], 2
    )
    results["update_speedup"] = round(
        segmented_run["updates_per_sec"] / baseline["updates_per_sec"], 2
    )
    print(
        f"p99 speedup {results['p99_speedup']}x, "
        f"update throughput {results['update_speedup']}x"
    )

    assert segmented_run["query_p99_ms"] < baseline["query_p99_ms"], (
        "segmented p99 must beat the epoch-rebuild baseline: "
        f"{segmented_run['query_p99_ms']} >= {baseline['query_p99_ms']} ms"
    )
    assert segmented_run["norm_memo_entries"] > 0, (
        "segmented norms must be incrementally maintained, not rebuilt"
    )
    if not smoke:
        assert results["update_speedup"] >= 1.0, (
            "segmented update throughput regressed below the baseline"
        )

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--output", default=OUTPUT_PATH)
    parser.add_argument("--seed", type=int, default=42)
    options = parser.parse_args()
    run(options.smoke, options.output, options.seed)


if __name__ == "__main__":
    main()
