"""NEG — Section 6: negation under open- vs closed-world semantics.

"Negation, for example, has a different meaning in both worlds.  The
semantics of mixed queries including negation remain to be examined."

The table examines them: for ``NOT relevant-to(q) > t`` at several
thresholds, the closed-world (set complement within the collection) and
open-world (complemented belief) answer sets are compared — sizes, overlap,
and the objects only one semantics returns.
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.core.negation import closed_world_not, members, open_world_not

THRESHOLDS = [0.45, 0.55, 0.61, 0.7]


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=25, paragraphs=4, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def test_negation_semantics(setup, report, benchmark):
    system, collection = setup

    def sweep():
        rows = []
        universe = len(members(collection))
        for threshold in THRESHOLDS:
            closed = closed_world_not(collection, "www", threshold)
            open_ = set(open_world_not(collection, "www", threshold))
            rows.append(
                [
                    threshold,
                    universe,
                    len(closed),
                    len(open_),
                    len(closed & open_),
                    len(closed - open_),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    report(
        "negation",
        "Section 6: NOT relevant-to('www') under two negation semantics",
        [
            "threshold", "members",
            "closed-world size", "open-world size",
            "both", "closed only",
        ],
        rows,
        notes=(
            "Closed world: complement of the thresholded result within the "
            "collection — everything without evidence qualifies.  Open world: "
            "complemented belief must *exceed* the threshold; objects without "
            "evidence sit at 1 - default_belief = 0.6, so thresholds above 0.6 "
            "demand positive counter-evidence no absence can provide — the "
            "open-world answer collapses while the closed-world one barely "
            "moves.  This is the divergence the paper leaves as future work."
        ),
    )
    by_threshold = {row[0]: row for row in rows}
    # Above the complemented default belief, open world collapses.
    assert by_threshold[0.7][3] == 0
    assert by_threshold[0.7][2] > 0
    # Below it, the two mostly agree.
    assert by_threshold[0.45][4] > 0
