"""EVAL — TREC-style effectiveness comparison through the coupling.

Retrieval effectiveness (MAP, R-precision, P@5) of the three retrieval
models and, separately, of the derivation schemes at document level, on a
seeded corpus with vocabulary-defined relevance (half the relevant
paragraphs lack the topic's signal term, so effectiveness is not
tautological).  A paired sign test compares the probabilistic model against
the vector-space model.
"""

import random

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.sgml.mmf import build_document, mmf_dtd
from repro.workloads.corpus import FILLER, TOPICS
from repro.workloads.evaluation import evaluate_run, run_from_results, sign_test

N_DOCS_PER_TOPIC = 4


def topic_query(topic: str) -> str:
    """A realistic multi-term information need for ``topic``."""
    vocabulary = TOPICS[topic][:4]
    return f"#sum({' '.join(vocabulary)})"


def _paragraph(rng, topic, with_signal):
    vocabulary = [w for w in TOPICS[topic] if with_signal or w != topic]
    words = [
        rng.choice(vocabulary if rng.random() < 0.5 else FILLER) for _ in range(16)
    ]
    if with_signal and topic not in words:
        words[0] = topic
    if not with_signal:
        words = [w if w != topic else "material" for w in words]
    return " ".join(words)


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(23)
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    qrels = {topic: set() for topic in TOPICS}
    doc_truth = {topic: set() for topic in TOPICS}
    for topic in sorted(TOPICS):
        for index in range(N_DOCS_PER_TOPIC):
            # A weak distractor mentions exactly one topic word in passing —
            # matching but not relevant, so ranking quality matters.
            distractor = " ".join(
                [rng.choice(TOPICS[topic][1:])]
                + [rng.choice(FILLER) for _ in range(15)]
            )
            root = system.add_document(
                build_document(
                    f"{topic}-{index}",
                    [
                        _paragraph(rng, topic, True),
                        _paragraph(rng, topic, False),
                        distractor,
                    ],
                ),
                dtd=dtd,
            )
            doc_truth[topic].add(str(root.oid))
            for para in root.send("getDescendants", "PARA")[:2]:
                qrels[topic].add(str(para.oid))
    return system, qrels, doc_truth


def test_model_effectiveness(setup, report, benchmark):
    system, qrels, _doc_truth = setup

    def build_runs():
        runs = {}
        for model in ("boolean", "vector", "inquery"):
            name = f"ev_{model}"
            if not system.engine.has_collection(name):
                collection = _create_collection(
                    system.db, name, "ACCESS p FROM p IN PARA", model=model
                )
                index_objects(collection)
                system.__dict__.setdefault("_ev_colls", {})[model] = collection
            collection = system._ev_colls[model]
            results = {
                topic: {
                    str(oid): value
                    for oid, value in _get_irs_result(collection, topic_query(topic)).items()
                }
                for topic in qrels
            }
            runs[model] = run_from_results(results)
        return runs

    runs = benchmark.pedantic(build_runs, rounds=3, iterations=1)

    rows = []
    for model, run in runs.items():
        evaluation = evaluate_run(run, qrels)
        rows.append(
            [
                model,
                evaluation.mean_average_precision,
                evaluation.mean_r_precision,
                evaluation.mean_precision_at(5),
            ]
        )
    comparison = sign_test(runs["inquery"], runs["vector"], qrels)
    report(
        "evaluation_models",
        "Retrieval effectiveness by model (vocabulary-defined relevance)",
        ["model", "MAP", "R-prec", "P@5"],
        rows,
        notes=(
            f"Sign test inquery vs vector over {len(qrels)} topics: "
            f"{comparison['wins_a']}-{comparison['wins_b']} "
            f"(ties {comparison['ties']}), p={comparison['p_value']:.3f}.  "
            "Boolean cannot rank, so graded measures suffer; the weighted "
            "models retrieve latent (signal-free) relevant paragraphs via "
            "shared vocabulary."
        ),
    )
    by_model = {row[0]: row for row in rows}
    assert by_model["inquery"][1] >= by_model["boolean"][1]
    assert by_model["vector"][1] > 0.3


def test_derivation_effectiveness_at_document_level(setup, report, benchmark):
    system, _qrels, doc_truth = setup
    collection = _create_collection(
        system.db, "ev_derive", "ACCESS p FROM p IN PARA"
    )
    index_objects(collection)
    docs = system.db.instances_of("MMFDOC")

    def run_scheme(scheme):
        collection.set("derivation", scheme)
        collection.set("buffer", {})
        results = {}
        for topic in doc_truth:
            results[topic] = {
                str(doc.oid): doc.send("getIRSValue", collection, topic_query(topic))
                for doc in docs
            }
        return run_from_results(results)

    rows = []
    for scheme in ("maximum", "average", "subquery_locality", "passage"):
        run = benchmark.pedantic(run_scheme, args=(scheme,), rounds=1) if scheme == "maximum" else run_scheme(scheme)
        evaluation = evaluate_run(run, doc_truth)
        rows.append([scheme, evaluation.mean_average_precision, evaluation.mean_precision_at(5)])
    report(
        "evaluation_derivation",
        "Document-level effectiveness by derivation scheme (single-topic queries)",
        ["scheme", "MAP", "P@5"],
        rows,
        notes=(
            "Documents are never indexed; all values are derived from the "
            "paragraph collection against multi-term topic queries.  Scheme "
            "choice matters most for structured queries (see the FIG4 bench) "
            "— exactly the paper's application-dependence point."
        ),
    )
    for _scheme, map_score, _p5 in rows:
        assert map_score > 0.5
