"""GRAN — Section 4.3: granularity of IRS documents.

Indexes one corpus under every granularity policy and reports IRS
documents, postings, approximate index bytes, the redundancy factor
(indexed tokens / corpus tokens) and which query classes each granularity
answers without derivation.

Expected shape: document-level is smallest but cannot answer element
queries; indexing *every* element with full subtext (the redundant extreme)
multiplies tokens by roughly the average document depth — the overhead
[SAZ94] attacks with compression; the abstract policy keeps every element
addressable at a fraction of the cost.
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.granularity import standard_policies


@pytest.fixture(scope="module")
def system():
    return build_corpus_system(documents=20, paragraphs=5, sections=1, seed=42)


def test_granularity_policies(system, report, benchmark):
    policies = standard_policies()

    built = {}

    def build_all():
        for policy in policies:
            name = f"g_{policy.name}"
            if system.engine.has_collection(name):
                system.engine.drop_collection(name)
                # recreate the COLLECTION object fresh each round
            collection = policy.build(system.db, collection_name=f"{name}_{len(built)}")
            built[policy.name] = collection
        return built

    # build once (timed); keep the final build for reporting
    benchmark.pedantic(build_all, rounds=1, iterations=1)

    corpus_tokens = None
    rows = []
    for policy in policies:
        collection = built[policy.name]
        irs = system.engine.collection(collection.get("irs_name"))
        if policy.name.startswith("doc_"):
            corpus_tokens = irs.index.token_count
    baseline_tokens = corpus_tokens or 1

    from repro.irs.compression import compressed_size

    doc_compressed = None
    for policy in policies:
        collection = built[policy.name]
        irs = system.engine.collection(collection.get("irs_name"))
        para = system.db.instances_of("PARA")[0]
        doc = system.db.instances_of("MMFDOC")[0]
        answers = []
        if collection.send("containsObject", doc):
            answers.append("doc")
        if collection.send("containsObject", para):
            answers.append("para")
        compressed = compressed_size(irs.index)
        if policy.name.startswith("doc_"):
            doc_compressed = compressed
        rows.append(
            [
                policy.name,
                len(irs),
                irs.index.posting_count,
                irs.indexed_bytes(),
                compressed,
                irs.index.token_count / baseline_tokens,
                "+".join(answers) or "none direct",
            ]
        )

    all_row = next(r for r in rows if r[0] == "all_elements")
    saz94_overhead = (all_row[4] - doc_compressed) / doc_compressed
    report(
        "granularity",
        "Section 4.3: granularity policies over one corpus",
        ["policy", "irs_docs", "postings", "raw_bytes", "vbyte_bytes", "redundancy", "direct answers"],
        rows,
        notes=(
            "redundancy = indexed tokens / corpus tokens (document-level = 1.0 "
            "by definition).  The all_elements policy shows the multiple-"
            "indexing overhead [SAZ94] targets; with their mechanism (gap + "
            "variable-byte compression) the all-levels index costs "
            f"{saz94_overhead:+.0%} over the compressed document-level index.  "
            "Equal segments [Cal94] keep redundancy at 1.0 while restoring "
            "sub-document addressability; abstracts trade recall for a tiny "
            "index."
        ),
    )

    by_name = {row[0]: row for row in rows}
    assert by_name["all_elements"][5] > by_name["doc_mmfdoc"][5] * 1.5
    assert by_name["seg30_mmfdoc"][5] == pytest.approx(1.0)
    assert by_name["abstracts"][3] < by_name["all_elements"][3] / 5
    assert by_name["type_para"][6] == "para"
    assert by_name["doc_mmfdoc"][6] == "doc"
    # Compression shrinks every index by >3x (vbyte gaps beat 8-byte ints).
    for row in rows:
        assert row[4] < row[3] / 3


def test_granularity_query_capability(system, report, benchmark):
    """Paragraph queries under document-level vs element-level granularity."""
    from repro.core.collection import _create_collection, _get_irs_result, index_objects

    if not system.engine.has_collection("cap_doc"):
        doc_coll = _create_collection(system.db, "cap_doc", "ACCESS d FROM d IN MMFDOC")
        index_objects(doc_coll)
        para_coll = _create_collection(system.db, "cap_para", "ACCESS p FROM p IN PARA")
        index_objects(para_coll)
        system._cap = (doc_coll, para_coll)
    doc_coll, para_coll = system._cap

    def paragraph_precision(collection):
        """How precisely 'which paragraph mentions www?' is answerable."""
        values = _get_irs_result(collection, "www")
        paras = {
            oid
            for oid in values
            if system.db.get_object(oid).class_name == "PARA"
        }
        return len(paras), len(values)

    para_hits, para_total = benchmark(paragraph_precision, para_coll)
    doc_hits, doc_total = paragraph_precision(doc_coll)
    report(
        "granularity_capability",
        "Section 4.3: paragraph-level questions per granularity",
        ["collection", "paragraph answers", "total answers"],
        [["cap_para (element granularity)", para_hits, para_total],
         ["cap_doc (document granularity)", doc_hits, doc_total]],
        notes=(
            "Paper: with document-level indexing 'content-based queries "
            "refering to individual paragraphs cannot be answered' — the "
            "document collection returns only MMFDOC objects."
        ),
    )
    assert doc_hits == 0
    assert para_hits > 0
