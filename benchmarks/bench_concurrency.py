"""CONCURRENCY — pooled-session throughput under a mixed read/update load.

Many client threads issue IRS queries through one pooled
:class:`repro.Session` while an updater thread keeps inserting member
objects (deferred policy, so arriving queries force propagation).  Measured
per worker count (1/2/4/8): end-to-end query throughput and client-side
tail latency.  Writes ``BENCH_concurrency.json`` at the repository root.

On a single CPU the win does not come from thread parallelism — scoring is
pure Python under the GIL — but from **cross-request batching**: the
dispatcher's window is ``workers x max_batch_per_worker`` requests, and one
window against the same collection becomes one group that propagates
pending updates once, takes one snapshot, and scores each distinct query
once.  More workers, bigger windows, more sharing.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_concurrency.py           # full (5k docs)
    PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke   # CI-sized

The full run asserts the PR's acceptance target (>= 3x throughput at 8
workers vs 1); ``--smoke`` asserts a softer floor suited to small corpora,
where per-request overhead rather than scoring dominates.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import threading
from time import perf_counter, sleep

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.core import DocumentSystem
from repro.service.session import Session
from repro.workloads.corpus import CorpusGenerator, load_corpus

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_concurrency.json")

WORKER_COUNTS = (1, 2, 4, 8)

#: The query mix: signal terms and operator combinations over the corpus
#: topics.  8 distinct queries, so a full 8-worker window (32 requests)
#: deduplicates roughly 4:1 while a 1-worker window (4 requests) barely
#: deduplicates at all.
QUERIES = [
    "www",
    "telnet",
    "#sum(nii infrastructure funding)",
    "#and(database transaction)",
    "#or(multimedia #and(video audio))",
    "#wsum(2 retrieval 1 ranking 0.5 relevance)",
    "#max(hypertext browser server)",
    "#sum(policy #not(telnet))",
]


def build_system(documents: int, paragraphs: int, seed: int) -> DocumentSystem:
    system = DocumentSystem()
    generator = CorpusGenerator(seed=seed)
    generated = generator.corpus(documents=documents, paragraphs=paragraphs)
    system.roots = load_corpus(system, generated)
    return system


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_tier(
    system: DocumentSystem,
    collection,
    workers: int,
    requests: int,
    clients: int,
    update_per: int,
) -> dict:
    """One worker-count tier: identical workload, identical update schedule.

    Updates are paced by request *progress*, not wall clock — one update per
    ``update_per`` completed requests — so every tier performs exactly the
    same number of index mutations at the same workload positions and the
    comparison across worker counts is fair.
    """
    session = Session(system.db, workers=workers)
    latencies = []
    completed = [0]
    progress_lock = threading.Lock()
    errors = []
    clients_done = threading.Event()
    updates_applied = [0]
    root = system.roots[0]

    def client(offset: int, n: int) -> None:
        local = []
        try:
            for i in range(n):
                query = QUERIES[(offset + i) % len(QUERIES)]
                started = perf_counter()
                session.query(collection, query, timeout=120)
                local.append(perf_counter() - started)
                with progress_lock:
                    completed[0] += 1
        except BaseException as exc:
            errors.append(exc)
        with progress_lock:
            latencies.extend(local)

    def updater() -> None:
        try:
            for k in range(requests // update_per):
                while completed[0] < k * update_per:
                    if clients_done.is_set():
                        return
                    sleep(0.0002)
                para = system.loader.insert_element(
                    root, "PARA", f"update {k} telnet database retrieval www"
                )
                collection.send("insertObject", para)
                updates_applied[0] += 1
        except BaseException as exc:
            errors.append(exc)

    per_client = requests // clients
    threads = [
        threading.Thread(target=client, args=(offset, per_client))
        for offset in range(clients)
    ]
    update_thread = threading.Thread(target=updater)

    started = perf_counter()
    update_thread.start()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    clients_done.set()
    update_thread.join()
    session.close()
    if errors:
        raise errors[0]

    total = per_client * clients
    return {
        "workers": workers,
        "window_size": workers * 4,
        "requests": total,
        "clients": clients,
        "updates_applied": updates_applied[0],
        "elapsed_seconds": round(elapsed, 3),
        "throughput_qps": round(total / elapsed, 2),
        "latency_ms": {
            "mean": round(statistics.mean(latencies) * 1000, 2),
            "p50": round(percentile(latencies, 0.50) * 1000, 2),
            "p95": round(percentile(latencies, 0.95) * 1000, 2),
            "p99": round(percentile(latencies, 0.99) * 1000, 2),
            "max": round(max(latencies) * 1000, 2),
        },
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized corpus and load")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    if args.smoke:
        documents, paragraphs = 120, 5      # 600 IRS documents
        requests, clients = 192, 48
        update_per = 4
        target = 1.3
    else:
        documents, paragraphs = 1000, 5     # the 5k-document corpus
        requests, clients = 384, 48
        update_per = 4
        target = 3.0

    print(
        f"corpus: {documents * paragraphs} paragraph documents "
        f"({documents} docs x {paragraphs}), {requests} requests, "
        f"{clients} clients, one update per {update_per} requests"
    )
    build_started = perf_counter()
    system = build_system(documents, paragraphs, args.seed)
    collection = system.session.create_collection(
        "collPara", "ACCESS p FROM p IN PARA", update_policy="deferred"
    )
    system.session.index(collection)
    print(f"built and indexed in {perf_counter() - build_started:.1f} s")

    tiers = []
    for workers in WORKER_COUNTS:
        tier = run_tier(system, collection, workers, requests, clients, update_per)
        tiers.append(tier)
        print(
            f"workers={workers}: {tier['throughput_qps']:8.1f} q/s   "
            f"p50={tier['latency_ms']['p50']:7.1f} ms   "
            f"p95={tier['latency_ms']['p95']:7.1f} ms   "
            f"p99={tier['latency_ms']['p99']:7.1f} ms   "
            f"({tier['updates_applied']} updates applied)"
        )

    base = tiers[0]["throughput_qps"]
    speedups = {t["workers"]: round(t["throughput_qps"] / base, 2) for t in tiers}
    print(f"speedup vs 1 worker: {speedups}")

    payload = {
        "benchmark": "concurrency",
        "description": (
            "pooled-session query throughput and client-side tail latency "
            "under a mixed read/update workload; speedup comes from "
            "cross-request batching (windows of workers*4 requests share one "
            "snapshot/propagation and deduplicate distinct queries)"
        ),
        "smoke": args.smoke,
        "seed": args.seed,
        "corpus_documents": documents * paragraphs,
        "queries": QUERIES,
        "tiers": tiers,
        "speedup_vs_1_worker": speedups,
    }
    with open(OUTPUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUTPUT_PATH}")

    system.close()

    achieved = speedups[8]
    assert achieved >= target, (
        f"8-worker speedup {achieved:.2f}x below the {target:.1f}x floor"
    )
    print(f"assertion passed: {achieved:.2f}x >= {target:.1f}x at 8 workers")


if __name__ == "__main__":
    main()
