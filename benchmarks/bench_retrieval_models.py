"""PARA — retrieval-paradigm exchangeability (Sections 3 and 6).

The same coupled workload runs with the IRS configured as a boolean, a
vector-space and a probabilistic system.  The coupling code is untouched —
only the COLLECTION's ``model`` attribute differs — demonstrating the
paper's central argument for the loose coupling: "there is no confinement
to a certain retrieval paradigm."

The table reports per-model result sizes, ranking agreement with the
probabilistic reference (Kendall tau over shared documents), and time.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.workloads.metrics import kendall_tau

MODELS = ["boolean", "vector", "inquery"]
QUERIES = ["www", "nii", "#and(www nii)", "#or(telnet database)"]


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=30, paragraphs=5, seed=42)
    collections = {}
    for model in MODELS:
        collection = _create_collection(
            system.db, f"coll_{model}", "ACCESS p FROM p IN PARA", model=model
        )
        index_objects(collection)
        collections[model] = collection
    return system, collections


def test_model_exchangeability(setup, report, benchmark):
    system, collections = setup

    def run_all():
        outcomes = {}
        for model in MODELS:
            collection = collections[model]
            collection.set("buffer", {})
            started = perf_counter()
            results = {q: _get_irs_result(collection, q) for q in QUERIES}
            outcomes[model] = (results, perf_counter() - started)
        return outcomes

    outcomes = benchmark.pedantic(run_all, rounds=3, iterations=1)

    reference = outcomes["inquery"][0]
    rows = []
    for model in MODELS:
        results, seconds = outcomes[model]
        sizes = sum(len(r) for r in results.values())
        taus = []
        for q in QUERIES:
            shared = sorted(set(results[q]) & set(reference[q]), key=str)
            if len(shared) >= 2:
                order_model = sorted(shared, key=lambda o: (-results[q][o], str(o)))
                order_ref = sorted(shared, key=lambda o: (-reference[q][o], str(o)))
                taus.append(kendall_tau(
                    [str(o) for o in order_model], [str(o) for o in order_ref]
                ))
        mean_tau = sum(taus) / len(taus) if taus else 1.0
        rows.append([model, sizes, mean_tau, seconds])

    report(
        "retrieval_models",
        "Paradigm exchangeability: one coupling, three retrieval models",
        ["model", "total results (4 queries)", "mean tau vs inquery", "seconds"],
        rows,
        notes=(
            "Boolean returns flat 1.0 values, so its tau reflects tie-breaking "
            "only; vector and inquery correlate positively but not perfectly — "
            "they normalize document length differently, which is precisely the "
            "kind of paradigm difference the loose coupling absorbs unchanged.  "
            "No coupling code differs between rows — only the COLLECTION's "
            "model attribute."
        ),
    )

    by_model = {row[0]: row for row in rows}
    assert by_model["vector"][2] > 0.2  # positive ranking correlation
    for model in MODELS:
        assert by_model[model][1] > 0


def test_mixed_query_runs_identically_per_model(setup, report, benchmark):
    system, collections = setup
    query = "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(c, 'www') > $t"

    def run_all():
        rows = []
        for model, threshold in [("boolean", 0.9), ("vector", 0.05), ("inquery", 0.42)]:
            result = system.db.query(
                query, {"c": collections[model], "t": threshold}
            )
            rows.append([model, threshold, len(result)])
        return rows

    rows = benchmark.pedantic(run_all, rounds=3, iterations=1)
    report(
        "retrieval_models_mixed",
        "Mixed query under each retrieval model (model-appropriate thresholds)",
        ["model", "threshold", "rows"],
        rows,
        notes="The same VQL text runs unchanged; only the threshold is "
        "calibrated to each model's value range.",
    )
    for _model, _threshold, count in rows:
        assert count > 0
