"""FIG1 — Figure 1: the three loose-coupling architectures.

Reproduces the Section 3 comparison: all three architectures answer the
same mixed workload; the table reports the feature checklist the paper
argues from, interface crossings, and latency.  Expected shape: the
DBMS-as-control architecture supports every feature, needs one interface
crossing per content expression, and is not slower than the control-module
architecture (which pays per-result crossings).
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.architectures import (
    FEATURES,
    MixedWorkloadQuery,
    run_comparison,
)
from repro.core.collection import _create_collection, index_objects


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=30, paragraphs=5, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    queries = [
        MixedWorkloadQuery("YEAR", "1994", "www", 0.42),
        MixedWorkloadQuery("YEAR", "1993", "nii", 0.42),
        MixedWorkloadQuery("YEAR", "1995", "#or(telnet database)", 0.42),
    ]
    return system, collection, queries


def test_fig1_architecture_comparison(setup, report, benchmark):
    system, collection, queries = setup

    def run():
        # Fresh buffers per round so every architecture pays its own IRS calls.
        collection.set("buffer", {})
        return run_comparison(system, collection, queries)

    reports = benchmark.pedantic(run, rounds=3, iterations=1)

    rows = []
    for name, architecture_reports in reports.items():
        first = architecture_reports[0]
        supported = sum(1 for f in FEATURES if first.features[f])
        crossings = sum(r.interface_crossings for r in architecture_reports)
        seconds = sum(r.seconds for r in architecture_reports)
        answers = sum(len(r.rows) for r in architecture_reports)
        rows.append([name, f"{supported}/{len(FEATURES)}", crossings, answers, seconds])

    report(
        "fig1_architectures",
        "Figure 1: coupling architectures (3-query mixed workload)",
        ["architecture", "features", "crossings", "answers", "seconds"],
        rows,
        notes=(
            "Paper claim (Section 3): the DBMS-as-control architecture needs no new "
            "query processor, keeps transactions 'for free', and subsumes the "
            "alternatives' query shapes.  All architectures return identical answers; "
            "only dbms_control supports all features with one IRS crossing per "
            "content expression."
        ),
    )

    dbms = reports["dbms_control"]
    control = reports["control_module"]
    assert all(r.features[f] for r in dbms for f in FEATURES)
    assert sum(r.interface_crossings for r in control) > sum(
        r.interface_crossings for r in dbms
    )
    # identical answers across architectures
    for a, b, c in zip(reports["control_module"], reports["irs_control"], dbms):
        assert [o for o, _ in a.rows] == [o for o, _ in b.rows] == [o for o, _ in c.rows]
