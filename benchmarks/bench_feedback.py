"""FB — Section 6: relevance feedback through the coupling.

Rocchio expansion (an "application independent facet" the paper leaves
open) implemented at the IRS level and exposed as a COLLECTION method.  The
table reports, over seeded topical corpora: recall of topically relevant
paragraphs before and after one feedback round with the top-2 results
judged relevant.
"""

import random

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.core.feedback import install_feedback_method
from repro.sgml.mmf import build_document, mmf_dtd
from repro.workloads.corpus import FILLER, TOPICS
from repro.workloads.metrics import recall


def _topical_paragraph(rng, topic, with_signal):
    """A topical paragraph; ``with_signal=False`` omits the signal term so
    only vocabulary overlap (i.e. feedback) can retrieve it."""
    vocabulary = [w for w in TOPICS[topic] if with_signal or w != topic]
    words = []
    for _ in range(16):
        pool = vocabulary if rng.random() < 0.5 else FILLER
        words.append(rng.choice(pool))
    if with_signal and topic not in words:
        words[0] = topic
    if not with_signal:
        words = [w if w != topic else "material" for w in words]
    return " ".join(words)


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(17)
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    truth = {topic: [] for topic in TOPICS}
    for topic in sorted(TOPICS):
        for doc_index in range(4):
            paragraphs = [
                _topical_paragraph(rng, topic, with_signal=True),
                _topical_paragraph(rng, topic, with_signal=False),
                " ".join(rng.choice(FILLER) for _ in range(16)),
            ]
            root = system.add_document(
                build_document(f"{topic} doc {doc_index}", paragraphs), dtd=dtd
            )
            paras = root.send("getDescendants", "PARA")
            truth[topic].extend(str(p.oid) for p in paras[:2])
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    install_feedback_method(system.db)
    return system, collection, truth


def test_feedback_round(setup, report, benchmark):
    system, collection, truth = setup

    def one_round(topic):
        collection.set("buffer", {})
        initial = _get_irs_result(collection, topic)
        ranked = sorted(initial, key=lambda o: -initial[o])
        judged = [system.db.get_object(oid) for oid in ranked[:2]]
        expanded = collection.send("expandQuery", topic, judged)
        after = _get_irs_result(collection, expanded)
        return initial, after, expanded

    rows = []
    for topic in sorted(TOPICS):
        if not truth[topic]:
            continue
        initial, after, expanded = one_round(topic)
        before_recall = recall([str(o) for o in initial], truth[topic])
        after_recall = recall([str(o) for o in after], truth[topic])
        rows.append(
            [topic, len(truth[topic]), before_recall, after_recall, len(after)]
        )

    benchmark.pedantic(one_round, args=("www",), rounds=3, iterations=1)

    report(
        "feedback",
        "Section 6: one Rocchio feedback round per topic (top-2 judged relevant)",
        ["topic", "relevant paras", "recall before", "recall after", "result size after"],
        rows,
        notes=(
            "Expansion adds co-occurring vocabulary from the judged documents, "
            "retrieving topical paragraphs that do not contain the original "
            "query term.  Feedback flows through expandQuery -> getIRSResult, "
            "so expanded queries are buffered and mixable like any other."
        ),
    )
    improved = sum(1 for row in rows if row[3] >= row[2])
    assert improved >= len(rows) - 1  # recall never collapses
    assert any(row[3] > row[2] for row in rows)  # and genuinely improves somewhere
