"""Q1/Q2 — the two mixed queries of Section 4.4, verbatim.

Runs the paper's exact query texts against a corpus with planted ground
truth and reports rows, per-query IRS invocations and evaluation counters.
"""

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, index_objects
from repro.oodb.query.evaluator import QueryEvaluator
from repro.sgml.mmf import build_document, mmf_dtd
from repro.workloads.corpus import CorpusGenerator, load_corpus

QUERY_ONE = (
    "ACCESS p, p -> length() FROM p IN PARA "
    "WHERE p -> getIRSValue (collPara, 'WWW') > 0.6;"
)

QUERY_TWO = (
    "ACCESS d -> getAttributeValue ('TITLE') "
    "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
    "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
    "p1 -> getNext() == p2 AND "
    "p1 -> getContaining ('MMFDOC') == d AND "
    "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
    "p2 -> getIRSValue (collPara, 'NII') > 0.4;"
)


@pytest.fixture(scope="module")
def setup():
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    generator = CorpusGenerator(seed=42)
    # Background corpus avoids the query topics so 'WWW' and 'NII' keep the
    # high idf the paper's 0.6 threshold presumes.
    background_topics = ("telnet", "multimedia", "database", "retrieval")
    documents = [
        generator.document(
            topics=[background_topics[(i + j) % 4] for j in range(4)],
            words_per_paragraph=12,
        )
        for i in range(25)
    ]
    load_corpus(system, documents)
    # Plant the document query two must find.
    system.add_document(
        build_document(
            "Planted WWW then NII",
            [
                "the www www web hypertext browser pages grow",
                "the nii nii infrastructure policy funding national",
                "other material closes the document",
            ],
            year="1994",
        ),
        dtd=dtd,
    )
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def test_q1_paragraph_threshold_query(setup, report, benchmark):
    system, collection = setup

    def run():
        evaluator = QueryEvaluator(system.db)
        return evaluator.run_with_stats(QUERY_ONE, {"collPara": collection})

    rows, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    table = [
        [str(obj.oid), f"{obj.send('getTextContent')[:40]}...", length]
        for obj, length in rows
    ]
    report(
        "q1_paragraphs",
        "Section 4.4 query 1: paragraphs with IRS value > 0.6 for 'WWW'",
        ["paragraph", "text", "length()"],
        table,
        notes=(
            f"candidates={stats.per_variable_candidates.get('p')} "
            f"method_calls={stats.method_calls} rows={stats.rows_produced}.  "
            "Every result paragraph mentions WWW heavily; length() is computed "
            "by the OODBMS method in the same query."
        ),
    )
    assert rows
    for obj, length in rows:
        assert "www" in obj.send("getTextContent").lower()
        assert length == len(obj.send("getTextContent"))


def test_q2_consecutive_paragraphs_query(setup, report, benchmark):
    system, collection = setup

    def run():
        evaluator = QueryEvaluator(system.db)
        return evaluator.run_with_stats(QUERY_TWO, {"collPara": collection})

    rows, stats = benchmark.pedantic(run, rounds=3, iterations=1)
    report(
        "q2_consecutive",
        "Section 4.4 query 2: 1994 docs with a WWW paragraph followed by an NII paragraph",
        ["title"],
        [[title] for (title,) in rows],
        notes=(
            f"tuples_examined={stats.tuples_examined} "
            f"method_calls={stats.method_calls} — the three-variable join runs "
            "in the OODBMS; both content predicates answer from one buffered "
            "IRS call each."
        ),
    )
    titles = {title for (title,) in rows}
    assert "Planted WWW then NII" in titles
