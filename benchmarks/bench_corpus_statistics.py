"""STATS — corpus realism: the synthetic-MMF substitution validated.

The paper's MMF document base is proprietary; DESIGN.md §2 substitutes a
seeded generator.  This bench prints the text-statistics evidence that the
substitute behaves like natural text where retrieval cares: Zipf-like
rank-frequency skew (so idf discriminates) and Heaps-like sublinear
vocabulary growth, at several corpus scales.
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, index_objects
from repro.irs.statistics import statistics_for_collection

SIZES = [10, 25, 50]


def test_corpus_statistics(report, benchmark):
    def collect():
        rows = []
        for size in SIZES:
            system = build_corpus_system(documents=size, paragraphs=4, seed=42)
            collection_obj = _create_collection(
                system.db, "stats", "ACCESS p FROM p IN PARA"
            )
            index_objects(collection_obj)
            stats = statistics_for_collection(system.engine.collection("stats"))
            rows.append(
                [
                    size,
                    stats.documents,
                    stats.tokens,
                    stats.vocabulary,
                    stats.zipf_slope,
                    stats.heaps_beta,
                    stats.type_token_ratio,
                ]
            )
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        "corpus_statistics",
        "Synthetic corpus realism (paragraph collections)",
        ["docs", "IRS docs", "tokens", "vocabulary", "zipf slope", "heaps beta", "TTR"],
        rows,
        notes=(
            "Natural text: Zipf slope near -1, Heaps beta ~0.4-0.8, TTR "
            "falling with scale.  The generator's topic vocabularies plus "
            "filler reproduce the skew retrieval depends on (idf spread), "
            "which is what the substitution must preserve (DESIGN.md §2)."
        ),
    )
    for _size, _docs, _tokens, _vocab, slope, beta, _ttr in rows:
        assert slope < -0.3
        assert 0.05 < beta < 0.95
    # TTR falls as the corpus grows (vocabulary saturates).
    assert rows[-1][6] < rows[0][6]
