"""FIG4 — Figure 4 + Section 4.5.2: deriving IRS values for composites.

Reproduces the paper's worked example on the exact M1-M4/P1-P11 base and on
a 40x scaled synthetic version:

* paragraph-level retrieval puts P4 first for ``#and(WWW NII)``;
* redirecting the query to paragraphs and returning only containers of top
  paragraphs answers {M2}, missing M3 ("The answer will be document M2,
  although M3 is relevant, too");
* maximum/average cannot order M3 above M4; the subquery-aware scheme can;
  the subquery+locality blend satisfies every ordering the paper demands.
"""

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _get_irs_result
from repro.workloads.corpus import CorpusGenerator, load_corpus
from repro.workloads.figure4 import (
    EXPECTED_PAIRS,
    load_figure4,
    rank_documents,
    satisfied_pairs,
)

SCHEMES = [
    "maximum", "average", "weighted_type", "length_weighted",
    "subquery", "subquery_locality", "passage",
]
QUERY = "#and(WWW NII)"


@pytest.fixture(scope="module")
def figure4():
    system = DocumentSystem()
    setup = load_figure4(system)
    setup["system"] = system
    return setup


def test_fig4_paragraph_level_baseline(figure4, report, benchmark):
    figure4["collection"].set("buffer", {})
    values = benchmark(_get_irs_result, figure4["collection"], QUERY)
    ranked = sorted(values, key=lambda oid: -values[oid])
    names = {p.oid: name for name, p in figure4["paragraphs"].items()}
    rows = [[names[oid], values[oid]] for oid in ranked]
    report(
        "fig4_paragraphs",
        "Figure 4: paragraph-level IRS result for #and(WWW NII)",
        ["paragraph", "IRS value"],
        rows,
        notes="Paper: 'the IRS will assign the highest value to P4, because this "
        "is the only IRS document relevant to both terms.'",
    )
    assert names[ranked[0]] == "P4"


def test_fig4_derivation_schemes(figure4, report, benchmark):
    roots, collection = figure4["roots"], figure4["collection"]

    def rank_all():
        return {
            scheme: rank_documents(roots, collection, QUERY, scheme)
            for scheme in SCHEMES
        }

    rankings = benchmark.pedantic(rank_all, rounds=3, iterations=1)

    rows = []
    for scheme in SCHEMES:
        ranking = rankings[scheme]
        satisfied = satisfied_pairs(ranking)
        order = " > ".join(name for name, _v in ranking)
        values = dict(ranking)
        rows.append(
            [
                scheme,
                order,
                f"{len(satisfied)}/{len(EXPECTED_PAIRS)}",
                values["M2"],
                values["M3"],
                values["M4"],
            ]
        )
    report(
        "fig4_derivation",
        "Figure 4 / Section 4.5.2: derivation schemes for #and(WWW NII)",
        ["scheme", "ranking", "paper pairs", "M2", "M3", "M4"],
        rows,
        notes=(
            "Paper pairs: M2 strictly above M3, M4, M1 and M3 strictly above "
            "M4, M1.  'With computation schemes such as maximum or average, the "
            "query content is not taken into account: ... only M3 is relevant "
            "for both terms.'  The subquery scheme exploits per-subquery "
            "evidence; blending it with single-passage locality recovers the "
            "complete intuitive order."
        ),
    )

    max_ranking = dict(rankings["maximum"])
    assert max_ranking["M3"] == pytest.approx(max_ranking["M1"])  # the anomaly
    sub = dict(rankings["subquery"])
    assert sub["M3"] > sub["M4"]
    assert satisfied_pairs(rankings["subquery_locality"]) == EXPECTED_PAIRS


def test_fig4_top_paragraph_redirect_misses_m3(figure4, report, benchmark):
    """The naive redirect: return containers of the best paragraphs only."""
    system = figure4["system"]

    def redirect():
        # Fresh buffer: only genuine IRS (paragraph) results, no previously
        # amended derived document values.
        figure4["collection"].set("buffer", {})
        values = _get_irs_result(figure4["collection"], QUERY)
        best = max(values, key=values.get)
        container = system.db.get_object(best).send("getContaining", "MMFDOC")
        return container.send("getAttributeValue", "TITLE")

    answer = benchmark(redirect)
    report(
        "fig4_redirect",
        "Figure 4: naive top-paragraph redirect",
        ["strategy", "answer set"],
        [["container of top paragraph", answer]],
        notes="Misses M3 exactly as Section 4.5.2 predicts.",
    )
    assert answer == "M2"


def test_fig4_scaled_corpus(report, benchmark):
    """The same scheme comparison on a 40-document synthetic corpus."""
    system = DocumentSystem()
    generator = CorpusGenerator(seed=99)
    # Build M2/M3/M4-shaped documents at scale, 'www'/'nii' patterns known.
    patterns = {
        "shape_M2": [["www", "nii"], [None]],       # one paragraph on both? no:
        # approximate with one www+nii paragraph via two topics in one para is
        # not expressible; use: strong single para with both handled below.
    }
    documents = []
    truth = []
    for i in range(40):
        kind = ("M2", "M3", "M4", "M1")[i % 4]
        if kind == "M2":
            topics = [None, None]
        elif kind == "M3":
            topics = ["www", "nii", None]
        elif kind == "M4":
            topics = [None, "nii", "nii"]
        else:
            topics = ["www", None, None]
        generated = generator.document(topics=topics, words_per_paragraph=12)
        if kind == "M2":
            # Inject a single paragraph mentioning both topics.
            generated.element.append_element("PARA").append_text(
                "the www web and the nii infrastructure converge here today now"
            )
        documents.append(generated)
        truth.append(kind)
    roots = load_corpus(system, documents)

    from repro.core.collection import _create_collection, index_objects

    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    named_roots = {f"{truth[i]}_{i}": roots[i] for i in range(len(roots))}

    def rank(scheme):
        return rank_documents(named_roots, collection, QUERY, scheme)

    rows = []
    for scheme in ("maximum", "average", "subquery", "subquery_locality"):
        ranking = benchmark.pedantic(rank, args=(scheme,), rounds=1) if scheme == "maximum" else rank(scheme)
        top10 = [name.split("_")[0] for name, _v in ranking[:10]]
        m2_in_top = sum(1 for k in top10 if k == "M2")
        first_m4 = next(
            (idx for idx, (name, _v) in enumerate(ranking) if name.startswith("M4")),
            None,
        )
        first_m3 = next(
            (idx for idx, (name, _v) in enumerate(ranking) if name.startswith("M3")),
            None,
        )
        rows.append([scheme, m2_in_top, first_m3, first_m4])
    report(
        "fig4_scaled",
        "Figure 4 scaled: 40 documents, #and(WWW NII)",
        ["scheme", "M2-shaped docs in top 10", "first M3 rank", "first M4 rank"],
        rows,
        notes="Shape check at scale: subquery schemes surface M2/M3-shaped "
        "documents before M4-shaped ones.",
    )
    sub_rows = {row[0]: row for row in rows}
    assert sub_rows["subquery"][2] < sub_rows["subquery"][3]
    assert sub_rows["subquery_locality"][1] >= sub_rows["average"][1]
