"""PROMO — physical design: promoted SGML attributes (requirement 4).

"The full integration on the logical level must not sacrifice an efficient
implementation, i.e., on a physical level, the system must exploit the
particular semantics of the data model and access operations for improved
processing" (Section 1.2, property 4).

The table compares the YEAR predicate of the paper's second sample query
before and after promotion: candidates examined, method calls, and time.
The query text is identical — only the physical design changed.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.oodb.query.evaluator import QueryEvaluator

QUERY = (
    "ACCESS d -> getAttributeValue('TITLE') FROM d IN MMFDOC "
    "WHERE d -> getAttributeValue('YEAR') = '1994'"
)


@pytest.fixture(scope="module")
def setup():
    return build_corpus_system(documents=120, paragraphs=3, seed=42)


def test_promotion_speedup(setup, report, benchmark):
    system = setup

    def run():
        evaluator = QueryEvaluator(system.db)
        started = perf_counter()
        rows, stats = evaluator.run_with_stats(QUERY)
        return rows, stats, perf_counter() - started

    rows_before, stats_before, seconds_before = run()
    system.loader.promote_attribute("MMFDOC", "YEAR")
    rows_after, stats_after, seconds_after = run()
    benchmark(lambda: QueryEvaluator(system.db).run(QUERY))

    report(
        "attribute_promotion",
        "Requirement 4: YEAR predicate before/after attribute promotion",
        ["physical design", "index probes", "method calls", "rows", "seconds"],
        [
            ["dictionary lookup (scan)", stats_before.index_probes,
             stats_before.method_calls, len(rows_before), seconds_before],
            ["promoted + hash index", stats_after.index_probes,
             stats_after.method_calls, len(rows_after), seconds_after],
        ],
        notes=(
            "Identical query text and identical answers; promotion turns the "
            "getAttributeValue('YEAR') predicate into an index probe: the "
            "per-document filter method calls (one per extent member) vanish "
            "and only the TITLE projections of matching documents remain."
        ),
    )
    assert sorted(rows_before) == sorted(rows_after)
    assert stats_after.method_calls < stats_before.method_calls
    assert stats_after.index_probes == 1
    assert stats_before.index_probes == 0
