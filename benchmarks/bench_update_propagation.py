"""UPD — Section 4.6: update propagation policies.

Update/query mixes at different update:query ratios under three regimes:

* ``eager``    — every update immediately rebuilds IRS state;
* ``deferred`` — updates pend; an arriving query forces propagation;
* ``deferred+cancellation`` — additionally, annihilating sequences
  (insert-then-delete, repeated modifies) are removed from the log.

Expected shape: eager is best when queries dominate, deferred wins as the
update share grows ("The first alternative is costly if the number of
updates is high as compared to the number of information-need queries"),
and cancellation strictly reduces propagated operations.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects

RATIOS = [(2, 10), (10, 10), (50, 10), (100, 5)]  # (updates, queries)


def _build(policy):
    system = build_corpus_system(documents=15, paragraphs=4, seed=42)
    collection = _create_collection(
        system.db, "collPara", "ACCESS p FROM p IN PARA", update_policy=policy
    )
    index_objects(collection)
    return system, collection


def _run_mix(system, collection, n_updates, n_queries, churn):
    """Interleave updates and queries; churn=True creates+deletes pairs."""
    root = system.roots[0]
    system.reset_counters()
    started = perf_counter()
    created = []
    for i in range(n_updates):
        if churn and i % 2 == 1 and created:
            victim = created.pop()
            collection.send("deleteObject", victim)
            system.loader.remove_element(victim)
        else:
            para = system.loader.insert_element(root, "PARA", f"update text {i} gopher")
            collection.send("insertObject", para)
            created.append(para)
    for i in range(n_queries):
        _get_irs_result(collection, ("www", "nii", "gopher")[i % 3])
    elapsed = perf_counter() - started
    counters = system.context.counters
    return {
        "seconds": elapsed,
        "propagated": counters.updates_propagated,
        "cancelled": counters.updates_cancelled,
        "indexed": system.engine.counters.documents_indexed,
        "forced": counters.forced_propagations,
    }


def test_update_policy_ratio_sweep(report, benchmark):
    def sweep():
        rows = []
        for n_updates, n_queries in RATIOS:
            eager_system, eager_coll = _build("eager")
            eager = _run_mix(eager_system, eager_coll, n_updates, n_queries, churn=False)
            deferred_system, deferred_coll = _build("deferred")
            deferred = _run_mix(deferred_system, deferred_coll, n_updates, n_queries, churn=False)
            rows.append(
                [
                    f"{n_updates}:{n_queries}",
                    eager["propagated"],
                    deferred["propagated"],
                    eager["seconds"],
                    deferred["seconds"],
                    deferred["forced"],
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "update_ratio",
        "Section 4.6: eager vs deferred propagation across update:query ratios",
        ["updates:queries", "eager ops", "deferred ops", "eager s", "deferred s", "forced props"],
        rows,
        notes=(
            "Eager pays one IRS maintenance operation (and a buffer "
            "invalidation) per update; deferred batches them into at most one "
            "forced propagation per query burst.  Paper: eager 'is costly if "
            "the number of updates is high as compared to the number of "
            "information-need queries.'"
        ),
    )
    # Deferred propagates the same logical ops but batched; forced
    # propagation fires at most once per distinct query burst.
    for row in rows:
        assert row[5] >= 1


def test_cancellation_savings(report, benchmark):
    """Insert-then-delete churn: cancellation halves IRS maintenance."""

    def run():
        system, collection = _build("deferred")
        outcome = _run_mix(system, collection, 60, 5, churn=True)
        return outcome

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    report(
        "update_cancellation",
        "Section 4.6: operation-log cancellation under churn (60 updates, half deletes)",
        ["metric", "value"],
        [
            ["operations cancelled", outcome["cancelled"]],
            ["operations propagated", outcome["propagated"]],
            ["IRS documents (re)indexed", outcome["indexed"]],
        ],
        notes=(
            "Paper: 'consider the deletion of a text object that has just been "
            "generated ... database operations are recorded to avoid "
            "unnecessary update propagations.'  Every insert-delete pair "
            "vanishes from the log before it ever reaches the IRS."
        ),
    )
    assert outcome["cancelled"] > 0
    assert outcome["propagated"] < 60


def test_cancellation_ablation(report, benchmark):
    """Design-choice ablation: the operation log with cancellation disabled.

    The same churn (insert a member, immediately retract it, repeatedly)
    runs twice; the only difference is the context's ``cancellation_enabled``
    flag.  Without cancellation every retracted insert is still indexed and
    then removed from the IRS at propagation time.
    """

    def run(enabled):
        system, collection = _build("deferred")
        system.context.cancellation_enabled = enabled
        root = system.roots[0]
        system.reset_counters()
        for i in range(30):
            para = system.loader.insert_element(root, "PARA", f"churn text {i}")
            collection.send("insertObject", para)
            collection.send("deleteObject", para)  # membership retracted
        _get_irs_result(collection, "www")  # forces propagation
        return {
            "pending_peak": 60 if not enabled else 0,
            "indexed": system.engine.counters.documents_indexed,
            "removed": system.engine.counters.documents_removed,
            "cancelled": system.context.counters.updates_cancelled,
        }

    with_cancellation = benchmark.pedantic(run, args=(True,), rounds=3, iterations=1)
    without = run(False)

    report(
        "update_ablation",
        "Section 4.6 ablation: operation-log cancellation on vs off (30 insert+retract pairs)",
        ["configuration", "IRS inserts", "IRS deletes", "ops cancelled"],
        [
            ["cancellation ON", with_cancellation["indexed"], with_cancellation["removed"], with_cancellation["cancelled"]],
            ["cancellation OFF", without["indexed"], without["removed"], without["cancelled"]],
        ],
        notes=(
            "Without the recorded-operations optimization every annihilating "
            "pair still reaches the IRS as an insert followed by a delete — "
            "'rebuilding the IRS index structures even though they will not "
            "change after all.'"
        ),
    )
    assert with_cancellation["indexed"] == 0
    assert with_cancellation["removed"] == 0
    assert without["indexed"] == 30
    assert without["removed"] == 30


def test_forced_propagation_consistency(report, benchmark):
    """A query with propagation pending sees the new state (correctness)."""

    def run():
        system, collection = _build("deferred")
        root = system.roots[0]
        para = system.loader.insert_element(root, "PARA", "unique zeppelin content")
        collection.send("insertObject", para)
        values = _get_irs_result(collection, "zeppelin")
        return para.oid in values, system.context.counters.forced_propagations

    found, forced = benchmark.pedantic(run, rounds=3, iterations=1)
    report(
        "update_forced",
        "Section 4.6: query with pending propagation is never stale",
        ["check", "result"],
        [["fresh object retrievable", found], ["forced propagations", forced]],
        notes="'If ... an information-need query is issued with update "
        "propagation pending, propagation is enforced.'",
    )
    assert found
    assert forced == 1
