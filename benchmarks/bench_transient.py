"""TRANS — Section 4.3.1 alternative (3): on-the-fly IRS documents.

"(3) inserting IRS documents into IRS collections on the fly before query
processing, and deleting them afterwards ... is inefficient due to the fact
that inserting and deleting of IRS documents is costly."

The table quantifies that: answering document-level content questions from
a paragraph collection via (a) transient insertion per query burst vs
(b) derivation from buffered component values.  Both give document-level
values; transient gives the IRS's own value, derivation an application
scheme's — the costs differ by an order of magnitude in IRS maintenance.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.core.transient import transient_members

QUERIES = ["www", "nii", "telnet"]


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=20, paragraphs=5, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def test_transient_vs_derivation(setup, report, benchmark):
    system, collection = setup
    docs = system.db.instances_of("MMFDOC")

    def transient_burst():
        collection.set("buffer", {})
        system.reset_counters()
        started = perf_counter()
        with transient_members(collection, docs):
            for query in QUERIES:
                _get_irs_result(collection, query)
        seconds = perf_counter() - started
        return {
            "seconds": seconds,
            "indexed": system.engine.counters.documents_indexed,
            "removed": system.engine.counters.documents_removed,
        }

    def derivation_burst():
        collection.set("buffer", {})
        system.reset_counters()
        started = perf_counter()
        for query in QUERIES:
            for doc in docs:
                doc.send("getIRSValue", collection, query)
        seconds = perf_counter() - started
        return {
            "seconds": seconds,
            "indexed": system.engine.counters.documents_indexed,
            "removed": system.engine.counters.documents_removed,
        }

    transient = benchmark.pedantic(transient_burst, rounds=3, iterations=1)
    derived = derivation_burst()

    report(
        "transient_indexing",
        "Section 4.3.1 alt (3): on-the-fly insertion vs derivation",
        ["strategy", "IRS inserts", "IRS deletes", "seconds"],
        [
            ["transient insertion per burst", transient["indexed"], transient["removed"], transient["seconds"]],
            ["derivation from components", derived["indexed"], derived["removed"], derived["seconds"]],
        ],
        notes=(
            "Paper: alternative (3) 'is inefficient due to the fact that "
            "inserting and deleting of IRS documents is costly.'  Transient "
            "insertion pays one insert + one delete per composite per burst "
            "and invalidates the result buffer twice; derivation reuses the "
            "standing paragraph index and the persistent buffer."
        ),
    )
    assert transient["indexed"] == len(docs)
    assert transient["removed"] == len(docs)
    assert derived["indexed"] == 0
    assert derived["removed"] == 0


def test_transient_values_are_direct_irs_values(setup, report, benchmark):
    """What transient insertion buys: the IRS's own composite value."""
    system, collection = setup
    docs = system.db.instances_of("MMFDOC")

    def compare():
        collection.set("buffer", {})
        with transient_members(collection, docs):
            direct = _get_irs_result(collection, "www")
        collection.set("buffer", {})
        collection.set("derivation", "maximum")
        derived = {
            doc.oid: doc.send("getIRSValue", collection, "www") for doc in docs
        }
        return direct, derived

    direct, derived = benchmark.pedantic(compare, rounds=3, iterations=1)
    doc_oids = {doc.oid for doc in docs}
    rows = []
    for oid in sorted(doc_oids, key=lambda o: -direct.get(o, 0.0))[:5]:
        rows.append([str(oid), direct.get(oid, 0.0), derived.get(oid, 0.0)])
    report(
        "transient_values",
        "Alt (3) vs alt (4): IRS-computed composite values vs derived (top 5)",
        ["document", "transient (IRS value)", "derived (component max)"],
        rows,
        notes=(
            "The IRS's own composite value differs from any component "
            "combination — INQUERY 'takes into account the IRS documents' "
            "length' (Section 4.5.2) at composite granularity.  Transient "
            "insertion is how an application can obtain it when it matters."
        ),
    )
    assert any(direct.get(oid, 0.0) > 0 for oid in doc_oids)
