"""HYP — Section 5: non-textual media and hypertext links.

Measures the retrievability gain from the two Section 5 mechanisms:

* FIGURE objects indexed with caption-only vs caption+referencing-text
  (media text mode) — how many topically relevant figures each query finds;
* nodes indexed with physical text only vs implies-augmented text, and the
  link-propagation derivation scheme for non-indexed nodes.
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.hypermedia import (
    IMPLIES_TEXT_MODE,
    MEDIA_TEXT_MODE,
    create_link,
    install_hypermedia_text_modes,
    register_link_derivation,
)
from repro.hypermedia.links import DESCRIBES, IMPLIES
from repro.workloads.corpus import TOPICS


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=20, paragraphs=4, figures=1, seed=42)
    install_hypermedia_text_modes(system.db)
    register_link_derivation()
    # Wire describes-links: first paragraph of each document describes its figure.
    for root in system.roots:
        paras = root.send("getDescendants", "PARA")
        figures = root.send("getDescendants", "FIGURE")
        if paras and figures:
            create_link(system.db, paras[0], figures[0], DESCRIBES)
    return system


def test_media_retrievability(setup, report, benchmark):
    system = setup
    plain = _create_collection(
        system.db, "figures_plain", "ACCESS f FROM f IN FIGURE", text_mode=0
    )
    media = _create_collection(
        system.db, "figures_media", "ACCESS f FROM f IN FIGURE",
        text_mode=MEDIA_TEXT_MODE,
    )

    def build_and_query():
        index_objects(plain)
        index_objects(media)
        rows = []
        for topic in sorted(TOPICS):
            plain_hits = len(_get_irs_result(plain, topic))
            media_hits = len(_get_irs_result(media, topic))
            rows.append([topic, plain_hits, media_hits])
        return rows

    rows = benchmark.pedantic(build_and_query, rounds=3, iterations=1)
    total_plain = sum(r[1] for r in rows)
    total_media = sum(r[2] for r in rows)
    report(
        "hypermedia_media",
        "Section 5: figure retrievability, caption-only vs media text mode",
        ["topic query", "caption-only hits", "media-mode hits"],
        rows,
        notes=(
            f"Totals: caption-only={total_plain}, media-mode={total_media}.  "
            "Media text mode adds the describing paragraph and the preceding "
            "sibling to the figure's IRS document ('having the text fragments "
            "as IRS documents that reference the image')."
        ),
    )
    assert total_media >= total_plain
    assert total_media > 0


def test_implies_link_augmentation(setup, report, benchmark):
    system = setup
    # Add implies links: each document's last paragraph implies the first
    # paragraph of the next document.
    all_paras = [root.send("getDescendants", "PARA") for root in system.roots]
    for current, following in zip(all_paras, all_paras[1:]):
        if current and following:
            create_link(system.db, current[-1], following[0], IMPLIES)

    plain = _create_collection(
        system.db, "paras_plain", "ACCESS p FROM p IN PARA", text_mode=0
    )
    augmented = _create_collection(
        system.db, "paras_implies", "ACCESS p FROM p IN PARA",
        text_mode=IMPLIES_TEXT_MODE,
    )

    def build_and_query():
        index_objects(plain)
        index_objects(augmented)
        rows = []
        for topic in sorted(TOPICS):
            rows.append(
                [topic, len(_get_irs_result(plain, topic)), len(_get_irs_result(augmented, topic))]
            )
        return rows

    rows = benchmark.pedantic(build_and_query, rounds=3, iterations=1)
    report(
        "hypermedia_implies",
        "Section 5: node retrievability, physical text vs implies-augmented text",
        ["topic query", "plain hits", "implies-augmented hits"],
        rows,
        notes=(
            "'the fragments within other nodes' text from which there exists an "
            "implies-link to that node shall be in the corresponding IRS "
            "document' — augmented nodes answer queries their own text cannot."
        ),
    )
    assert sum(r[2] for r in rows) >= sum(r[1] for r in rows)


def test_link_derivation_for_unindexed_nodes(setup, report, benchmark):
    system = setup
    collection = _create_collection(
        system.db, "paras_linkderive", "ACCESS p FROM p IN PARA",
        derivation="link_propagation",
    )
    index_objects(collection)
    # An MMFDOC is not represented; link_propagation falls back over
    # components AND inbound implies links.
    docs = system.db.instances_of("MMFDOC")

    def derive_all():
        collection.set("buffer", {})
        return [doc.send("getIRSValue", collection, "www") for doc in docs]

    values = benchmark.pedantic(derive_all, rounds=3, iterations=1)
    positive = sum(1 for v in values if v > 0)
    report(
        "hypermedia_derivation",
        "Section 5: link-aware derivation for unrepresented nodes",
        ["metric", "value"],
        [
            ["MMF documents scored", len(values)],
            ["documents with positive derived value", positive],
            ["max derived value", max(values)],
        ],
        notes="'deriveIRSValue can be used to calculate IRS values for "
        "hypertext nodes which are not represented in the IRS collection, "
        "using the link semantics.'",
    )
    assert positive > 0
