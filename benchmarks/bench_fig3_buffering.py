"""FIG3 — Figure 3: the query-processing flow chart with result buffering.

The flow chart's point: one IRS invocation serves arbitrarily many
``getIRSValue`` calls (intra-query: many objects, one query; inter-query:
repeated queries).  The table reports IRS invocations, buffer hit rates and
wall time with buffering (the coupling's behaviour) versus without
(simulated by clearing the buffer before every call).

Expected shape: buffered evaluation needs exactly Q IRS calls for Q
distinct IRS queries regardless of object count; unbuffered needs
objects x queries and is an order of magnitude slower.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, index_objects


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=25, paragraphs=4, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    queries = ["www", "nii", "telnet", "#and(www nii)"]
    return system, collection, queries


def _run_workload(system, collection, queries, buffered):
    paras = system.db.instances_of("PARA")
    system.reset_counters()
    started = perf_counter()
    for irs_query in queries:
        for obj in paras:
            if not buffered:
                collection.set("buffer", {})
            obj.send("getIRSValue", collection, irs_query)
    elapsed = perf_counter() - started
    counters = system.context.counters
    return {
        "objects": len(paras),
        "irs_calls": system.engine.counters.queries_executed,
        "hits": counters.buffer_hits,
        "misses": counters.buffer_misses,
        "seconds": elapsed,
    }


def test_fig3_result_buffering(setup, report, benchmark):
    system, collection, queries = setup

    collection.set("buffer", {})
    unbuffered = _run_workload(system, collection, queries, buffered=False)
    collection.set("buffer", {})
    buffered = benchmark.pedantic(
        lambda: (_run_workload(system, collection, queries, buffered=True)),
        setup=lambda: (collection.set("buffer", {}), (tuple(), {}))[1],
        rounds=3,
    )

    calls = buffered["objects"] * len(queries)
    rows = [
        [
            "buffered (Figure 3)",
            calls,
            buffered["irs_calls"],
            buffered["hits"],
            f"{buffered['hits'] / calls:.2%}",
            buffered["seconds"],
        ],
        [
            "unbuffered",
            calls,
            unbuffered["irs_calls"],
            unbuffered["hits"],
            f"{unbuffered['hits'] / calls:.2%}",
            unbuffered["seconds"],
        ],
    ]
    speedup = unbuffered["seconds"] / max(buffered["seconds"], 1e-9)
    report(
        "fig3_buffering",
        "Figure 3: persistent IRS-result buffer",
        ["mode", "getIRSValue calls", "IRS invocations", "buffer hits", "hit rate", "seconds"],
        rows,
        notes=(
            f"Speedup from buffering: {speedup:.1f}x.  Paper: 'IRS results are "
            f"buffered to avoid IRS query processing for the same IRS query for "
            f"different IRSObject instances.'  Expected shape: IRS invocations "
            f"drop from objects x queries ({calls}) to one per distinct query "
            f"({len(queries)})."
        ),
    )

    assert buffered["irs_calls"] == len(queries)
    assert unbuffered["irs_calls"] == calls
    assert buffered["seconds"] < unbuffered["seconds"]


def test_fig3_inter_query_buffering(setup, report, benchmark):
    """Inter-query optimization: the second identical query is free."""
    system, collection, _queries = setup
    collection.set("buffer", {})

    def first_and_second():
        system.reset_counters()
        rows1 = system.db.query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(c, 'www') > 0.42",
            {"c": collection},
        )
        after_first = system.engine.counters.queries_executed
        rows2 = system.db.query(
            "ACCESS p FROM p IN PARA WHERE p -> getIRSValue(c, 'www') > 0.42",
            {"c": collection},
        )
        return after_first, system.engine.counters.queries_executed, len(rows1), len(rows2)

    after_first, total, n1, n2 = benchmark.pedantic(
        first_and_second,
        setup=lambda: (collection.set("buffer", {}), (tuple(), {}))[1],
        rounds=3,
    )
    report(
        "fig3_inter_query",
        "Figure 3: inter-query buffering (same mixed query twice)",
        ["run", "IRS invocations (cumulative)", "rows"],
        [["first", after_first, n1], ["second", total, n2]],
        notes="The second evaluation answers entirely from the persistent buffer.",
    )
    assert after_first == 1
    assert total == 1
    assert n1 == n2
