"""FIG2 — Figure 2: COLLECTION/IRS-collection and object/document mapping.

Verifies and measures the modeling juxtaposition of Figure 2: COLLECTION
instances encapsulate exactly one IRS collection each; overlapping
collections over the same objects are allowed; each IRS document carries
exactly one OID; one object may own IRS documents in several collections.
"""

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, index_objects
from repro.oodb.oid import OID


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=20, paragraphs=5, sections=1, seed=42)
    return system


def test_fig2_object_document_mapping(setup, report, benchmark):
    system = setup

    def build():
        for name in ("collPara", "collSection", "collDoc"):
            if system.engine.has_collection(name):
                system.engine.drop_collection(name)
        built = {}
        for name, spec in [
            ("collPara", "ACCESS p FROM p IN PARA"),
            ("collSection", "ACCESS s FROM s IN SECTION"),
            ("collDoc", "ACCESS d FROM d IN MMFDOC"),
        ]:
            collection = _create_collection(system.db, name, spec)
            index_objects(collection)
            built[name] = collection
        return built

    collections = benchmark.pedantic(build, rounds=3, iterations=1)

    rows = []
    oid_to_collections = {}
    for name, collection in collections.items():
        irs = system.engine.collection(name)
        doc_map = collection.get("doc_map")
        for oid_str in doc_map:
            oid_to_collections.setdefault(oid_str, []).append(name)
        # Every IRS document carries exactly one OID resolving to a live object.
        oids_valid = all(
            system.db.object_exists(OID.parse(d.metadata["oid"]))
            for d in irs.documents()
        )
        rows.append(
            [name, len(irs), len(doc_map), "yes" if oids_valid else "NO"]
        )

    # Overlap: paragraphs inside sections belong to collPara while their
    # section belongs to collSection and their document to collDoc.
    para_oids = set(collections["collPara"].get("doc_map"))
    doc_oids = set(collections["collDoc"].get("doc_map"))
    report(
        "fig2_mapping",
        "Figure 2: COLLECTION instances vs IRS collections",
        ["COLLECTION", "irs_documents", "objects_mapped", "oid_metadata_valid"],
        rows,
        notes=(
            f"Distinct objects represented anywhere: {len(oid_to_collections)}.  "
            f"Collections are disjoint by construction here (different element "
            f"classes) but nothing prevents overlap: re-running collPara's spec "
            f"query under a second COLLECTION yields member sets of equal size "
            f"(verified in tests).  Paragraph objects: {len(para_oids)}, "
            f"document objects: {len(doc_oids)}."
        ),
    )

    assert len(collections) == len(system.engine.collection_names())
    for name, collection in collections.items():
        assert collection.get("irs_name") == name


def test_fig2_multi_collection_membership(setup, report, benchmark):
    system = setup
    for name in ("overlapA", "overlapB"):
        if system.engine.has_collection(name):
            system.engine.drop_collection(name)

    a = _create_collection(system.db, "overlapA", "ACCESS p FROM p IN PARA")
    b = _create_collection(
        system.db, "overlapB", "ACCESS p FROM p IN PARA", text_mode=1
    )

    def build():
        index_objects(a)
        index_objects(b)
        return a.get("doc_map"), b.get("doc_map")

    map_a, map_b = benchmark.pedantic(build, rounds=3, iterations=1)
    shared = set(map_a) & set(map_b)
    report(
        "fig2_overlap",
        "Figure 2: one object in several IRS collections",
        ["collection", "objects", "shared_objects"],
        [["overlapA", len(map_a), len(shared)], ["overlapB", len(map_b), len(shared)]],
        notes=(
            "Both collections represent the same PARA objects with different "
            "textModes (Section 4.2: 'To provide different representations of "
            "the same IRSObject in different collections, the parameter textMode "
            "will be used')."
        ),
    )
    assert shared == set(map_a) == set(map_b)
