"""NETWORK — client-observed throughput and tail latency over the socket.

A :class:`~repro.net.server.DocumentServer` (pooled session, so concurrent
remote traffic batches through shared windows) serves a seeded corpus;
swarms of client threads — each with its own :class:`repro.RemoteSession`
and therefore its own TCP connection — hammer the query mix.  Measured per
swarm size (up to 100+ concurrent clients): client-observed throughput,
p50/p95/p99 latency, and the wire overhead versus an inline in-process
baseline.  Every swarm also spot-checks that remote rankings and scores
are bit-identical to inline results.  Writes ``BENCH_network.json`` at the
repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_network.py           # full (5k docs)
    PYTHONPATH=src python benchmarks/bench_network.py --smoke   # CI-sized

Both modes drive the 100-client swarm (the PR's acceptance point); the
smoke corpus is smaller and each client issues fewer requests.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import threading
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.core import DocumentSystem
from repro.net import RemoteSession, ServerConfig
from repro.workloads.corpus import CorpusGenerator, load_corpus

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_network.json")

CLIENT_COUNTS = (1, 8, 32, 100)

QUERIES = [
    "www",
    "telnet",
    "#sum(nii infrastructure funding)",
    "#and(database transaction)",
    "#or(multimedia #and(video audio))",
    "#wsum(2 retrieval 1 ranking 0.5 relevance)",
    "#max(hypertext browser server)",
    "#sum(policy #not(telnet))",
]


def build_system(documents: int, paragraphs: int, seed: int) -> DocumentSystem:
    system = DocumentSystem()
    generator = CorpusGenerator(seed=seed)
    generated = generator.corpus(documents=documents, paragraphs=paragraphs)
    system.roots = load_corpus(system, generated)
    return system


def percentile(values, fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


TOP_K = 10  # ranked retrieval serves pages; full rankings are the exception


def inline_baseline(system, collection, requests: int) -> dict:
    """Single-threaded in-process floor the wire overhead is measured against."""
    latencies = []
    started = perf_counter()
    for i in range(requests):
        query = QUERIES[i % len(QUERIES)]
        t0 = perf_counter()
        system.session.query(collection, query, top_k=TOP_K)
        latencies.append(perf_counter() - t0)
    elapsed = perf_counter() - started
    return {
        "requests": requests,
        "throughput_qps": round(requests / elapsed, 2),
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
    }


def run_swarm(address, clients: int, per_client: int, materialize: bool = True) -> dict:
    """One swarm tier: ``clients`` threads, each its own session+connection."""
    latencies = []
    lock = threading.Lock()
    errors = []
    barrier = threading.Barrier(clients + 1)

    def client(offset: int) -> None:
        local = []
        try:
            with RemoteSession(
                address,
                pool_size=1,
                request_timeout=120.0,
                materialize=materialize,
            ) as session:
                barrier.wait()  # connect first, measure together
                for i in range(per_client):
                    query = QUERIES[(offset + i) % len(QUERIES)]
                    t0 = perf_counter()
                    session.query("collPara", query, top_k=TOP_K)
                    local.append(perf_counter() - t0)
        except BaseException as exc:
            errors.append(exc)
            try:
                barrier.abort()
            except threading.BrokenBarrierError:
                pass
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=client, args=(offset,)) for offset in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = perf_counter()
    for thread in threads:
        thread.join()
    elapsed = perf_counter() - started
    if errors:
        raise errors[0]

    total = clients * per_client
    return {
        "clients": clients,
        "materialize": materialize,
        "requests": total,
        "elapsed_seconds": round(elapsed, 3),
        "throughput_qps": round(total / elapsed, 2),
        "latency_ms": {
            "mean": round(statistics.mean(latencies) * 1000, 2),
            "p50": round(percentile(latencies, 0.50) * 1000, 2),
            "p95": round(percentile(latencies, 0.95) * 1000, 2),
            "p99": round(percentile(latencies, 0.99) * 1000, 2),
            "max": round(max(latencies) * 1000, 2),
        },
    }


def equivalence_spot_check(system, collection, address) -> int:
    """Remote rankings and scores must be bit-identical to inline ones."""
    checked = 0
    with RemoteSession(address) as session:
        for query in QUERIES:
            local = system.session.query(collection, query)
            remote = session.query("collPara", query)
            local_pairs = [(str(h.oid), h.score) for h in local]
            remote_pairs = [(str(h.oid), h.score) for h in remote]
            assert remote_pairs == local_pairs, (
                f"remote ranking diverged from inline for {query!r}"
            )
            checked += len(local_pairs)
    return checked


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized corpus and load")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    if args.smoke:
        documents, paragraphs = 120, 5      # 600 IRS documents
        per_client = 3
        baseline_requests = 64
    else:
        documents, paragraphs = 1000, 5     # the 5k-document corpus
        per_client = 8
        baseline_requests = 128

    print(
        f"corpus: {documents * paragraphs} paragraph documents "
        f"({documents} docs x {paragraphs}); swarms {CLIENT_COUNTS}, "
        f"{per_client} requests per client"
    )
    build_started = perf_counter()
    system = build_system(documents, paragraphs, args.seed)
    collection = system.session.create_collection(
        "collPara", "ACCESS p FROM p IN PARA", update_policy="deferred"
    )
    system.session.index(collection)
    print(f"built and indexed in {perf_counter() - build_started:.1f} s")

    baseline = inline_baseline(system, collection, baseline_requests)
    print(
        f"inline baseline: {baseline['throughput_qps']:8.1f} q/s   "
        f"p50={baseline['p50_ms']:6.2f} ms"
    )

    # Connection ceiling above the largest swarm: admission control is
    # not what this benchmark measures.
    server = system.serve(
        workers=4,
        config=ServerConfig(max_connections=max(CLIENT_COUNTS) + 16),
    )
    address = server.address

    checked = equivalence_spot_check(system, collection, address)
    print(f"equivalence spot check passed ({checked} (oid, score) pairs)")

    tiers = []
    for clients in CLIENT_COUNTS:
        tier = run_swarm(address, clients, per_client)
        tiers.append(tier)
        print(
            f"clients={clients:4d}: {tier['throughput_qps']:8.1f} q/s   "
            f"p50={tier['latency_ms']['p50']:7.1f} ms   "
            f"p95={tier['latency_ms']['p95']:7.1f} ms   "
            f"p99={tier['latency_ms']['p99']:7.1f} ms"
        )

    bare_100 = run_swarm(address, max(CLIENT_COUNTS), per_client, materialize=False)
    print(
        f"clients={bare_100['clients']:4d} (materialize=False): "
        f"{bare_100['throughput_qps']:8.1f} q/s   "
        f"p99={bare_100['latency_ms']['p99']:7.1f} ms"
    )

    single = tiers[0]
    swarm_100 = next(t for t in tiers if t["clients"] >= 100)
    wire_overhead_ms = round(
        single["latency_ms"]["p50"] - baseline["p50_ms"], 3
    )
    print(
        f"wire overhead at 1 client: ~{wire_overhead_ms} ms per request; "
        f"100-client p99 {swarm_100['latency_ms']['p99']:.1f} ms"
    )

    health = system.health()
    network = health["network"]

    payload = {
        "benchmark": "network",
        "description": (
            "client-observed throughput and tail latency over the socket "
            "server (pooled session, one TCP connection per client); "
            "equivalence spot-checked bit-exact against inline results"
        ),
        "smoke": args.smoke,
        "seed": args.seed,
        "corpus_documents": documents * paragraphs,
        "queries": QUERIES,
        "server_workers": 4,
        "top_k": TOP_K,
        "inline_baseline": baseline,
        "tiers": tiers,
        "bare_swarm_100": bare_100,
        "wire_overhead_p50_ms_at_1_client": wire_overhead_ms,
        "equivalence_pairs_checked": checked,
        "server_counters": {
            "connections_accepted": network["connections"]["accepted"],
            "connections_rejected": network["connections"]["rejected"],
            "requests_completed": network["requests"]["completed"],
            "requests_failed": network["requests"]["failed"],
        },
    }
    with open(OUTPUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {OUTPUT_PATH}")

    system.close()

    # Acceptance: the 100-client swarm completed every request and the
    # server rejected nothing (the ceiling was sized above the swarm).
    assert swarm_100["requests"] == swarm_100["clients"] * per_client
    assert payload["server_counters"]["connections_rejected"] == 0
    assert payload["server_counters"]["requests_failed"] == 0
    print(
        f"assertion passed: {swarm_100['clients']} concurrent clients, "
        f"{swarm_100['requests']} requests, 0 failures"
    )


if __name__ == "__main__":
    main()
