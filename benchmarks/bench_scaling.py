"""SCALE — scaling shapes across corpus sizes.

Complements the fixed-size benches with the *shapes* that matter as the
document base grows:

* buffered IRS invocations stay constant per distinct query while the
  unbuffered count grows linearly with objects (FIG3's claim at scale);
* derivation cost grows with the composite's component count, while a
  member object answers in O(1) from the buffered result.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects

SIZES = [5, 15, 30, 60]


def _system_of(size):
    system = build_corpus_system(documents=size, paragraphs=4, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def test_buffering_scaling(report, benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            system, collection = _system_of(size)
            paras = system.db.instances_of("PARA")
            system.reset_counters()
            started = perf_counter()
            for obj in paras:
                obj.send("getIRSValue", collection, "www")
            seconds = perf_counter() - started
            rows.append(
                [
                    size,
                    len(paras),
                    system.engine.counters.queries_executed,
                    len(paras),  # unbuffered would need one IRS call each
                    seconds,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "scaling_buffering",
        "Scaling: IRS invocations for one query over every paragraph",
        ["documents", "paragraphs", "IRS calls (buffered)", "IRS calls (unbuffered would be)", "seconds"],
        rows,
        notes=(
            "Buffered: exactly 1 IRS invocation regardless of object count; "
            "unbuffered grows linearly.  The gap is FIG3's speedup at scale."
        ),
    )
    for row in rows:
        assert row[2] == 1


def test_derivation_scaling(report, benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            system, collection = _system_of(size)
            docs = system.db.instances_of("MMFDOC")
            _get_irs_result(collection, "www")  # warm the buffer
            started = perf_counter()
            for doc in docs:
                doc.send("getIRSValue", collection, "www")
            first_pass = perf_counter() - started
            started = perf_counter()
            for doc in docs:
                doc.send("getIRSValue", collection, "www")
            second_pass = perf_counter() - started
            rows.append([size, len(docs), first_pass, second_pass])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(
        "scaling_derivation",
        "Scaling: derivation cost, first pass vs buffered second pass",
        ["documents", "composites derived", "first pass s", "second pass s"],
        rows,
        notes=(
            "First pass walks each composite's components (cost grows with "
            "corpus size); the derived values are amended into the persistent "
            "buffer (Figure 3), so the second pass is pure lookups."
        ),
    )
    for _size, _n, first, second in rows:
        assert second <= first
