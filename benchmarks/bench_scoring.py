"""SCORING — throughput of the term-at-a-time fast path vs the naive path.

Measures queries/sec of the vector and inquery retrieval models at several
corpus sizes, comparing the optimized scoring engine (statistics cache,
precompiled queries, term-at-a-time accumulation) against the preserved
pre-optimization implementations of :mod:`repro.irs.models.reference`,
and writes ``BENCH_scoring.json`` at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scoring.py            # full tiers
    PYTHONPATH=src python benchmarks/bench_scoring.py --smoke    # CI-sized

The full run asserts the PR's acceptance targets (>=5x vector, >=2x inquery
at the 5k-document tier); ``--smoke`` asserts softer floors suited to noisy
CI machines plus exact-path equivalence, so scoring-path perf regressions
fail loudly without flaking.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.models import InferenceNetworkModel, VectorSpaceModel
from repro.irs.models.reference import (
    NaiveInferenceNetworkModel,
    NaiveVectorSpaceModel,
)
from repro.irs.queries import parse_irs_query

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_scoring.json")

FULL_TIERS = (1000, 5000, 20000)
SMOKE_TIERS = (200, 500)
ASSERT_TIER = 5000

#: Throughput queries: the operator mix of the paper's workloads, proximity
#: excluded (the naive path recomputes proximity df uncached, which would
#: unfairly inflate the measured speedup).
QUERIES = [
    "topic0",
    "topic1 topic4",
    "#sum(topic0 topic2 topic7)",
    "#and(topic1 topic3)",
    "#or(topic2 #and(topic5 topic6))",
    "#wsum(2 topic0 1 topic8 0.5 topic9)",
    "#max(topic3 topic4)",
    "#sum(topic5 #not(topic6))",
]

#: Queries used only for the fast/naive equivalence gate (proximity included).
EQUIVALENCE_QUERIES = QUERIES + ["#od3(topic0 topic1)", "#uw5(topic2 topic3)"]


def generate_texts(documents: int, seed: int = 42) -> list:
    """Seeded synthetic document texts with a Zipf-flavoured vocabulary.

    Shared with :mod:`bench_obs` so both benchmarks exercise the same corpus.
    """
    rng = random.Random(seed)
    # Rank order defines Zipf weights; the query topics sit at mid-frequency
    # ranks (15, 25, ...) so query terms have realistic, not-degenerate df.
    vocabulary = [f"word{i:04d}" for i in range(1500)]
    for i in range(10):
        vocabulary.insert(15 + 10 * i, f"topic{i}")
    weights = [1.0 / rank for rank in range(1, len(vocabulary) + 1)]
    texts = []
    for _ in range(documents):
        length = rng.randint(30, 90)
        texts.append(" ".join(rng.choices(vocabulary, weights, k=length)))
    return texts


def build_collection(documents: int, seed: int = 42) -> IRSCollection:
    """A seeded synthetic collection over :func:`generate_texts`.

    Stemming is off: the benchmark measures scoring, not Porter throughput.
    """
    collection = IRSCollection(
        f"bench{documents}", Analyzer(stopwords=set(), stemming=False)
    )
    for text in generate_texts(documents, seed):
        collection.add_document(text)
    return collection


def parse_queries(texts):
    return [parse_irs_query(text, default_operator="sum") for text in texts]


def time_model(model, collection, trees, min_seconds: float, warmup: bool) -> float:
    """Queries/sec of ``model`` over ``trees``, over >= ``min_seconds``.

    ``warmup`` runs one untimed pass first to populate the statistics caches
    — meaningful only for the fast path; the naive path has no cache to warm
    and a warm-up pass would just double its (large) measurement cost.
    """
    if warmup:
        for tree in trees:
            model.score(collection, tree)
    executed = 0
    started = perf_counter()
    while True:
        for tree in trees:
            model.score(collection, tree)
        executed += len(trees)
        elapsed = perf_counter() - started
        if elapsed >= min_seconds:
            return executed / elapsed


def check_equivalence(collection, max_abs: float = 1e-9) -> float:
    """Assert fast and naive paths agree; returns the worst deviation."""
    pairs = [
        (VectorSpaceModel(), NaiveVectorSpaceModel()),
        (InferenceNetworkModel(), NaiveInferenceNetworkModel()),
    ]
    worst = 0.0
    for tree in parse_queries(EQUIVALENCE_QUERIES):
        for fast, naive in pairs:
            got = fast.score(collection, tree)
            want = naive.score(collection, tree)
            if set(got) != set(want):
                raise AssertionError(
                    f"{fast.name}: result sets diverge on {tree!r}: "
                    f"{sorted(set(got) ^ set(want))[:5]}"
                )
            for doc_id, value in got.items():
                worst = max(worst, abs(value - want[doc_id]))
    if worst > max_abs:
        raise AssertionError(f"fast/naive deviation {worst} exceeds {max_abs}")
    return worst


def run(smoke: bool, output: str, seed: int) -> dict:
    tiers = SMOKE_TIERS if smoke else FULL_TIERS
    # Naive scoring is O(candidates * corpus) per query; one timed pass is
    # plenty at the large tiers, while the fast path gets a real interval.
    naive_seconds = 0.2 if smoke else 0.5
    fast_seconds = 0.3 if smoke else 1.0

    trees = parse_queries(QUERIES)
    results = {
        "benchmark": "scoring",
        "description": (
            "queries/sec, fast term-at-a-time scoring with cached corpus "
            "statistics vs preserved naive doc-at-a-time path"
        ),
        "smoke": smoke,
        "seed": seed,
        "queries": QUERIES,
        "tiers": [],
    }
    for documents in tiers:
        collection = build_collection(documents, seed=seed)
        # Equivalence is asserted exhaustively by the test suite and checked
        # here once per run at the smallest tier; at the large tiers a naive
        # scoring pass per equivalence query would dominate the runtime.
        max_deviation = (
            check_equivalence(collection) if documents == min(tiers) else None
        )
        tier = {
            "documents": documents,
            "max_abs_deviation": max_deviation,
            "models": {},
        }
        for name, fast, naive in [
            ("vector", VectorSpaceModel(), NaiveVectorSpaceModel()),
            ("inquery", InferenceNetworkModel(), NaiveInferenceNetworkModel()),
        ]:
            naive_qps = time_model(naive, collection, trees, naive_seconds, warmup=False)
            fast_qps = time_model(fast, collection, trees, fast_seconds, warmup=True)
            tier["models"][name] = {
                "naive_qps": round(naive_qps, 2),
                "fast_qps": round(fast_qps, 2),
                "speedup": round(fast_qps / naive_qps, 2),
            }
            print(
                f"{documents:>6} docs  {name:<8} naive {naive_qps:>10.1f} q/s   "
                f"fast {fast_qps:>10.1f} q/s   speedup {fast_qps / naive_qps:>7.1f}x"
            )
        results["tiers"].append(tier)

    # Acceptance gates.
    targets = (
        {"vector": 2.0, "inquery": 1.2}  # soft floors for noisy CI boxes
        if smoke
        else {"vector": 5.0, "inquery": 2.0}  # the PR's acceptance criteria
    )
    gate_tier = results["tiers"][-1 if smoke else tiers.index(ASSERT_TIER)]
    results["targets"] = {
        "tier_documents": gate_tier["documents"],
        "required": targets,
        "achieved": {
            name: gate_tier["models"][name]["speedup"] for name in targets
        },
    }
    failures = [
        f"{name}: {gate_tier['models'][name]['speedup']}x < required {required}x"
        for name, required in targets.items()
        if gate_tier["models"][name]["speedup"] < required
    ]
    if failures:
        raise SystemExit("scoring speedup regression: " + "; ".join(failures))

    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpora, soft speedup floors, no BENCH_scoring.json",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="result JSON path (default: BENCH_scoring.json at the repo root "
        "for full runs, nothing for --smoke)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = "" if args.smoke else OUTPUT_PATH
    run(smoke=args.smoke, output=output, seed=args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
