"""SCORING — throughput of the term-at-a-time fast path vs the naive path.

Measures queries/sec of the vector and inquery retrieval models at several
corpus sizes, comparing the optimized scoring engine (statistics cache,
precompiled queries, term-at-a-time accumulation) against the preserved
pre-optimization implementations of :mod:`repro.irs.models.reference`,
and writes ``BENCH_scoring.json`` at the repository root.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scoring.py            # full tiers
    PYTHONPATH=src python benchmarks/bench_scoring.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_scoring.py --mode topk --smoke

The full run asserts the PR's acceptance targets (>=5x vector, >=2x inquery
at the 5k-document tier); ``--smoke`` asserts softer floors suited to noisy
CI machines plus exact-path equivalence, so scoring-path perf regressions
fail loudly without flaking.

``--mode topk`` measures the block-max top-k path: exhaustive ranking vs
pruned ``top_k=10`` queries through the engine over a compacted segmented
collection, plus the postings memory of the compact block representation
against the dict-of-Posting proxy.  The full run (100k-document tier)
asserts the PR's acceptance targets — pruned top-10 at >=10x exhaustive
q/s for both models and compact postings >=3x smaller; the smoke run
(20k) asserts pruned >= exhaustive, the no-regression floor.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.engine import IRSEngine
from repro.irs.models import InferenceNetworkModel, VectorSpaceModel
from repro.irs.models.reference import (
    NaiveInferenceNetworkModel,
    NaiveVectorSpaceModel,
)
from repro.irs.queries import parse_irs_query
from repro.irs.segments import SegmentConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_scoring.json")

FULL_TIERS = (1000, 5000, 20000)
SMOKE_TIERS = (200, 500)
ASSERT_TIER = 5000

#: Throughput queries: the operator mix of the paper's workloads, proximity
#: excluded (the naive path recomputes proximity df uncached, which would
#: unfairly inflate the measured speedup).
QUERIES = [
    "topic0",
    "topic1 topic4",
    "#sum(topic0 topic2 topic7)",
    "#and(topic1 topic3)",
    "#or(topic2 #and(topic5 topic6))",
    "#wsum(2 topic0 1 topic8 0.5 topic9)",
    "#max(topic3 topic4)",
    "#sum(topic5 #not(topic6))",
]

#: Queries used only for the fast/naive equivalence gate (proximity included).
EQUIVALENCE_QUERIES = QUERIES + ["#od3(topic0 topic1)", "#uw5(topic2 topic3)"]

# -- top-k mode -------------------------------------------------------------

TOPK_FULL_TIERS = (20000, 100000)
TOPK_SMOKE_TIERS = (20000,)
TOPK_K = 10

#: Prunable shapes only: the top-k scorer's eligibility covers vector
#: queries and inquery #sum/#wsum trees; structured operators fall back to
#: exhaustive scoring and would just measure the fallback overhead here.
TOPK_QUERIES = [
    "topic0",
    "topic1 topic4",
    "#sum(topic0 topic2 topic7)",
    "#wsum(2 topic0 1 topic8 0.5 topic9)",
]


def generate_texts(documents: int, seed: int = 42) -> list:
    """Seeded synthetic document texts with a Zipf-flavoured vocabulary.

    Shared with :mod:`bench_obs` so both benchmarks exercise the same corpus.
    """
    rng = random.Random(seed)
    # Rank order defines Zipf weights; the query topics sit at mid-frequency
    # ranks (15, 25, ...) so query terms have realistic, not-degenerate df.
    vocabulary = [f"word{i:04d}" for i in range(1500)]
    for i in range(10):
        vocabulary.insert(15 + 10 * i, f"topic{i}")
    weights = [1.0 / rank for rank in range(1, len(vocabulary) + 1)]
    texts = []
    for _ in range(documents):
        length = rng.randint(30, 90)
        texts.append(" ".join(rng.choices(vocabulary, weights, k=length)))
    return texts


def build_collection(documents: int, seed: int = 42) -> IRSCollection:
    """A seeded synthetic collection over :func:`generate_texts`.

    Stemming is off: the benchmark measures scoring, not Porter throughput.
    """
    collection = IRSCollection(
        f"bench{documents}", Analyzer(stopwords=set(), stemming=False)
    )
    for text in generate_texts(documents, seed):
        collection.add_document(text)
    return collection


def parse_queries(texts):
    return [parse_irs_query(text, default_operator="sum") for text in texts]


def time_model(model, collection, trees, min_seconds: float, warmup: bool) -> float:
    """Queries/sec of ``model`` over ``trees``, over >= ``min_seconds``.

    ``warmup`` runs one untimed pass first to populate the statistics caches
    — meaningful only for the fast path; the naive path has no cache to warm
    and a warm-up pass would just double its (large) measurement cost.
    """
    if warmup:
        for tree in trees:
            model.score(collection, tree)
    executed = 0
    started = perf_counter()
    while True:
        for tree in trees:
            model.score(collection, tree)
        executed += len(trees)
        elapsed = perf_counter() - started
        if elapsed >= min_seconds:
            return executed / elapsed


def check_equivalence(collection, max_abs: float = 1e-9) -> float:
    """Assert fast and naive paths agree; returns the worst deviation."""
    pairs = [
        (VectorSpaceModel(), NaiveVectorSpaceModel()),
        (InferenceNetworkModel(), NaiveInferenceNetworkModel()),
    ]
    worst = 0.0
    for tree in parse_queries(EQUIVALENCE_QUERIES):
        for fast, naive in pairs:
            got = fast.score(collection, tree)
            want = naive.score(collection, tree)
            if set(got) != set(want):
                raise AssertionError(
                    f"{fast.name}: result sets diverge on {tree!r}: "
                    f"{sorted(set(got) ^ set(want))[:5]}"
                )
            for doc_id, value in got.items():
                worst = max(worst, abs(value - want[doc_id]))
    if worst > max_abs:
        raise AssertionError(f"fast/naive deviation {worst} exceeds {max_abs}")
    return worst


def build_engine(documents: int, seed: int = 42) -> IRSEngine:
    """A compacted segmented collection named ``bench`` inside an engine."""
    engine = IRSEngine(
        result_cache_size=0,
        analyzer=Analyzer(stopwords=set(), stemming=False),
        segment_config=SegmentConfig(seal_document_count=4096),
    )
    engine.create_collection("bench")
    for text in generate_texts(documents, seed):
        engine.index_document("bench", text)
    engine.compact_collection("bench")
    return engine


def time_engine_queries(engine, trees_text, min_seconds: float, model: str, top_k):
    """Queries/sec of ``engine.query`` over the query texts."""
    executed = 0
    started = perf_counter()
    while True:
        for text in trees_text:
            engine.query("bench", text, model=model, top_k=top_k)
        executed += len(trees_text)
        elapsed = perf_counter() - started
        if elapsed >= min_seconds:
            return executed / elapsed


def postings_memory(engine) -> dict:
    """Compact block bytes vs the dict-of-Posting proxy (8 bytes per
    id/position plus term text, :func:`repro.irs.compression.raw_size`'s
    convention), over the sealed segments."""
    manager = engine.collection("bench").segments
    compact_bytes = 0
    dict_bytes = 0
    for segment in manager.sealed_segments():
        index = segment.index
        compact_bytes += index.postings_bytes()
        for term in index.terms():
            dict_bytes += (
                len(term.encode("utf-8"))
                + 8 * index.document_frequency(term)
                + 8 * index.collection_frequency(term)
            )
    return {
        "compact_bytes": compact_bytes,
        "dict_bytes": dict_bytes,
        "ratio": round(dict_bytes / compact_bytes, 2) if compact_bytes else None,
    }


def check_topk_equivalence(engine, k: int = TOPK_K) -> None:
    """Spot-check the safe-up-to-k contract (tests assert it exhaustively)."""
    for model in ("vector", "inquery"):
        for text in TOPK_QUERIES:
            ranked = engine.query("bench", text, model=model).ranked()
            pruned = engine.query("bench", text, model=model, top_k=k)
            got = sorted(pruned.values.items(), key=lambda kv: (-kv[1], kv[0]))
            if got != ranked[:k]:
                raise AssertionError(
                    f"top-{k} prefix diverges from exhaustive ranking "
                    f"({model}, {text!r})"
                )


def run_topk(smoke: bool, seed: int) -> dict:
    tiers = TOPK_SMOKE_TIERS if smoke else TOPK_FULL_TIERS
    min_seconds = 0.3 if smoke else 1.0
    section = {
        "k": TOPK_K,
        "queries": TOPK_QUERIES,
        "tiers": [],
    }
    for documents in tiers:
        started = perf_counter()
        engine = build_engine(documents, seed=seed)
        print(f"{documents:>6} docs  built in {perf_counter() - started:.1f}s")
        check_topk_equivalence(engine)
        tier = {
            "documents": documents,
            "memory": postings_memory(engine),
            "models": {},
        }
        for model in ("vector", "inquery"):
            # Warm statistics + per-epoch impact caches (amortized across
            # an epoch in production; excluded from the timed interval).
            for text in TOPK_QUERIES:
                engine.query("bench", text, model=model, top_k=TOPK_K)
            full_qps = time_engine_queries(
                engine, TOPK_QUERIES, min_seconds, model, top_k=None
            )
            pruned_qps = time_engine_queries(
                engine, TOPK_QUERIES, min_seconds, model, top_k=TOPK_K
            )
            tier["models"][model] = {
                "exhaustive_qps": round(full_qps, 2),
                "pruned_qps": round(pruned_qps, 2),
                "speedup": round(pruned_qps / full_qps, 2),
            }
            print(
                f"{documents:>6} docs  {model:<8} exhaustive {full_qps:>9.1f} q/s   "
                f"top-{TOPK_K} {pruned_qps:>9.1f} q/s   "
                f"speedup {pruned_qps / full_qps:>6.1f}x"
            )
        memory = tier["memory"]
        print(
            f"{documents:>6} docs  postings  compact {memory['compact_bytes']:>12,} B"
            f"   dict proxy {memory['dict_bytes']:>12,} B"
            f"   ratio {memory['ratio']:>5}x"
        )
        section["tiers"].append(tier)

    gate_tier = section["tiers"][-1]
    required_speedup = 1.0 if smoke else 10.0
    section["targets"] = {
        "tier_documents": gate_tier["documents"],
        "required_speedup": required_speedup,
        "required_memory_ratio": None if smoke else 3.0,
        "achieved": {
            model: gate_tier["models"][model]["speedup"]
            for model in gate_tier["models"]
        },
        "achieved_memory_ratio": gate_tier["memory"]["ratio"],
    }
    failures = [
        f"{model}: pruned top-{TOPK_K} {stats['speedup']}x exhaustive "
        f"< required {required_speedup}x"
        for model, stats in gate_tier["models"].items()
        if stats["speedup"] < required_speedup
    ]
    if not smoke and gate_tier["memory"]["ratio"] < 3.0:
        failures.append(
            f"postings memory ratio {gate_tier['memory']['ratio']}x < required 3.0x"
        )
    if failures:
        raise SystemExit("top-k regression: " + "; ".join(failures))
    return section


def run(smoke: bool, output: str, seed: int, mode: str = "all") -> dict:
    results = {
        "benchmark": "scoring",
        "smoke": smoke,
        "seed": seed,
        "mode": mode,
    }
    if mode in ("classic", "all"):
        results.update(run_classic(smoke, seed))
    if mode in ("topk", "all"):
        results["topk"] = run_topk(smoke, seed)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {output}")
    return results


def run_classic(smoke: bool, seed: int) -> dict:
    tiers = SMOKE_TIERS if smoke else FULL_TIERS
    # Naive scoring is O(candidates * corpus) per query; one timed pass is
    # plenty at the large tiers, while the fast path gets a real interval.
    naive_seconds = 0.2 if smoke else 0.5
    fast_seconds = 0.3 if smoke else 1.0

    trees = parse_queries(QUERIES)
    results = {
        "description": (
            "queries/sec, fast term-at-a-time scoring with cached corpus "
            "statistics vs preserved naive doc-at-a-time path"
        ),
        "queries": QUERIES,
        "tiers": [],
    }
    for documents in tiers:
        collection = build_collection(documents, seed=seed)
        # Equivalence is asserted exhaustively by the test suite and checked
        # here once per run at the smallest tier; at the large tiers a naive
        # scoring pass per equivalence query would dominate the runtime.
        max_deviation = (
            check_equivalence(collection) if documents == min(tiers) else None
        )
        tier = {
            "documents": documents,
            "max_abs_deviation": max_deviation,
            "models": {},
        }
        for name, fast, naive in [
            ("vector", VectorSpaceModel(), NaiveVectorSpaceModel()),
            ("inquery", InferenceNetworkModel(), NaiveInferenceNetworkModel()),
        ]:
            naive_qps = time_model(naive, collection, trees, naive_seconds, warmup=False)
            fast_qps = time_model(fast, collection, trees, fast_seconds, warmup=True)
            tier["models"][name] = {
                "naive_qps": round(naive_qps, 2),
                "fast_qps": round(fast_qps, 2),
                "speedup": round(fast_qps / naive_qps, 2),
            }
            print(
                f"{documents:>6} docs  {name:<8} naive {naive_qps:>10.1f} q/s   "
                f"fast {fast_qps:>10.1f} q/s   speedup {fast_qps / naive_qps:>7.1f}x"
            )
        results["tiers"].append(tier)

    # Acceptance gates.
    targets = (
        {"vector": 2.0, "inquery": 1.2}  # soft floors for noisy CI boxes
        if smoke
        else {"vector": 5.0, "inquery": 2.0}  # the PR's acceptance criteria
    )
    gate_tier = results["tiers"][-1 if smoke else tiers.index(ASSERT_TIER)]
    results["targets"] = {
        "tier_documents": gate_tier["documents"],
        "required": targets,
        "achieved": {
            name: gate_tier["models"][name]["speedup"] for name in targets
        },
    }
    failures = [
        f"{name}: {gate_tier['models'][name]['speedup']}x < required {required}x"
        for name, required in targets.items()
        if gate_tier["models"][name]["speedup"] < required
    ]
    if failures:
        raise SystemExit("scoring speedup regression: " + "; ".join(failures))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpora, soft speedup floors, no BENCH_scoring.json",
    )
    parser.add_argument(
        "--mode",
        choices=("classic", "topk", "all"),
        default="all",
        help="classic fast-vs-naive tiers, the block-max top-k tiers, or both",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="result JSON path (default: BENCH_scoring.json at the repo root "
        "for full runs, nothing for --smoke)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = "" if args.smoke else OUTPUT_PATH
    run(smoke=args.smoke, output=output, seed=args.seed, mode=args.mode)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
