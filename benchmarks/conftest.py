"""Shared benchmark fixtures and the result-table writer.

Every benchmark prints the paper-shaped table and also writes it to
``benchmarks/results/<experiment>.txt`` so EXPERIMENTS.md can quote stable
artifacts.  Corpora are seeded; tables are deterministic (timings aside).
"""

from __future__ import annotations

import os

import pytest

from repro.core import DocumentSystem
from repro.core.collection import _create_collection, index_objects
from repro.workloads.corpus import CorpusGenerator, load_corpus
from repro.workloads.metrics import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def report(results_dir):
    """report(experiment, title, headers, rows, notes="") — print and persist."""

    def _report(experiment, title, headers, rows, notes=""):
        table = format_table(headers, rows)
        text = f"== {title} ==\n{table}\n"
        if notes:
            text += f"\n{notes}\n"
        print("\n" + text)
        path = os.path.join(results_dir, f"{experiment}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
        return path

    return _report


def build_corpus_system(documents=20, paragraphs=5, seed=42, sections=0, figures=0):
    """A fresh DocumentSystem over a seeded corpus."""
    system = DocumentSystem()
    generator = CorpusGenerator(seed=seed)
    generated = generator.corpus(
        documents=documents, paragraphs=paragraphs, sections=sections, figures=figures
    )
    roots = load_corpus(system, generated)
    system.roots = roots
    system.generated = generated
    return system


@pytest.fixture
def corpus_system():
    return build_corpus_system()


@pytest.fixture
def para_collection(corpus_system):
    collection = _create_collection(
        corpus_system.db, "collPara", "ACCESS p FROM p IN PARA"
    )
    index_objects(collection)
    return collection
