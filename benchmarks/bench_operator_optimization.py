"""OPT — Section 4.5.4: IRS operators as collection methods.

When sub-results are already buffered, computing the conjunction inside
the OODBMS (``IRSOperatorAND`` over buffered dictionaries) avoids the IRS
round trip entirely and — with the operator semantics implemented exactly —
produces the same values the IRS would.

The table compares, for warm buffers: IRS invocations and time for (a)
resubmitting the combined query to the IRS vs (b) in-DB combination.
"""

from time import perf_counter

import pytest

from benchmarks.conftest import build_corpus_system
from repro.core.collection import _create_collection, _get_irs_result, index_objects

PAIRS = [("www", "nii"), ("telnet", "database"), ("multimedia", "retrieval")]


@pytest.fixture(scope="module")
def setup():
    system = build_corpus_system(documents=40, paragraphs=5, seed=42)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def test_operator_in_db_vs_resubmission(setup, report, benchmark):
    system, collection = setup

    def warm():
        collection.set("buffer", {})
        for a, b in PAIRS:
            _get_irs_result(collection, a)
            _get_irs_result(collection, b)

    def in_db():
        return [collection.send("IRSOperatorAND", a, b) for a, b in PAIRS]

    def resubmit():
        return [_get_irs_result(collection, f"#and({a} {b})") for a, b in PAIRS]

    warm()
    system.reset_counters()
    started = perf_counter()
    resubmitted = resubmit()
    resubmit_seconds = perf_counter() - started
    resubmit_irs_calls = system.engine.counters.queries_executed

    warm()
    system.reset_counters()
    started = perf_counter()
    combined = in_db()
    in_db_seconds = perf_counter() - started
    in_db_irs_calls = system.engine.counters.queries_executed
    benchmark(in_db)  # timing statistics for the in-DB combination

    rows = [
        ["resubmit #and to IRS", resubmit_irs_calls, resubmit_seconds],
        ["IRSOperatorAND in OODBMS", in_db_irs_calls, in_db_seconds],
    ]
    report(
        "operator_optimization",
        "Section 4.5.4: conjunction in the IRS vs in the OODBMS (warm buffers)",
        ["strategy", "IRS invocations", "seconds"],
        rows,
        notes=(
            "Paper: 'Consider the case that the corresponding collection object "
            "already knows intermediate results because they have been buffered "
            "... Then the second alternative is particularly appealing.'  The "
            "values agree because the operator semantics are implemented exactly "
            "(half a dozen INQUERY operators, Section 4.5.4)."
        ),
    )

    assert in_db_irs_calls == 0
    assert resubmit_irs_calls == len(PAIRS)
    # Value agreement on the documents the IRS returned.
    for (a, b), in_db_result, irs_result in zip(PAIRS, combined, resubmitted):
        for oid, value in irs_result.items():
            assert in_db_result[oid] == pytest.approx(value), (a, b, str(oid))


def test_operator_equivalence_all_operators(setup, report, benchmark):
    system, collection = setup
    operator_specs = [
        ("IRSOperatorAND", "#and(www nii)", ("www", "nii")),
        ("IRSOperatorOR", "#or(www nii)", ("www", "nii")),
        ("IRSOperatorSUM", "#sum(www nii)", ("www", "nii")),
        ("IRSOperatorMAX", "#max(www nii)", ("www", "nii")),
        ("IRSOperatorWSUM", "#wsum(2 www 1 nii)", (2, "www", 1, "nii")),
    ]

    def check_all():
        rows = []
        for method, irs_query, args in operator_specs:
            in_db = collection.send(method, *args)
            via_irs = _get_irs_result(collection, irs_query)
            max_delta = max(
                (abs(in_db[oid] - value) for oid, value in via_irs.items()),
                default=0.0,
            )
            rows.append([method, irs_query, len(via_irs), max_delta])
        return rows

    rows = benchmark.pedantic(check_all, rounds=3, iterations=1)
    report(
        "operator_equivalence",
        "Section 4.5.4: in-DB operator values match IRS values exactly",
        ["collection method", "IRS query", "docs", "max |delta|"],
        rows,
        notes="Every operator agrees to floating-point precision.",
    )
    for _m, _q, docs, max_delta in rows:
        assert max_delta < 1e-9
        assert docs > 0
