"""STORAGE — incremental checkpoints vs full dumps; lazy vs eager restart.

Builds a seeded corpus (≥100k documents at full size) spread over several
collections, then measures the three claims the single-file store makes:

* **checkpoint** — after a small mutation delta, an incremental
  ``SingleFileStore.checkpoint`` must be ≥5x cheaper than rewriting the
  legacy JSON layout with ``save_engine`` (the pre-store full dump).
* **restart** — opening the store lazily (manifest only) must beat an
  eager materialization of every collection.
* **recovery** — from a sample of crash points inside the last
  checkpoint's bytes, reopening must land on the previous checkpoint with
  bit-identical rankings, every time.

Honesty contract: the ≥5x checkpoint bar and the lazy<eager bar only arm
at full size — smoke runs report the measured ratios without asserting,
since at CI scale both sides fit in the page cache and the deltas are
tiny.  Bit-identical recovery is asserted at every size.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_storage.py            # full size
    PYTHONPATH=src python benchmarks/bench_storage.py --smoke    # CI-sized

Writes ``BENCH_storage.json`` at the repository root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import sys
import tempfile
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.irs.engine import IRSEngine
from repro.irs.persistence import save_engine
from repro.store import SingleFileStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_storage.json")

COLLECTIONS = 8
DELTA_DOCUMENTS = 50
RECOVERY_SAMPLES = 25

QUERIES = ["topic0 topic3", "#sum(topic1 topic5 topic7)", "topic2"]


def generate_texts(documents: int, seed: int) -> list:
    rng = random.Random(seed)
    vocabulary = [f"word{i:04d}" for i in range(1200)]
    for i in range(10):
        vocabulary.insert(15 + 10 * i, f"topic{i}")
    weights = [1.0 / rank for rank in range(1, len(vocabulary) + 1)]
    return [
        " ".join(rng.choices(vocabulary, weights, k=rng.randint(20, 60)))
        for _ in range(documents)
    ]


def build_engine(texts: list) -> IRSEngine:
    engine = IRSEngine(result_cache_size=0)
    for c in range(COLLECTIONS):
        engine.create_collection(f"c{c}")
    for i, text in enumerate(texts):
        engine.index_document(f"c{i % COLLECTIONS}", text)
    return engine


def rankings(engine) -> dict:
    return {
        f"c{c}:{query}": engine.query(f"c{c}", query, model="inquery").values
        for c in range(COLLECTIONS)
        for query in QUERIES
    }


def timed(fn):
    started = perf_counter()
    result = fn()
    return perf_counter() - started, result


def run(smoke: bool, output: str, seed: int) -> dict:
    documents = 5_000 if smoke else 100_000
    print(f"corpus: {documents} documents over {COLLECTIONS} collections")
    texts = generate_texts(documents, seed)
    engine = build_engine(texts)
    workdir = tempfile.mkdtemp(prefix="bench_storage_")
    results = {
        "benchmark": "storage",
        "description": (
            "incremental single-file checkpoints vs legacy full JSON dumps, "
            "lazy vs eager restart, and sampled crash-point recovery"
        ),
        "smoke": smoke,
        "seed": seed,
        "documents": documents,
        "collections": COLLECTIONS,
    }
    try:
        store_path = os.path.join(workdir, "irs.store")
        json_dir = os.path.join(workdir, "irs_index")

        # -- checkpoint cost: incremental delta vs full JSON dump ----------
        store = SingleFileStore(store_path)
        initial_seconds, initial = timed(lambda: store.checkpoint(engine))
        full_dump_seconds, _ = timed(lambda: save_engine(engine, json_dir))
        # A small, realistic delta: replace a handful of documents.
        for i in range(DELTA_DOCUMENTS):
            engine.replace_document(
                f"c{i % COLLECTIONS}", 1 + i // COLLECTIONS, texts[i] + " topic0"
            )
        incremental_seconds, incremental = timed(lambda: store.checkpoint(engine))
        redump_seconds, _ = timed(lambda: save_engine(engine, json_dir))
        ratio = redump_seconds / max(incremental_seconds, 1e-9)
        results["checkpoint"] = {
            "initial_seconds": round(initial_seconds, 4),
            "initial_bytes": initial["bytes_appended"],
            "full_dump_seconds": round(full_dump_seconds, 4),
            "delta_documents": DELTA_DOCUMENTS,
            "incremental_seconds": round(incremental_seconds, 4),
            "incremental_bytes": incremental["bytes_appended"],
            "redump_seconds": round(redump_seconds, 4),
            "incremental_vs_full_dump": round(ratio, 2),
        }
        print(
            f"checkpoint: full dump {redump_seconds:.3f}s, incremental "
            f"{incremental_seconds:.4f}s ({ratio:.1f}x cheaper)"
        )
        if not smoke:
            assert ratio >= 5.0, (
                f"incremental checkpoint only {ratio:.1f}x cheaper than a "
                f"full dump at {documents} documents (bar: >=5x)"
            )
        reference = rankings(engine)
        store.close()

        # -- restart: lazy (manifest only) vs eager (materialize all) ------
        eager_seconds, eager_store = timed(
            lambda: SingleFileStore(store_path).load_engine(lazy=False)
        )
        lazy_seconds, lazy_engine = timed(
            lambda: SingleFileStore(store_path).load_engine(lazy=True)
        )
        first_touch_seconds, _ = timed(lambda: lazy_engine.collection("c0"))
        restart_ratio = eager_seconds / max(lazy_seconds, 1e-9)
        results["restart"] = {
            "eager_seconds": round(eager_seconds, 4),
            "lazy_seconds": round(lazy_seconds, 5),
            "first_touch_seconds": round(first_touch_seconds, 4),
            "eager_vs_lazy": round(restart_ratio, 2),
        }
        print(
            f"restart: eager {eager_seconds:.3f}s, lazy {lazy_seconds:.4f}s "
            f"({restart_ratio:.1f}x), first touch {first_touch_seconds:.4f}s"
        )
        if not smoke:
            assert lazy_seconds < eager_seconds, (
                "lazy restart did not beat eager materialization"
            )

        # -- recovery: sampled crash points, bit-identical rankings --------
        with open(store_path, "rb") as handle:
            full_image = handle.read()
        # The last checkpoint's bytes start where the incremental append
        # began; any cut inside them must recover to... the same manifest
        # or the previous one — and either way rankings over the recovered
        # state must match a checkpoint the store actually committed.
        pre_delta = SingleFileStore(store_path)
        prev_manifest_rankings = None
        tail_start = len(full_image) - incremental["bytes_appended"]
        pre_delta.close()
        crash_points = [
            tail_start + 1 + (i * (len(full_image) - tail_start - 2)) // max(RECOVERY_SAMPLES - 1, 1)
            for i in range(RECOVERY_SAMPLES)
        ]
        recover_seconds = []
        identical = 0
        for cut in sorted(set(crash_points)):
            crash_path = os.path.join(workdir, "crash.store")
            with open(crash_path, "wb") as handle:
                handle.write(full_image[:cut])
            elapsed, recovered = timed(lambda: SingleFileStore(crash_path))
            recover_seconds.append(elapsed)
            restored = recovered.load_engine()
            got = rankings(restored)
            if recovered.checkpoint_id == incremental["checkpoint_id"]:
                assert got == reference, f"cut at {cut}: diverged on full recovery"
            else:
                if prev_manifest_rankings is None:
                    prev_manifest_rankings = got
                assert got == prev_manifest_rankings, (
                    f"cut at {cut}: previous-checkpoint recovery not deterministic"
                )
            identical += 1
            recovered.close()
        results["recovery"] = {
            "crash_points": len(set(crash_points)),
            "bit_identical": identical,
            "mean_recover_seconds": round(
                sum(recover_seconds) / len(recover_seconds), 5
            ),
        }
        print(
            f"recovery: {identical}/{len(set(crash_points))} crash points "
            f"bit-identical, mean reopen {results['recovery']['mean_recover_seconds']}s"
        )
        assert identical == len(set(crash_points))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    with open(output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return results


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--output", default=OUTPUT_PATH)
    parser.add_argument("--seed", type=int, default=42)
    options = parser.parse_args()
    run(options.smoke, options.output, options.seed)


if __name__ == "__main__":
    main()
