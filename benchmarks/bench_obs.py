"""OBS — overhead of default-on instrumentation, plus the explain() demo.

``--mode overhead`` (default) times the bench_scoring IRS workload twice
per round — once with the no-op instruments installed (``obs.disable()``)
and once with fresh live ones — and reports the relative overhead of
default-on tracing + metrics.  The result cache is disabled so every query
pays the real scoring cost that the instruments wrap.  Also demonstrates
``explain()`` on the paper's two worked mixed queries and exports a span
trace as a JSONL artifact.

``--mode concurrency`` drives the same paired-ratio estimator through a
pooled :class:`repro.Session` with 8 workers, so the measured overhead
includes per-request telemetry attribution, rolling histograms and queue
instrumentation under real thread contention — the default-on cost a
service deployment actually pays.  It also writes the Prometheus
exposition and a metrics snapshot as CI artifacts.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py            # full, writes BENCH_obs.json
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/bench_obs.py --mode concurrency --smoke

Full runs assert overhead < 5%; ``--smoke`` asserts < 10% to absorb CI
noise.  The overhead mode also asserts that the explain() stage tree
covers the OODB evaluator, the coupling methods and IRS scoring.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
from statistics import median
from time import perf_counter

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from bench_scoring import QUERIES, generate_texts

from repro import Session, obs
from repro.core import DocumentSystem
from repro.core.collection import _create_collection, index_objects
from repro.irs.analysis import Analyzer
from repro.irs.engine import IRSEngine
from repro.obs import (
    JsonlSpanExporter,
    Tracer,
    load_spans,
    prometheus_text,
    write_metrics_snapshot,
)
from repro.sgml.mmf import build_document, mmf_dtd

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")
RESULTS_DIR = os.path.join(REPO_ROOT, "benchmarks", "results")
TRACE_PATH = os.path.join(RESULTS_DIR, "obs_trace.jsonl")
PROM_PATH = os.path.join(RESULTS_DIR, "obs_prometheus.txt")
METRICS_PATH = os.path.join(RESULTS_DIR, "obs_metrics.jsonl")

QUERY_ONE = (
    "ACCESS p, p -> length() FROM p IN PARA "
    "WHERE p -> getIRSValue (collPara, 'WWW') > 0.45;"
)

QUERY_TWO = (
    "ACCESS d -> getAttributeValue ('TITLE') "
    "FROM d IN MMFDOC, p1 IN PARA, p2 IN PARA "
    "WHERE d -> getAttributeValue ('YEAR') = '1994' AND "
    "p1 -> getNext() == p2 AND "
    "p1 -> getContaining ('MMFDOC') == d AND "
    "p1 -> getIRSValue (collPara, 'WWW') > 0.4 AND "
    "p2 -> getIRSValue (collPara, 'NII') > 0.4;"
)

#: Stages a cross-layer explain tree must cover (acceptance criterion).
REQUIRED_STAGES = {
    "oodb.query",
    "coupling.findIRSValue",
    "coupling.getIRSResult",
    "irs.query",
}


def build_engine(documents: int, seed: int) -> IRSEngine:
    """A cache-less engine over the bench_scoring corpus.

    ``result_cache_size=0`` so repeated passes re-score instead of hitting
    the LRU: the overhead measurement must wrap real scoring work, not a
    dictionary lookup.
    """
    engine = IRSEngine(result_cache_size=0)
    engine.create_collection("bench", Analyzer(stopwords=set(), stemming=False))
    for text in generate_texts(documents, seed):
        engine.index_document("bench", text)
    return engine


def time_pass(engine: IRSEngine, repeats: int) -> float:
    """Seconds for ``repeats`` passes of the scoring workload."""
    started = perf_counter()
    for _ in range(repeats):
        for query in QUERIES:
            engine.query("bench", query, model="vector")
    return perf_counter() - started


def measure_overhead(documents: int, seed: int, pairs: int, repeats: int) -> dict:
    """Median of paired enabled/disabled timing ratios.

    Shared machines throttle and boost the CPU on timescales comparable to
    a whole pass, so independent best-of timings of the two modes can drift
    apart by far more than the few microseconds a span costs.  Instead each
    sample times the two modes back to back (order alternating), so both
    sit in the same throttle window, and the overhead is the median of the
    per-pair ratios — robust against the wild spread of individual pairs.
    """
    engine = build_engine(documents, seed)
    # The corpus is static during measurement but dominates the heap; span
    # allocations on the enabled side otherwise trigger cyclic-GC passes
    # that rescan the whole index, billing the corpus size to the
    # instrumentation.  Freezing parks those objects outside the collector
    # so both modes pay identical GC costs (the steady-state picture).
    gc.collect()
    gc.freeze()
    # Warm the statistics caches once per mode so neither side pays the
    # one-time cache build inside a timed interval.
    obs.disable()
    try:
        time_pass(engine, 1)
        with obs.instrumentation():
            time_pass(engine, 1)
        disabled, enabled, ratios = [], [], []
        for index in range(pairs):
            if index % 2:
                with obs.instrumentation():
                    on = time_pass(engine, repeats)
                obs.disable()
                off = time_pass(engine, repeats)
            else:
                obs.disable()
                off = time_pass(engine, repeats)
                with obs.instrumentation():
                    on = time_pass(engine, repeats)
            disabled.append(off)
            enabled.append(on)
            ratios.append(on / off)
    finally:
        obs.enable()
        gc.unfreeze()
    overhead_pct = (median(ratios) - 1.0) * 100.0
    queries = repeats * len(QUERIES)
    return {
        "documents": documents,
        "pairs": pairs,
        "queries_per_pass": queries,
        "best_disabled_qps": round(queries / min(disabled), 1),
        "best_enabled_qps": round(queries / min(enabled), 1),
        "ratio_spread": [round(min(ratios), 4), round(max(ratios), 4)],
        "overhead_pct": round(overhead_pct, 2),
    }


def build_corpus_system(documents: int, seed: int) -> tuple:
    """A DocumentSystem over the bench_scoring corpus, 4 paragraphs per doc.

    The engine's result LRU is disabled so repeated batched passes re-score
    instead of answering from the cache — the concurrency ratio must wrap
    real batch execution, attribution and rolling-histogram updates.
    """
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    texts = generate_texts(documents, seed)
    for start in range(0, len(texts), 4):
        chunk = texts[start : start + 4]
        system.add_document(
            build_document(f"Doc{start // 4}", chunk, year="1994"), dtd=dtd
        )
    collection = system.session.create_collection(
        "collPara", "ACCESS p FROM p IN PARA"
    )
    system.session.index(collection)
    system.engine._result_cache_size = 0
    system.engine._result_cache.clear()
    return system, collection


def time_service_pass(session: Session, collection, repeats: int) -> float:
    """Seconds for ``repeats`` batched passes through the pooled session."""
    items = [(collection, query) for query in QUERIES]
    started = perf_counter()
    for _ in range(repeats):
        session.query_batch(items, timeout=60.0)
    return perf_counter() - started


def measure_concurrency_overhead(
    documents: int, seed: int, pairs: int, repeats: int, workers: int
) -> dict:
    """Paired enabled/disabled ratios through an 8-worker pooled session.

    Same estimator as :func:`measure_overhead`, but each pass runs the
    query set as one batched window through the service layer, so the
    enabled side pays admission gauges, queue timing, per-request cost
    attribution, trace sampling and rolling-histogram observes under
    genuine thread contention.
    """
    system, collection = build_corpus_system(documents, seed)
    session = Session(system.db, workers=workers)
    gc.collect()
    gc.freeze()
    try:
        obs.disable()
        time_service_pass(session, collection, 1)
        with obs.instrumentation():
            time_service_pass(session, collection, 1)
        disabled, enabled, ratios = [], [], []
        for index in range(pairs):
            if index % 2:
                with obs.instrumentation():
                    on = time_service_pass(session, collection, repeats)
                obs.disable()
                off = time_service_pass(session, collection, repeats)
            else:
                obs.disable()
                off = time_service_pass(session, collection, repeats)
                with obs.instrumentation():
                    on = time_service_pass(session, collection, repeats)
            disabled.append(off)
            enabled.append(on)
            ratios.append(on / off)
    finally:
        obs.enable()
        gc.unfreeze()
        session.service.close()
    overhead_pct = (median(ratios) - 1.0) * 100.0
    queries = repeats * len(QUERIES)
    return {
        "documents": documents,
        "workers": workers,
        "pairs": pairs,
        "queries_per_pass": queries,
        "best_disabled_qps": round(queries / min(disabled), 1),
        "best_enabled_qps": round(queries / min(enabled), 1),
        "ratio_spread": [round(min(ratios), 4), round(max(ratios), 4)],
        "overhead_pct": round(overhead_pct, 2),
    }


def export_exposition(
    documents: int, seed: int, workers: int, prom_out: str, metrics_out: str
) -> dict:
    """One fully instrumented batched pass, exported as scrape artifacts.

    Writes the Prometheus text exposition and a JSONL metrics snapshot the
    CI job uploads, so every build leaves an inspectable picture of what
    the instruments saw.
    """
    os.makedirs(os.path.dirname(prom_out) or ".", exist_ok=True)
    if os.path.exists(metrics_out):
        os.remove(metrics_out)
    system, collection = build_corpus_system(documents, seed)
    session = Session(system.db, workers=workers)
    try:
        with obs.instrumentation() as (_tracer, metrics):
            time_service_pass(session, collection, 1)
            health = system.health()
            text = prometheus_text(metrics)
            write_metrics_snapshot(
                metrics_out, metrics, extra={"health": health}
            )
        with open(prom_out, "w", encoding="utf-8") as fh:
            fh.write(text)
    finally:
        session.service.close()
    return {
        "prometheus": os.path.relpath(prom_out, REPO_ROOT),
        "prometheus_lines": len(text.splitlines()),
        "metrics_snapshot": os.path.relpath(metrics_out, REPO_ROOT),
        "health_status": health["status"],
    }


def build_journal() -> tuple:
    """The paper's journal-article fixture (three MMF documents)."""
    system = DocumentSystem()
    dtd = mmf_dtd()
    system.register_dtd(dtd)
    documents = [
        build_document(
            "Hit",
            [
                "the www hypertext web and browsers are growing",
                "the nii infrastructure funding policy debate continues",
                "completely unrelated filler paragraph text here",
            ],
            year="1994",
        ),
        build_document(
            "WrongOrder",
            [
                "the nii infrastructure network expands",
                "the www web keeps growing quickly",
            ],
            year="1994",
        ),
        build_document(
            "Together",
            ["the www and the nii converge in one paragraph"],
            year="1994",
        ),
    ]
    for document in documents:
        system.add_document(document, dtd=dtd)
    collection = _create_collection(system.db, "collPara", "ACCESS p FROM p IN PARA")
    index_objects(collection)
    return system, collection


def demo_explain() -> dict:
    """Run explain() on both worked queries; assert stage coverage."""
    system, collection = build_journal()
    bindings = {"collPara": collection}
    demo = {}
    for label, text in (("query_one", QUERY_ONE), ("query_two", QUERY_TWO)):
        collection.set("buffer", {})  # force the IRS stage into the trace
        result = system.explain(text, bindings)
        stages = result.stage_names()
        missing = REQUIRED_STAGES - stages
        if missing:
            raise SystemExit(f"explain({label}) tree is missing stages: {sorted(missing)}")
        print(f"\n=== explain: {label} ===")
        print(result.render())
        demo[label] = {
            "rows": len(result.rows),
            "stages": sorted(stages),
            "spans": result.root.span_count() if result.root else 0,
        }
    return demo


def export_trace(path: str, documents: int, seed: int) -> dict:
    """One instrumented workload pass exported as a JSONL span artifact."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    if os.path.exists(path):
        os.remove(path)
    engine = build_engine(documents, seed)
    with JsonlSpanExporter(path) as exporter:
        with obs.instrumentation(tracer=Tracer(exporter=exporter)):
            time_pass(engine, 1)
    roots = load_spans(path)
    return {"path": os.path.relpath(path, REPO_ROOT), "roots": len(roots)}


def run(smoke: bool, output: str, seed: int, trace_out: str, mode: str) -> dict:
    documents = 400 if smoke else 2000
    pairs = 60 if smoke else 60
    # Short passes: a disabled+enabled pair must fit inside one CPU-quota
    # window for the paired-ratio estimator to cancel throttling noise.
    repeats = 3 if smoke else 1
    limit_pct = 10.0 if smoke else 5.0

    results = {
        "benchmark": "obs",
        "mode": mode,
        "smoke": smoke,
        "seed": seed,
        "limit_pct": limit_pct,
    }
    if mode == "concurrency":
        # Smaller corpus than the engine-only mode: each pass is a full
        # batched window per repeat, and 8 workers multiply the work done
        # per wall-clock second.
        documents = 200 if smoke else 800
        overhead = measure_concurrency_overhead(
            documents, seed, pairs, repeats, workers=8
        )
        results["description"] = (
            "relative cost of default-on telemetry (attribution, rolling "
            "histograms, sampling) through an 8-worker pooled session"
        )
        results["overhead"] = overhead
        print(
            f"{documents:>6} docs x {overhead['workers']} workers  "
            f"disabled {overhead['best_disabled_qps']:>8.1f} q/s   "
            f"enabled {overhead['best_enabled_qps']:>8.1f} q/s   "
            f"overhead {overhead['overhead_pct']:>6.2f}%  (limit {limit_pct}%)"
        )
        artifacts = export_exposition(
            documents, seed, 8, PROM_PATH, METRICS_PATH
        )
        results["artifacts"] = artifacts
        print(
            f"exposition artifacts: {artifacts['prometheus_lines']} lines -> "
            f"{artifacts['prometheus']}, snapshot -> "
            f"{artifacts['metrics_snapshot']} (health: "
            f"{artifacts['health_status']})"
        )
    else:
        overhead = measure_overhead(documents, seed, pairs, repeats)
        results["description"] = (
            "relative cost of default-on tracing+metrics vs the no-op path "
            "on the bench_scoring IRS workload, plus explain() stage coverage"
        )
        results["overhead"] = overhead
        print(
            f"{documents:>6} docs  disabled {overhead['best_disabled_qps']:>8.1f} q/s   "
            f"enabled {overhead['best_enabled_qps']:>8.1f} q/s   "
            f"overhead {overhead['overhead_pct']:>6.2f}%  (limit {limit_pct}%)"
        )
        trace = export_trace(trace_out, min(documents, 400), seed)
        print(f"trace artifact: {trace['roots']} root spans -> {trace['path']}")
        results["trace"] = trace
        results["explain"] = demo_explain()

    if overhead["overhead_pct"] >= limit_pct:
        raise SystemExit(
            f"observability overhead regression ({mode}): "
            f"{overhead['overhead_pct']}% >= limit {limit_pct}%"
        )
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            json.dump(results, fh, indent=2)
            fh.write("\n")
        print(f"wrote {output}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus, softer overhead limit, no BENCH_obs.json",
    )
    parser.add_argument(
        "--mode",
        choices=("overhead", "concurrency"),
        default="overhead",
        help="overhead: engine-only paired ratios (default); concurrency: "
        "8-worker pooled session with telemetry attribution + artifacts",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="result JSON path (default: BENCH_obs.json at the repo root "
        "for full overhead runs, nothing for --smoke or concurrency)",
    )
    parser.add_argument(
        "--trace-out",
        default=TRACE_PATH,
        help="JSONL span trace artifact path",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = "" if (args.smoke or args.mode != "overhead") else OUTPUT_PATH
    run(
        smoke=args.smoke,
        output=output,
        seed=args.seed,
        trace_out=args.trace_out,
        mode=args.mode,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
