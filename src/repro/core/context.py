"""Coupling context: wiring a database to an IRS engine.

The coupling methods run as database methods (invoked on
:class:`~repro.oodb.objects.DBObject` handles) and need a way to reach the
external IRS, the text-mode registry and the derivation-scheme registry.
:class:`CouplingContext` bundles those; :func:`install_coupling` defines the
coupling classes in the database schema and attaches the context to the
database instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import CouplingError
from repro.irs.engine import IRSEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import Database

_CONTEXT_ATTR = "_coupling_context"


@dataclass
class CouplingCounters:
    """Instrumentation shared by the whole coupling (reset per experiment)."""

    get_irs_value_calls: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    derivations: int = 0
    index_runs: int = 0
    documents_indexed: int = 0
    updates_propagated: int = 0
    updates_cancelled: int = 0
    updates_logged: int = 0
    forced_propagations: int = 0

    def reset(self) -> None:
        for name in vars(self):
            setattr(self, name, 0)


@dataclass
class CouplingContext:
    """Everything coupling methods need besides the target object."""

    engine: IRSEngine
    counters: CouplingCounters = field(default_factory=CouplingCounters)
    #: When set, IRS queries go through result files on disk (the paper's
    #: historical exchange mechanism) instead of the in-process API.
    result_file_directory: Optional[str] = None
    #: Default update-propagation policy for new collections.
    default_update_policy: str = "deferred"
    #: Ablation switch: when False, the pending-operation log appends
    #: blindly instead of cancelling annihilating sequences (Section 4.6).
    cancellation_enabled: bool = True


def install_coupling(db: "Database", engine: IRSEngine, **context_options) -> CouplingContext:
    """Define the coupling classes in ``db`` and attach a context.

    Idempotent with respect to schema (re-installation replaces the engine
    wiring but leaves classes alone).  Returns the context.
    """
    from repro.core import collection as collection_module
    from repro.core import irs_object as irs_object_module

    context = CouplingContext(engine=engine, **context_options)
    setattr(db, _CONTEXT_ATTR, context)
    irs_object_module.define_irs_object_class(db)
    collection_module.define_collection_class(db)
    collection_module.register_semantic_restrictor(db)
    return context


def coupling_context(db: "Database") -> CouplingContext:
    """The context installed on ``db`` (raises when the coupling is absent)."""
    context = getattr(db, _CONTEXT_ATTR, None)
    if context is None:
        raise CouplingError(
            "coupling not installed on this database; call install_coupling()"
        )
    return context
