"""Coupling context: wiring a database to an IRS engine.

The coupling methods run as database methods (invoked on
:class:`~repro.oodb.objects.DBObject` handles) and need a way to reach the
external IRS, the text-mode registry and the derivation-scheme registry.
:class:`CouplingContext` bundles those; :func:`install_coupling` defines the
coupling classes in the database schema and attaches the context to the
database instance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import CouplingError
from repro.irs.engine import IRSEngine

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import Database

_CONTEXT_ATTR = "_coupling_context"


@dataclass
class CouplingCounters:
    """Instrumentation shared by the whole coupling (reset per experiment).

    Increments on concurrent paths go through :meth:`add`; plain ``+= 1``
    remains fine on single-threaded experiment code but the coupling core
    uses :meth:`add` throughout so the service layer never loses counts.
    """

    get_irs_value_calls: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    derivations: int = 0
    index_runs: int = 0
    documents_indexed: int = 0
    updates_propagated: int = 0
    updates_cancelled: int = 0
    updates_logged: int = 0
    forced_propagations: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to the counter called ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def reset(self) -> None:
        with self._lock:
            for name, value in vars(self).items():
                if isinstance(value, int) and not name.startswith("_"):
                    setattr(self, name, 0)


@dataclass
class CouplingContext:
    """Everything coupling methods need besides the target object."""

    engine: IRSEngine
    counters: CouplingCounters = field(default_factory=CouplingCounters)
    #: When set, IRS queries go through result files on disk (the paper's
    #: historical exchange mechanism) instead of the in-process API.
    result_file_directory: Optional[str] = None
    #: The single-file durable store backing this coupling
    #: (:class:`repro.store.SingleFileStore`); None when the system runs
    #: in memory or on the legacy per-collection JSON layout.
    storage: Optional[object] = None
    #: Default update-propagation policy for new collections.
    default_update_policy: str = "deferred"
    #: Ablation switch: when False, the pending-operation log appends
    #: blindly instead of cancelling annihilating sequences (Section 4.6).
    cancellation_enabled: bool = True
    #: Per-collection mutation mutexes serializing ``indexObjects`` and
    #: update propagation (the coupling's engine-mutating paths).  Acquired
    #: *before* any database lock, released after, so the ordering
    #: mutation-mutex -> DB locks -> collection RW lock holds globally (see
    #: :mod:`repro.sync`).
    _mutation_mutexes: Dict[str, threading.RLock] = field(
        default_factory=dict, repr=False, compare=False
    )
    _mutex_guard: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def mutation_mutex(self, collection_name: str) -> threading.RLock:
        """The re-entrant mutex serializing mutations of one collection."""
        with self._mutex_guard:
            mutex = self._mutation_mutexes.get(collection_name)
            if mutex is None:
                mutex = threading.RLock()
                self._mutation_mutexes[collection_name] = mutex
            return mutex


def install_coupling(db: "Database", engine: IRSEngine, **context_options) -> CouplingContext:
    """Define the coupling classes in ``db`` and attach a context.

    Idempotent with respect to schema (re-installation replaces the engine
    wiring but leaves classes alone).  Returns the context.
    """
    from repro.core import collection as collection_module
    from repro.core import irs_object as irs_object_module

    context = CouplingContext(engine=engine, **context_options)
    setattr(db, _CONTEXT_ATTR, context)
    irs_object_module.define_irs_object_class(db)
    collection_module.define_collection_class(db)
    collection_module.register_semantic_restrictor(db)
    return context


def coupling_context(db: "Database") -> CouplingContext:
    """The context installed on ``db`` (raises when the coupling is absent)."""
    context = getattr(db, _CONTEXT_ATTR, None)
    if context is None:
        raise CouplingError(
            "coupling not installed on this database; call install_coupling()"
        )
    return context
