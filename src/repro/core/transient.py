"""On-the-fly indexing (Section 4.3.1, alternative (3)).

"(3) inserting IRS documents into IRS collections on the fly before query
processing, and deleting them afterwards ... is inefficient due to the fact
that inserting and deleting of IRS documents is costly."

:func:`transient_members` implements the alternative faithfully so the
TRANS benchmark can quantify that claim against buffered derivation: inside
the ``with`` block the given objects are genuinely represented in the IRS
collection (queries return direct values for them); on exit their IRS
documents are removed and the result buffer is invalidated twice — once on
entry and once on exit, since both transitions change the collection's
contents.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, List

from repro.core.context import coupling_context
from repro.core.text_modes import text_for
from repro.oodb.objects import DBObject


@contextmanager
def transient_members(
    collection_obj: DBObject, objects: Iterable[DBObject]
) -> Iterator[List[DBObject]]:
    """Temporarily represent ``objects`` in the collection.

    Yields the list of objects actually inserted (those that were already
    members are left alone and not removed afterwards).
    """
    db = collection_obj.database
    context = coupling_context(db)
    engine = context.engine
    irs_name = collection_obj.get("irs_name")
    text_mode = collection_obj.get("text_mode") or 0

    doc_map = dict(collection_obj.get("doc_map") or {})
    inserted: List[DBObject] = []
    try:
        for obj in objects:
            if str(obj.oid) in doc_map:
                continue
            text = (
                obj.send("getText", text_mode)
                if obj.responds_to("getText")
                else text_for(obj, text_mode)
            )
            doc_id = engine.index_document(irs_name, text, {"oid": str(obj.oid)})
            doc_map[str(obj.oid)] = [doc_id]
            inserted.append(obj)
            context.counters.add("documents_indexed")
        collection_obj.set("doc_map", doc_map)
        collection_obj.set("buffer", {})  # contents changed: results stale
        _invalidate_derived_caches(collection_obj)
        yield inserted
    finally:
        doc_map = dict(collection_obj.get("doc_map") or {})
        for obj in inserted:
            doc_ids = doc_map.pop(str(obj.oid), [])
            for doc_id in doc_ids:
                engine.remove_document(irs_name, doc_id)
        collection_obj.set("doc_map", doc_map)
        collection_obj.set("buffer", {})  # and stale again after removal
        _invalidate_derived_caches(collection_obj)


def _invalidate_derived_caches(collection_obj: DBObject) -> None:
    from repro.core.hierarchical import invalidate_scorer

    invalidate_scorer(collection_obj)
