"""The persistent IRS-result buffer.

Section 4.2: "For both intra- and inter-query optimization, the results of
IRS calls are buffered persistently in a dictionary of type
``||STRING --> ||IRSObjects --> REAL|| ||``.  Its keys are IRS queries."

The buffer lives as a ``DICT`` attribute of the COLLECTION database object,
so it is persistent exactly like any other database state (it survives
checkpoints and recovery).  :class:`ResultBuffer` wraps attribute access and
feeds the hit/miss counters that the FIG3 benchmark reads.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.context import CouplingCounters
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

_BUFFER_ATTR = "buffer"


class ResultBuffer:
    """View onto one COLLECTION object's persistent result buffer."""

    def __init__(self, collection_obj: DBObject, counters: CouplingCounters) -> None:
        self._collection = collection_obj
        self._counters = counters

    def _key(self, irs_query: str, model: Optional[str]) -> str:
        return f"{model or ''}|{irs_query}"

    def lookup(self, irs_query: str, model: Optional[str] = None) -> Optional[Dict[OID, float]]:
        """The buffered result for ``irs_query``, or None on a miss."""
        stored = self._collection.get(_BUFFER_ATTR) or {}
        entry = stored.get(self._key(irs_query, model))
        if entry is None:
            self._counters.buffer_misses += 1
            return None
        self._counters.buffer_hits += 1
        return {OID.parse(oid_str): value for oid_str, value in entry.items()}

    def contains(self, irs_query: str, model: Optional[str] = None) -> bool:
        """True when the query is buffered (no counter side effects)."""
        stored = self._collection.get(_BUFFER_ATTR) or {}
        return self._key(irs_query, model) in stored

    def store(self, irs_query: str, values: Dict[OID, float], model: Optional[str] = None) -> None:
        """Buffer ``values`` under ``irs_query``."""
        stored = dict(self._collection.get(_BUFFER_ATTR) or {})
        stored[self._key(irs_query, model)] = {str(oid): value for oid, value in values.items()}
        self._collection.set(_BUFFER_ATTR, stored)

    def amend(self, irs_query: str, oid: OID, value: float, model: Optional[str] = None) -> None:
        """Insert one derived value into an existing buffered result.

        Figure 3's flow chart: after ``deriveIRSValue`` the result is
        inserted into the buffer so later calls for the same object hit.
        """
        stored = dict(self._collection.get(_BUFFER_ATTR) or {})
        key = self._key(irs_query, model)
        entry = dict(stored.get(key, {}))
        entry[str(oid)] = value
        stored[key] = entry
        self._collection.set(_BUFFER_ATTR, stored)

    def invalidate(self) -> None:
        """Drop every buffered result (after update propagation)."""
        self._collection.set(_BUFFER_ATTR, {})

    def size(self) -> int:
        """Number of buffered queries."""
        return len(self._collection.get(_BUFFER_ATTR) or {})
