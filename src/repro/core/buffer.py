"""The persistent IRS-result buffer.

Section 4.2: "For both intra- and inter-query optimization, the results of
IRS calls are buffered persistently in a dictionary of type
``||STRING --> ||IRSObjects --> REAL|| ||``.  Its keys are IRS queries."

The buffer lives as a ``DICT`` attribute of the COLLECTION database object,
so it is persistent exactly like any other database state (it survives
checkpoints and recovery).  :class:`ResultBuffer` wraps attribute access and
feeds the hit/miss counters that the FIG3 benchmark reads.

Writes are copy-on-write with a working copy per buffer view: the stored
dictionary is copied **once** when this view first diverges from it, and
later writes through the same view mutate the working copy in place before
re-storing it.  Buffering N queries is therefore O(N) total instead of the
O(N²) of copying the whole dictionary on every write.  Because the first
diverging write copies, the pre-existing stored dictionary is never mutated
— transaction undo snapshots stay intact and a full abort restores it.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro import obs
from repro.core.context import CouplingCounters
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

_BUFFER_ATTR = "buffer"


class ResultBuffer:
    """View onto one COLLECTION object's persistent result buffer."""

    def __init__(self, collection_obj: DBObject, counters: CouplingCounters) -> None:
        self._collection = collection_obj
        self._counters = counters
        self._working: Optional[dict] = None
        #: Keys whose entry dicts this view created (safe to mutate in place).
        self._owned_keys: Set[str] = set()

    def _key(self, irs_query: str, model: Optional[str]) -> str:
        return f"{model or ''}|{irs_query}"

    def _stored(self) -> dict:
        return self._collection.get(_BUFFER_ATTR) or {}

    def _working_copy(self) -> dict:
        """The mutable buffer dict, copying the stored one at most once.

        While this view remains the last writer, the stored object *is* the
        working copy and no further copying happens.  If someone else wrote
        (or recovery replaced the attribute), the next write re-copies.
        """
        stored = self._collection.get(_BUFFER_ATTR)
        if stored is None:
            self._working = {}
            self._owned_keys = set()
        elif stored is not self._working:
            self._working = dict(stored)
            self._owned_keys = set()
        return self._working

    def lookup(self, irs_query: str, model: Optional[str] = None) -> Optional[Dict[OID, float]]:
        """The buffered result for ``irs_query``, or None on a miss."""
        entry = self._stored().get(self._key(irs_query, model))
        if entry is None:
            self._counters.add("buffer_misses")
            obs.metrics().counter("coupling.buffer.misses").inc()
            return None
        self._counters.add("buffer_hits")
        obs.metrics().counter("coupling.buffer.hits").inc()
        return {OID.parse(oid_str): value for oid_str, value in entry.items()}

    def contains(self, irs_query: str, model: Optional[str] = None) -> bool:
        """True when the query is buffered (no counter side effects)."""
        return self._key(irs_query, model) in self._stored()

    def store(self, irs_query: str, values: Dict[OID, float], model: Optional[str] = None) -> None:
        """Buffer ``values`` under ``irs_query``."""
        working = self._working_copy()
        key = self._key(irs_query, model)
        working[key] = {str(oid): value for oid, value in values.items()}
        self._owned_keys.add(key)
        self._collection.set(_BUFFER_ATTR, working)
        obs.metrics().counter("coupling.buffer.stores").inc()

    def amend(self, irs_query: str, oid: OID, value: float, model: Optional[str] = None) -> None:
        """Insert one derived value into an existing buffered result.

        Figure 3's flow chart: after ``deriveIRSValue`` the result is
        inserted into the buffer so later calls for the same object hit.
        """
        working = self._working_copy()
        key = self._key(irs_query, model)
        if key in self._owned_keys:
            entry = working.setdefault(key, {})
        else:
            # The entry dict may be shared with the pre-copy stored buffer;
            # copy it once before mutating.
            entry = dict(working.get(key, {}))
            working[key] = entry
            self._owned_keys.add(key)
        entry[str(oid)] = value
        self._collection.set(_BUFFER_ATTR, working)
        obs.metrics().counter("coupling.buffer.amends").inc()

    def invalidate(self) -> None:
        """Drop every buffered result (after update propagation)."""
        self._working = {}
        self._owned_keys = set()
        self._collection.set(_BUFFER_ATTR, self._working)

    def size(self) -> int:
        """Number of buffered queries."""
        return len(self._stored())
