"""Text modes: which text represents an object in an IRS collection.

Section 4.3.2: "Each IRSObject instance provides the method getText.  It is
the application programmer's responsibility to implement this method.  In
this way, arbitrary text fragments can be associated to each database
object."  The ``mode`` parameter exists "to provide different
representations of the same IRSObject in different collections".

This module is the registry behind ``getText(mode)``.  Modes 0-3 implement
the strategies Section 4.3.1 discusses; applications may register further
modes (or per-class overrides by overriding ``getText`` on an element-type
class, exactly as the paper intends).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import CouplingError
from repro.oodb.objects import DBObject

TextProvider = Callable[[DBObject], str]

#: Mode numbers with well-known meanings.
FULL_TEXT = 0          # the complete subtree text (the paper's SGML default)
OWN_TEXT = 1           # only the element's direct content
TITLE_ABSTRACT = 2     # titles found in the subtree (auto-abstract, 4.3.1(1))
FIRST_SENTENCES = 3    # leading sentence of each leaf (user-style abstract)


def _full_text(obj: DBObject) -> str:
    """Mode 0: "by inspecting the leaves of the subtree rooted at an
    element, getText identifies its representation" (Section 4.3.2)."""
    return obj.send("getTextContent")


def _own_text(obj: DBObject) -> str:
    """Mode 1: only the element's own text leaves (finest granularity)."""
    return obj.get("content") or ""


_TITLE_TAGS = ("DOCTITLE", "SECTITLE", "TITLE", "CAPTION")


def _title_abstract(obj: DBObject) -> str:
    """Mode 2: generated abstract "e.g., from the titles of all subobjects"
    (Section 4.3.1, alternative 1)."""
    parts: List[str] = []
    attributes = obj.get("sgml_attributes") or {}
    if attributes.get("TITLE"):
        parts.append(attributes["TITLE"])
    own_tag = obj.get("tag")
    if own_tag in _TITLE_TAGS and (obj.get("content") or "").strip():
        parts.append(obj.get("content"))
    for descendant in obj.send("getDescendants"):
        if descendant.get("tag") in _TITLE_TAGS:
            text = descendant.get("content") or ""
            if text.strip():
                parts.append(text)
    return " ".join(parts)


def _first_sentences(obj: DBObject) -> str:
    """Mode 3: the first sentence of every leaf — a cheap user-style abstract."""
    sentences: List[str] = []
    own = (obj.get("content") or "").strip()
    leaves = [own] if own else []
    leaves.extend(
        (d.get("content") or "").strip()
        for d in obj.send("getDescendants")
        if d.send("isLeaf")
    )
    for text in leaves:
        if not text:
            continue
        head, _sep, _tail = text.partition(".")
        sentences.append(head.strip())
    return ". ".join(s for s in sentences if s)


_MODES: Dict[int, TextProvider] = {
    FULL_TEXT: _full_text,
    OWN_TEXT: _own_text,
    TITLE_ABSTRACT: _title_abstract,
    FIRST_SENTENCES: _first_sentences,
}


def register_text_mode(mode: int, provider: TextProvider) -> None:
    """Register (or replace) the provider behind a mode number."""
    _MODES[mode] = provider


def text_for(obj: DBObject, mode: int) -> str:
    """Produce the object's textual representation under ``mode``."""
    provider = _MODES.get(mode)
    if provider is None:
        raise CouplingError(f"unknown text mode {mode}; registered: {sorted(_MODES)}")
    return provider(obj)


def known_modes() -> List[int]:
    """All registered mode numbers."""
    return sorted(_MODES)
