"""Granularity policies: which objects become IRS documents (Section 4.3).

"The question discussed in the following is how to define the granularity
of IRS documents."  Each policy below is one of the paper's bullet points,
expressed — as Section 4.3.2 prescribes — purely as a specification query
plus a text mode (plus, for [Cal94], a segment size):

* ``document_level``   — "Each SGML document becomes an IRS document."
* ``element_type``     — "Each document element of a specified element type
  ... becomes an IRS document.  This approach is used in most known
  coupling approaches, e.g., [CST92], [GTZ93]."
* ``leaf_level``       — "Each leaf node becomes an IRS document (finest
  granularity)."
* ``equal_segments``   — "One might want to have IRS documents of
  approximately the same size [Cal94]."
* ``all_elements``     — every element indexed with its full subtree text:
  the fully redundant extreme whose overhead [SAZ94] compresses.
* ``abstract_level``   — alternative (1) of 4.3.1: every element indexed,
  but with a generated abstract instead of the complete subtext.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core import text_modes
from repro.core.collection import _create_collection, index_objects
from repro.oodb.database import Database
from repro.oodb.objects import DBObject


@dataclass(frozen=True)
class GranularityPolicy:
    """A named recipe turning a corpus into one IRS collection."""

    name: str
    spec_query: str
    text_mode: int = text_modes.FULL_TEXT
    segment_words: int = 0
    description: str = ""

    def build(
        self,
        db: Database,
        collection_name: Optional[str] = None,
        derivation: str = "maximum",
    ) -> DBObject:
        """Create and populate a COLLECTION following this policy."""
        collection_obj = _create_collection(
            db,
            collection_name or self.name,
            spec_query=self.spec_query,
            text_mode=self.text_mode,
            derivation=derivation,
            segment_words=self.segment_words,
        )
        index_objects(collection_obj)
        return collection_obj


def document_level(root_class: str = "MMFDOC") -> GranularityPolicy:
    """Whole documents as IRS documents (coarse; no element queries)."""
    return GranularityPolicy(
        name=f"doc_{root_class.lower()}",
        spec_query=f"ACCESS d FROM d IN {root_class}",
        text_mode=text_modes.FULL_TEXT,
        description="one IRS document per SGML document",
    )


def element_type(element_class: str = "PARA") -> GranularityPolicy:
    """Instances of one element-type class as IRS documents."""
    return GranularityPolicy(
        name=f"type_{element_class.lower()}",
        spec_query=f"ACCESS p FROM p IN {element_class}",
        text_mode=text_modes.FULL_TEXT,
        description=f"one IRS document per {element_class} element",
    )


def leaf_level(base_class: str = "Element") -> GranularityPolicy:
    """Every leaf element as an IRS document (finest granularity)."""
    return GranularityPolicy(
        name="leaves",
        spec_query=(
            f"ACCESS e FROM e IN {base_class} WHERE e -> isLeaf() = TRUE"
        ),
        text_mode=text_modes.OWN_TEXT,
        description="one IRS document per leaf element",
    )


def equal_segments(words: int = 30, root_class: str = "MMFDOC") -> GranularityPolicy:
    """Fixed-size segments of ~``words`` words per document [Cal94]."""
    return GranularityPolicy(
        name=f"seg{words}_{root_class.lower()}",
        spec_query=f"ACCESS d FROM d IN {root_class}",
        text_mode=text_modes.FULL_TEXT,
        segment_words=words,
        description=f"equal-length segments of {words} words",
    )


def all_elements(base_class: str = "Element") -> GranularityPolicy:
    """Every element with its full subtree text: maximal redundancy."""
    return GranularityPolicy(
        name="all_elements",
        spec_query=f"ACCESS e FROM e IN {base_class}",
        text_mode=text_modes.FULL_TEXT,
        description="every element indexed with complete subtext (redundant)",
    )


def abstract_level(base_class: str = "Element") -> GranularityPolicy:
    """Every element, but indexed with a generated title abstract."""
    return GranularityPolicy(
        name="abstracts",
        spec_query=f"ACCESS e FROM e IN {base_class}",
        text_mode=text_modes.TITLE_ABSTRACT,
        description="every element indexed with a generated abstract",
    )


def standard_policies(root_class: str = "MMFDOC", element_class: str = "PARA") -> list:
    """The policy set compared by the GRAN benchmark."""
    return [
        document_level(root_class),
        element_type(element_class),
        leaf_level(),
        equal_segments(30, root_class),
        all_elements(),
        abstract_level(),
    ]
