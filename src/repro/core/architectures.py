"""The three loose-coupling architectures of Figure 1.

Section 3 compares: (1) a *control module* coordinating equivalent OODBMS
and IRS, (2) the *IRS as control component*, and (3) the *DBMS as control
component* — and argues (3) wins because queries stay in the database query
language, query processing/optimization need not be re-invented, and "other
database features likewise 'are for free'".

Each alternative is implemented as a runnable strategy over the same
document base so the FIG1 benchmark can print the comparison table:
supported features, interface crossings per query, and latency.  The
control-module and IRS-control strategies implement exactly the limited
query shapes such systems supported (COINS/HYDRA-style: one structural
filter + one content expression), which is the point — "expressiveness of
queries depends on the capacity of the control module" — while the
DBMS-control strategy is simply the coupling itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Tuple

from repro.core.collection import _get_irs_result
from repro.core.system import DocumentSystem
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID


@dataclass(frozen=True)
class MixedWorkloadQuery:
    """The query shape all three architectures can attempt.

    Structure part: attribute equality on the document root.  Content
    part: an IRS query with a threshold on the element class below.
    Realistic systems of the era (COINS, HYDRA) supported exactly this.
    """

    attribute: str
    attribute_value: str
    irs_query: str
    threshold: float
    element_class: str = "PARA"
    root_class: str = "MMFDOC"


@dataclass
class ArchitectureReport:
    """The outcome of running a workload under one architecture."""

    name: str
    rows: List[Tuple[str, float]]
    interface_crossings: int
    seconds: float
    features: Dict[str, bool] = field(default_factory=dict)


#: The feature checklist distilled from Section 3's discussion.
FEATURES = (
    "declarative_mixed_queries",   # mixed queries in one query language
    "nested_structure_predicates", # navigation joins (getNext/getContaining)
    "transactions",                # concurrency control & recovery apply
    "no_new_query_processor",      # "query-processing mechanisms need not be altered"
    "derived_irs_values",          # deriveIRSValue for non-indexed objects
    "reuses_existing_kernels",     # "modifying the kernel ... is not necessary"
)


class ControlModuleArchitecture:
    """Alternative (1): a third component coordinates both systems.

    The module queries the OODBMS for the structure part and the IRS for
    the content part, then joins on OIDs itself.  Its expressiveness is its
    own code: here, one attribute filter + one thresholded content query.
    """

    name = "control_module"
    features = {
        "declarative_mixed_queries": False,
        "nested_structure_predicates": False,
        "transactions": False,
        "no_new_query_processor": False,
        "derived_irs_values": False,
        "reuses_existing_kernels": True,
    }

    def __init__(self, system: DocumentSystem, collection_obj: DBObject) -> None:
        self._system = system
        self._collection = collection_obj

    def run(self, query: MixedWorkloadQuery) -> ArchitectureReport:
        started = perf_counter()
        crossings = 0

        # Crossing 1: structure query to the OODBMS.
        structure_rows = self._system.db.query(
            f"ACCESS d FROM d IN {query.root_class} "
            f"WHERE d -> getAttributeValue('{query.attribute}') = '{query.attribute_value}'"
        )
        crossings += 1
        matching_roots = {row[0].oid for row in structure_rows}

        # Crossing 2: content query to the IRS.
        values = _get_irs_result(self._collection, query.irs_query)
        crossings += 1

        # The module combines: map each relevant element to its root and
        # intersect.  This re-implements navigation the DBMS already has.
        rows: List[Tuple[str, float]] = []
        for oid, value in sorted(values.items()):
            if value <= query.threshold:
                continue
            element = self._system.db.get_object(oid)
            root = element.send("getContaining", query.root_class)
            crossings += 1  # per-object call back into the OODBMS
            if root is not None and root.oid in matching_roots:
                rows.append((str(oid), value))
        return ArchitectureReport(
            self.name, sorted(rows), crossings, perf_counter() - started, dict(self.features)
        )


class IRSControlArchitecture:
    """Alternative (2): the application talks only to the IRS.

    Structure data must be denormalized into IRS-document metadata ("the
    control component's architecture is not laid out for database
    functionality").  Only flat metadata equality filters are possible; the
    OODBMS is not involved at query time at all.
    """

    name = "irs_control"
    features = {
        "declarative_mixed_queries": False,
        "nested_structure_predicates": False,
        "transactions": False,
        "no_new_query_processor": False,
        "derived_irs_values": False,
        "reuses_existing_kernels": False,  # the IRS needs major extension
    }

    def __init__(self, system: DocumentSystem, irs_collection_name: str) -> None:
        self._system = system
        self._irs_name = irs_collection_name

    def prepare(self, query: MixedWorkloadQuery) -> None:
        """Denormalize the structural attribute into IRS metadata."""
        collection = self._system.engine.collection(self._irs_name)
        for document in collection.documents():
            oid_str = document.metadata.get("oid")
            if oid_str is None:
                continue
            oid = OID.parse(oid_str)
            if not self._system.db.object_exists(oid):
                continue
            element = self._system.db.get_object(oid)
            root = element.send("getContaining", query.root_class)
            if root is not None:
                document.metadata[query.attribute] = (
                    root.send("getAttributeValue", query.attribute) or ""
                )

    def run(self, query: MixedWorkloadQuery) -> ArchitectureReport:
        self.prepare(query)
        started = perf_counter()
        result = self._system.engine.query(self._irs_name, query.irs_query)
        collection = self._system.engine.collection(self._irs_name)
        rows: List[Tuple[str, float]] = []
        for doc_id, value in result.ranked():
            if value <= query.threshold:
                continue
            metadata = collection.document(doc_id).metadata
            if metadata.get(query.attribute) == query.attribute_value:
                rows.append((metadata.get("oid", f"doc:{doc_id}"), value))
        return ArchitectureReport(
            self.name, sorted(rows), 1, perf_counter() - started, dict(self.features)
        )


class DBMSControlArchitecture:
    """Alternative (3): the DBMS is the control component — our coupling."""

    name = "dbms_control"
    features = {feature: True for feature in FEATURES}

    def __init__(self, system: DocumentSystem, collection_obj: DBObject) -> None:
        self._system = system
        self._collection = collection_obj

    def run(self, query: MixedWorkloadQuery) -> ArchitectureReport:
        started = perf_counter()
        rows_raw = self._system.query(
            f"ACCESS p, p -> getIRSValue(coll, $q) "
            f"FROM p IN {query.element_class}, d IN {query.root_class} "
            f"WHERE d -> getAttributeValue('{query.attribute}') = '{query.attribute_value}' AND "
            f"p -> getContaining('{query.root_class}') == d AND "
            f"p -> getIRSValue(coll, $q) > {query.threshold}",
            {"coll": self._collection, "q": query.irs_query},
        )
        rows = sorted((str(obj.oid), value) for obj, value in rows_raw)
        # One interface crossing: the (buffered) IRS call behind getIRSResult.
        return ArchitectureReport(
            self.name, rows, 1, perf_counter() - started, dict(self.features)
        )


def run_comparison(
    system: DocumentSystem,
    collection_obj: DBObject,
    queries: List[MixedWorkloadQuery],
) -> Dict[str, List[ArchitectureReport]]:
    """Run the workload under all three architectures."""
    irs_name = collection_obj.get("irs_name")
    architectures = [
        ControlModuleArchitecture(system, collection_obj),
        IRSControlArchitecture(system, irs_name),
        DBMSControlArchitecture(system, collection_obj),
    ]
    reports: Dict[str, List[ArchitectureReport]] = {}
    for architecture in architectures:
        reports[architecture.name] = [architecture.run(q) for q in queries]
    return reports
