"""Update propagation from the OODBMS to the IRS (Section 4.6).

"With the OODBMS being the control component updates need to be propagated
to the IRS.  The point of propagation time can freely be chosen":

* ``eager`` — "After each database update the corresponding IRS-index
  structures are updated" (costly when updates dominate queries);
* ``deferred`` — the application invokes propagation (e.g. in low-load
  periods); "If, however, an information-need query is issued with update
  propagation pending, propagation is enforced" — enforced by
  :func:`repro.core.collection._get_irs_result`.

"Database operations are recorded to avoid unnecessary update propagations"
— the pending-operation log collapses sequences whose effects cancel:
insert-then-delete annihilates completely, repeated modifications collapse
to one, a modification of a freshly inserted object is subsumed by the
insert, and delete-then-reinsert becomes a modification.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

from repro import obs
from repro.core.context import coupling_context
from repro.core.text_modes import text_for
from repro.errors import CouplingError, DocumentMissingError
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

logger = logging.getLogger(__name__)

INSERT = "insert"
MODIFY = "modify"
DELETE = "delete"

EAGER = "eager"
DEFERRED = "deferred"

_POLICIES = (EAGER, DEFERRED)


def record_update(collection_obj: DBObject, op: str, obj: DBObject) -> None:
    """Entry point for the COLLECTION update methods.

    Under ``eager`` the operation is applied to the IRS immediately; under
    ``deferred`` it is appended to the pending log with cancellation.
    """
    if op not in (INSERT, MODIFY, DELETE):
        raise CouplingError(f"unknown update operation {op!r}")
    db = collection_obj.database
    context = coupling_context(db)
    context.counters.add("updates_logged")
    obs.metrics().counter("coupling.updates.logged").inc()
    # Claim the collection object before reading its state so two recorders
    # (or a recorder and a propagator) serialize in the database lock
    # manager, where deadlocks are detected; the mutation mutex serializes
    # non-transactional callers the lock manager never sees.
    db.lock_exclusive(collection_obj.oid)
    with context.mutation_mutex(str(collection_obj.oid)):
        policy = collection_obj.get("update_policy") or context.default_update_policy
        if policy not in _POLICIES:
            raise CouplingError(f"unknown update policy {policy!r}; know {_POLICIES}")
        if policy == EAGER:
            _apply([[op, str(obj.oid)]], collection_obj)
            _invalidate_buffer(collection_obj)
            context.counters.add("updates_propagated")
            obs.metrics().counter("coupling.updates.propagated").inc()
            return
        pending = [list(entry) for entry in (collection_obj.get("pending_ops") or [])]
        if context.cancellation_enabled:
            pending = _log_with_cancellation(pending, op, str(obj.oid), context)
        else:
            pending.append([op, str(obj.oid)])
        collection_obj.set("pending_ops", pending)


def _log_with_cancellation(
    pending: List[list], op: str, oid_str: str, context
) -> List[list]:
    """Append (op, oid) to the log, collapsing cancelling sequences."""
    previous = None
    for index, (pending_op, pending_oid) in enumerate(pending):
        if pending_oid == oid_str:
            previous = (index, pending_op)
    if previous is None:
        pending.append([op, oid_str])
        return pending
    index, pending_op = previous
    if op == DELETE and pending_op == INSERT:
        # Generated then deleted before propagation: both vanish.
        del pending[index]
        context.counters.add("updates_cancelled", 2)
        return pending
    if op == MODIFY and pending_op in (INSERT, MODIFY):
        # The earlier operation will pick up the current text anyway.
        context.counters.add("updates_cancelled")
        return pending
    if op == DELETE and pending_op == MODIFY:
        # Modification of a to-be-deleted object is moot.
        del pending[index]
        context.counters.add("updates_cancelled")
        pending.append([DELETE, oid_str])
        return pending
    if op == INSERT and pending_op == DELETE:
        # Delete then re-insert: net effect is a modification.
        del pending[index]
        context.counters.add("updates_cancelled")
        pending.append([MODIFY, oid_str])
        return pending
    pending.append([op, oid_str])
    return pending


def has_pending(collection_obj: DBObject) -> bool:
    """True when deferred operations await propagation."""
    return bool(collection_obj.get("pending_ops") or [])


def propagate(collection_obj: DBObject, forced: bool = False) -> int:
    """Apply all pending operations to the IRS; returns how many ran.

    Concurrency protocol: the collection object is X-locked first (inside a
    transaction), so a deadlock/timeout abort can only strike while the IRS
    index is still untouched and a service-layer retry finds consistent
    state; the mutation mutex then serializes against non-transactional
    mutators; finally :func:`_apply` batches its engine mutations under the
    collection's write lock with all database reads done up front.
    """
    db = collection_obj.database
    context = coupling_context(db)
    db.lock_exclusive(collection_obj.oid)
    with context.mutation_mutex(str(collection_obj.oid)):
        pending = [tuple(entry) for entry in (collection_obj.get("pending_ops") or [])]
        if not pending:
            # Another propagator drained the log while we waited: done.
            return 0
        with obs.tracer().span(
            "coupling.propagateUpdates", operations=len(pending), forced=forced
        ):
            _apply([list(entry) for entry in pending], collection_obj)
            collection_obj.set("pending_ops", [])
            _invalidate_buffer(collection_obj)
    context.counters.add("updates_propagated", len(pending))
    obs.metrics().counter("coupling.updates.propagated").inc(len(pending))
    if forced:
        context.counters.add("forced_propagations")
        obs.metrics().counter("coupling.updates.forced_propagations").inc()
    logger.debug(
        "propagated %d pending update(s) to IRS collection %r%s",
        len(pending),
        collection_obj.get("irs_name"),
        " (forced by query)" if forced else "",
    )
    return len(pending)


def _apply(operations: List[list], collection_obj: DBObject) -> None:
    """Run operations against the IRS collection, maintaining doc_map.

    Two phases.  Phase 1 performs every database read (object texts,
    segmentation) with no engine access; phase 2 performs the engine
    mutations under the collection's write lock with no database access —
    code holding that write lock must never wait on database locks (see
    :mod:`repro.sync`), and readers observe the whole batch atomically.
    Engine mutations tolerate already-missing documents so a retried
    propagation (after a deadlock abort rolled back ``pending_ops`` but an
    earlier attempt's engine work survived) stays idempotent.
    """
    context = coupling_context(collection_obj.database)
    engine = context.engine
    irs_name = collection_obj.get("irs_name")
    text_mode = collection_obj.get("text_mode") or 0
    segment_words = collection_obj.get("segment_words") or 0
    doc_map = dict(collection_obj.get("doc_map") or {})
    db = collection_obj.database
    from repro.core.collection import segment_text

    # Phase 1 — database reads only.
    planned: List[Tuple[str, str, Optional[List[str]]]] = []
    for op, oid_str in operations:
        if op == DELETE:
            planned.append((DELETE, oid_str, None))
            continue
        oid = OID.parse(oid_str)
        if not db.object_exists(oid):
            continue  # object died before propagation; nothing to index
        obj = db.get_object(oid)
        text = obj.send("getText", text_mode) if obj.responds_to("getText") else text_for(obj, text_mode)
        planned.append((op, oid_str, segment_text(text, segment_words)))

    # Phase 2 — engine mutations only, atomic for concurrent readers.  The
    # bulk context coalesces the whole window's epoch bumps into one, so a
    # batch of N pending updates evicts epoch-keyed caches once, not N times.
    indexed = 0
    with engine.bulk_mutating(irs_name):
        for op, oid_str, pieces in planned:
            if op == DELETE:
                for doc_id in doc_map.pop(oid_str, []):
                    try:
                        engine.remove_document(irs_name, doc_id)
                    except DocumentMissingError:
                        pass
                continue
            old_ids = doc_map.get(oid_str, [])
            if op == MODIFY and len(old_ids) == len(pieces) == 1:
                try:
                    # Fast path: same shape, replace in place.
                    engine.replace_document(irs_name, old_ids[0], pieces[0])
                    continue
                except DocumentMissingError:
                    old_ids = []  # fall through to a fresh index below
            for doc_id in old_ids:
                try:
                    engine.remove_document(irs_name, doc_id)
                except DocumentMissingError:
                    pass
            new_ids = []
            for piece in pieces:
                new_ids.append(engine.index_document(irs_name, piece, {"oid": oid_str}))
                indexed += 1
            doc_map[oid_str] = new_ids
    context.counters.add("documents_indexed", indexed)
    collection_obj.set("doc_map", doc_map)
    collection_obj.set("index_gen", int(collection_obj.get("index_gen") or 0) + 1)


def _invalidate_buffer(collection_obj: DBObject) -> None:
    """Buffered IRS results are stale once the index changed."""
    collection_obj.set("buffer", {})
    # Derived caches over the collection's contents are stale too.
    from repro.core.hierarchical import invalidate_scorer

    invalidate_scorer(collection_obj)
