"""Derivation schemes: IRS values for objects not represented in the IRS.

Section 4.5.2 is the paper's analytical heart: when only paragraphs are
indexed, how does an MMF document answer ``getIRSValue``?  "With our
framework the computation is left open to the application.  The application
programmer has to decide how derived IRS values should be computed."

This module ships the paper's tested scheme plus every alternative it
discusses:

``maximum``
    "We for our part have run tests with an implementation of
    deriveIRSValue iterating through the elements components and
    determining the maximal IRS value."
``average``
    "compute the average ... of IRS values of all components" [CST92].
``weighted_type``
    "take into consideration the type of the parts, e.g., by weighting the
    types" [Wil94] — weights per element tag from the collection's
    ``type_weights`` attribute.
``length_weighted``
    "Both the component's and the composite's length would be arguments of
    the derivation scheme" — components weighted by their share of the
    composite's text.
``subquery``
    The paper's proposed fix for the M3-vs-M4 anomaly: "the information how
    relevant elements are to the subqueries must be exploited.  Hence,
    first of all, the subqueries need to be identified."  The IRS query is
    decomposed into its top-level subqueries; each subquery's best
    component value is computed; the per-subquery maxima are re-combined
    with the query's own operator semantics.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.core.context import coupling_context
from repro.errors import CouplingError
from repro.irs.models import operators as ops
from repro.irs.queries import (
    OperatorNode,
    ProximityNode,
    TermNode,
    format_query,
    parse_irs_query,
)
from repro.oodb.objects import DBObject

#: A derivation scheme maps (collection object, IRS query, target object)
#: to a derived IRS value.
DerivationScheme = Callable[[DBObject, str, DBObject], float]


def component_values(
    collection_obj: DBObject, irs_query: str, obj: DBObject
) -> List[Tuple[DBObject, float]]:
    """IRS values of the object's indexed components.

    Components are the descendants of ``obj`` that are represented in the
    collection; represented-but-unmatched components contribute 0.0 (the
    paper: "good computation schemes combine all components' IRS values,
    not only highly ranked ones").
    """
    from repro.core import collection as coll  # deferred: avoids an import cycle

    values = coll._get_irs_result(collection_obj, irs_query)
    doc_map = collection_obj.get("doc_map") or {}
    components: List[Tuple[DBObject, float]] = []
    for descendant in obj.send("getDescendants"):
        if str(descendant.oid) in doc_map:
            components.append((descendant, values.get(descendant.oid, 0.0)))
    return components


def derive_maximum(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Maximum over component values (the paper's tested scheme)."""
    components = component_values(collection_obj, irs_query, obj)
    if not components:
        return 0.0
    return max(value for _c, value in components)


def derive_average(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Mean over component values [CST92]."""
    components = component_values(collection_obj, irs_query, obj)
    if not components:
        return 0.0
    return sum(value for _c, value in components) / len(components)


def derive_weighted_type(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Type-weighted mean [Wil94]; weights from ``type_weights`` (default 1)."""
    components = component_values(collection_obj, irs_query, obj)
    if not components:
        return 0.0
    weights = collection_obj.get("type_weights") or {}
    total_weight = 0.0
    total = 0.0
    for component, value in components:
        weight = float(weights.get(component.get("tag"), 1.0))
        total_weight += weight
        total += weight * value
    if total_weight == 0:
        return 0.0
    return total / total_weight


def derive_length_weighted(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Length-weighted mean: long components dominate short ones."""
    components = component_values(collection_obj, irs_query, obj)
    if not components:
        return 0.0
    lengths = [max(1, component.send("length")) for component, _v in components]
    total_length = sum(lengths)
    return sum(
        length * value for length, (_c, value) in zip(lengths, components)
    ) / total_length


def derive_subquery(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Subquery-aware derivation (Section 4.5.2's proposal).

    The query is decomposed into its top-level subqueries.  For each
    subquery the *best* component value is determined (a composite is as
    relevant to a subtopic as its most relevant part); the per-subquery
    evidence is then recombined with the top-level operator's own
    semantics.  ``#and(WWW NII)`` therefore rewards documents covering
    *both* terms anywhere among their components, distinguishing M3 (WWW
    paragraph + NII paragraph) from M4 (two NII paragraphs) — which
    ``maximum`` and ``average`` provably cannot.
    """
    tree = parse_irs_query(irs_query)
    if isinstance(tree, (TermNode, ProximityNode)):
        # Terms and proximity windows are atomic subqueries.
        return derive_maximum(collection_obj, irs_query, obj)
    if not isinstance(tree, OperatorNode):  # pragma: no cover - parser guarantees
        raise CouplingError(f"cannot decompose IRS query {irs_query!r}")
    sub_maxima = [
        derive_subquery(collection_obj, format_query(child), obj)
        for child in tree.children
    ]
    if tree.op == "and":
        return ops.op_and(sub_maxima)
    if tree.op == "or":
        return ops.op_or(sub_maxima)
    if tree.op == "not":
        return ops.op_not(sub_maxima[0])
    if tree.op == "sum":
        return ops.op_sum(sub_maxima)
    if tree.op == "wsum":
        return ops.op_wsum(tree.weights, sub_maxima)
    if tree.op == "max":
        return ops.op_max(sub_maxima)
    raise CouplingError(f"no combination rule for operator #{tree.op}")  # pragma: no cover


def derive_subquery_locality(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Subquery coverage blended with single-passage locality.

    The pure subquery scheme measures whether *some* component covers each
    subtopic but is blind to whether one component covers them together —
    yet a document whose single paragraph discusses both topics (M2) is
    intuitively stronger than one spreading them over two paragraphs (M3).
    Averaging the subquery-coverage evidence with the best whole-query
    component value (locality evidence) recovers the full intuitive order
    M2 > M3 > M4 of Section 4.5.2.
    """
    coverage = derive_subquery(collection_obj, irs_query, obj)
    locality = derive_maximum(collection_obj, irs_query, obj)
    return (coverage + locality) / 2.0


def derive_passage(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Passage-retrieval derivation (Section 6's [SAB93] candidate).

    The composite's subtree text is scored by its best sliding window
    against the collection's statistics.  Unlike the component-combination
    schemes this sees *local co-occurrence*: a document whose single
    paragraph covers both ``#and`` terms beats one that spreads them —
    without any redundant indexing of the composite.
    """
    from repro.irs.passages import PassageScorer  # deferred: optional machinery

    context = coupling_context(obj.database)
    irs_collection = context.engine.collection(collection_obj.get("irs_name"))
    scorer = PassageScorer(irs_collection)
    text = obj.send("getTextContent") if obj.responds_to("getTextContent") else ""
    return scorer.best_score(text, irs_query)


_SCHEMES: Dict[str, DerivationScheme] = {
    "maximum": derive_maximum,
    "average": derive_average,
    "weighted_type": derive_weighted_type,
    "length_weighted": derive_length_weighted,
    "subquery": derive_subquery,
    "subquery_locality": derive_subquery_locality,
    "passage": derive_passage,
}


def register_scheme(name: str, scheme: DerivationScheme) -> None:
    """Register (or replace) a derivation scheme under ``name``."""
    _SCHEMES[name] = scheme


def scheme_named(name: str) -> DerivationScheme:
    """Look up a scheme; raises :class:`CouplingError` when unknown."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise CouplingError(
            f"unknown derivation scheme {name!r}; registered: {sorted(_SCHEMES)}"
        ) from None


def known_schemes() -> List[str]:
    """All registered scheme names."""
    return sorted(_SCHEMES)


def derive(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """Apply the collection's configured scheme and count the derivation."""
    context = coupling_context(obj.database)
    context.counters.add("derivations")
    scheme = scheme_named(collection_obj.get("derivation") or "maximum")
    return scheme(collection_obj, irs_query, obj)
