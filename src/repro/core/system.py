"""The ``DocumentSystem`` facade: the whole stack assembled.

Wires together the OODBMS, the IRS engine, the SGML loader (with ``Element``
inheriting from ``IRSObject`` so "each document element is a subclass of
database class IRSObject", Section 4.2) and the coupling schema.  This is
the class examples and benchmarks instantiate.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from repro.core.context import CouplingContext, install_coupling
from repro.core.irs_object import IRSOBJECT_CLASS
from repro.irs.analysis import Analyzer
from repro.irs.engine import IRSEngine
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.sgml.document import Element
from repro.sgml.dtd import DTD
from repro.sgml.loader import SGMLLoader
from repro.sgml.parser import parse_document


class DocumentSystem:
    """OODBMS + IRS + SGML framework + coupling, ready for documents.

    Parameters
    ----------
    directory:
        When given, the database persists under ``<directory>/db`` and IRS
        exchange files are written under ``<directory>/irs`` (enabling the
        paper's file-based result exchange).  Default: fully in memory.
    model:
        Default retrieval model: "inquery" (default), "vector" or "boolean".
    analyzer:
        Custom analysis pipeline for all IRS collections.
    use_result_files:
        Force the file-based IRS exchange even without a directory
        (a temp directory is then created lazily).
    shards:
        Default shard count for new IRS collections (0: unsharded).  A
        persisted store reloads re-partitioned to this count — every
        layout cross-loads into every other.  Scoring over shards is
        bit-identical to unsharded scoring (DESIGN.md §"Sharded
        scoring"); parallel scatter workers engage once a session is
        opened with ``open_session(shards=N)``.
    shard_config:
        :class:`repro.irs.shards.ShardConfig` tunables (timeouts,
        retries, the fault-injection hook) for the scatter executor.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        model: str = "inquery",
        analyzer: Optional[Analyzer] = None,
        use_result_files: bool = False,
        shards: int = 0,
        shard_config: Any = None,
    ) -> None:
        db_dir = os.path.join(directory, "db") if directory else None
        self.db = Database(directory=db_dir)
        self._irs_index_directory = (
            os.path.join(directory, "irs_index") if directory else None
        )
        if self._irs_index_directory and os.path.isdir(self._irs_index_directory):
            # Reload persisted inverted indexes ("stored in a file system").
            from repro.irs.persistence import load_engine

            self.engine = load_engine(
                self._irs_index_directory, default_model=model, analyzer=analyzer,
                shard_count=shards, shard_config=shard_config,
            )
        else:
            self.engine = IRSEngine(
                default_model=model, analyzer=analyzer,
                shard_count=shards, shard_config=shard_config,
            )
        result_dir = None
        if directory:
            result_dir = os.path.join(directory, "irs")
            os.makedirs(result_dir, exist_ok=True)
        elif use_result_files:
            import tempfile

            result_dir = tempfile.mkdtemp(prefix="repro_irs_")
        self.context: CouplingContext = install_coupling(
            self.db, self.engine, result_file_directory=result_dir
        )
        self.loader = SGMLLoader(self.db, base_class=IRSOBJECT_CLASS)
        self._dtds: Dict[str, DTD] = {}
        # The default (inline) session: the supported query surface.  Build
        # pooled ones with ``system.open_session(workers=...)``.
        from repro.service.session import Session

        self.session = Session(self.db)
        self._sessions: List[Session] = []
        self._servers: List[Any] = []

    # -- document type management ----------------------------------------------

    def register_dtd(self, dtd: DTD) -> List[str]:
        """Register a DTD: one element-type class per declaration."""
        self._dtds[dtd.name or "default"] = dtd
        return self.loader.register_dtd(dtd)

    # -- document management ------------------------------------------------------

    def add_document(
        self, document: Union[str, Element], dtd: Optional[DTD] = None, validate: bool = True
    ) -> DBObject:
        """Parse (when given text), optionally validate, and fragment.

        Returns the root database object of the new document tree.
        """
        if isinstance(document, str):
            root = parse_document(document, dtd=dtd if validate else None)
        else:
            root = document
            if validate and dtd is not None:
                dtd.apply_defaults(root)
                dtd.validate(root)
        return self.loader.load_document(root)

    def delete_document(self, root: DBObject) -> int:
        """Remove a whole document tree; returns objects deleted."""
        return self.loader.delete_document(root)

    # -- collections ----------------------------------------------------------------

    def open_session(
        self, workers: int = 0, config: Any = None, shards: Optional[int] = None
    ):
        """Open a new :class:`repro.Session` on this system.

        ``workers=0`` gives the classic inline mode; ``workers>=1`` starts
        an embedded worker pool with cross-request batching.  Pooled
        sessions opened here are closed with the system.

        ``shards=N`` turns parallel scatter-gather scoring on: new
        collections default to N hash shards and prunable top-k queries
        fan out to per-shard worker processes (exact results guaranteed —
        sharded scoring is bit-identical to unsharded, and a failed
        worker degrades to retry then inline fallback, never a wrong
        ranking).  The worker pools are closed with the system.
        """
        from repro.service.session import Session

        if shards is not None:
            self.engine.shard_count = shards
            if shards:
                self.engine.attach_shard_executor()
        session = Session(self.db, workers=workers, config=config)
        if session.pooled:
            self._sessions.append(session)
        return session

    def serve(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: int = 0,
        config: Any = None,
    ):
        """Start a :class:`~repro.net.server.DocumentServer` on this system.

        ``workers>=1`` opens a pooled session for the server (closed with
        the system) so concurrent remote clients batch through one
        window; ``workers=0`` serves through the default inline session
        (paper semantics, one request at a time per connection).  With
        ``port`` omitted (or 0) the OS picks a free port — read it from
        ``server.address``.  The server is stopped by
        :meth:`close`; connect with
        ``repro.connect(f"tcp://{host}:{port}")``.
        """
        from repro.net.config import ServerConfig
        from repro.net.server import DocumentServer

        if config is None:
            config = ServerConfig(
                host=host if host is not None else "127.0.0.1",
                port=port if port is not None else 0,
            )
        elif host is not None or port is not None:
            raise ValueError("pass either config= or host/port, not both")
        session = self.open_session(workers=workers) if workers else self.session
        server = DocumentServer(self, config=config, session=session)
        server.start()
        self._servers.append(server)
        return server

    def create_collection(self, name: str, spec_query: str = "", **options: Any) -> DBObject:
        """Create a COLLECTION object (delegates to :meth:`repro.Session.create_collection`)."""
        return self.session.create_collection(name, spec_query, **options)

    def index_collection(self, collection_obj: DBObject, **options: Any) -> bool:
        """Run ``indexObjects`` on a collection (via the default session)."""
        return self.session.index(collection_obj, **options)

    # -- querying -----------------------------------------------------------------------

    def query(self, text: str, bindings: Optional[Dict[str, Any]] = None) -> List[tuple]:
        """Run a mixed OODBMS query (content predicates via getIRSValue)."""
        return self.session.execute(text, bindings)

    def search(self, collection_obj: DBObject, irs_query: str, model: Optional[str] = None):
        """Run a pure content query; returns a ranked :class:`repro.ResultSet`."""
        return self.session.query(collection_obj, irs_query, model=model)

    def irs_query(self, collection_obj: DBObject, irs_query: str) -> Dict:
        """Run a pure content query; returns ``{OID: value}``.

        Legacy shape — prefer :meth:`search` / :meth:`repro.Session.query`,
        which return a ranked :class:`repro.ResultSet`.
        """
        return self.session.query(collection_obj, irs_query).to_dict()

    def explain(self, text: str, bindings: Optional[Dict[str, Any]] = None):
        """Execute a mixed query under a tracer; returns an ExplainResult.

        ``result.render()`` prints the optimizer plan, execution counters,
        and the cross-layer stage tree (OODB evaluation, coupling methods,
        IRS scoring) with per-stage timings.
        """
        return self.session.explain(text, bindings)

    def health(self, slo_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Overload health report: admission, merges, memtable, latency.

        ``slo_seconds`` is the latency objective the slow-ratio is measured
        against (default :data:`repro.obs.health.DEFAULT_SLO_SECONDS`).
        See :mod:`repro.obs.health` for the report's structure and the
        ``ok`` / ``degraded`` / ``overloaded`` verdict rules.
        """
        from repro.obs.health import DEFAULT_SLO_SECONDS, build_health

        services = [
            session.service
            for session in self._sessions
            if session.service is not None
        ]
        return build_health(
            engine=self.engine,
            services=services,
            slo_seconds=(
                DEFAULT_SLO_SECONDS if slo_seconds is None else slo_seconds
            ),
            servers=self._servers,
        )

    # -- bookkeeping ------------------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero both coupling and IRS counters (benchmark hygiene)."""
        self.context.counters.reset()
        self.engine.counters.reset()
        self.engine.reset_cache_stats()

    def close(self) -> None:
        """Persist IRS indexes (when durable) and close the database."""
        for server in self._servers:
            server.stop()
        self._servers = []
        for session in self._sessions:
            session.close()
        self._sessions = []
        self.engine.shutdown_shards()
        if self._irs_index_directory is not None:
            from repro.irs.persistence import save_engine

            save_engine(self.engine, self._irs_index_directory)
        self.db.close()

    def __enter__(self) -> "DocumentSystem":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
