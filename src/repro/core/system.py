"""The ``DocumentSystem`` facade: the whole stack assembled.

Wires together the OODBMS, the IRS engine, the SGML loader (with ``Element``
inheriting from ``IRSObject`` so "each document element is a subclass of
database class IRSObject", Section 4.2) and the coupling schema.  This is
the class examples and benchmarks instantiate.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Union

from repro.core.context import CouplingContext, install_coupling
from repro.core.irs_object import IRSOBJECT_CLASS
from repro.irs.analysis import Analyzer
from repro.irs.engine import IRSEngine
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.sgml.document import Element
from repro.sgml.dtd import DTD
from repro.sgml.loader import SGMLLoader
from repro.sgml.parser import parse_document


def checkpoint_coupling(db: Database) -> Dict[str, Any]:
    """Checkpoint the coupling behind ``db``: store commit, then OODB.

    The shared implementation behind ``DocumentSystem.checkpoint`` and
    :meth:`repro.Session.checkpoint` — reads every collection's
    ``index_gen`` from the committed database state, appends one
    incremental store checkpoint recording them, then checkpoints the
    database (snapshot + WAL truncation).  Raises
    :class:`~repro.errors.StoreError` when the coupling has no
    single-file store attached.
    """
    from repro.core import collection as collection_module
    from repro.core.context import coupling_context
    from repro.errors import StoreError

    context = coupling_context(db)
    store = context.storage
    if store is None:
        raise StoreError(
            "checkpoint requires the single-file store "
            "(open the system with a directory and storage='store')"
        )
    gens: Dict[str, int] = {}
    for obj in db.instances_of(collection_module.COLLECTION_CLASS):
        gens[obj.get("irs_name")] = int(obj.get("index_gen") or 0)
    stats = store.checkpoint(context.engine, gens=gens)
    db.checkpoint()
    return stats


class DocumentSystem:
    """OODBMS + IRS + SGML framework + coupling, ready for documents.

    Parameters
    ----------
    directory:
        When given, the database persists under ``<directory>/db`` and IRS
        exchange files are written under ``<directory>/irs`` (enabling the
        paper's file-based result exchange).  Default: fully in memory.
    model:
        Default retrieval model: "inquery" (default), "vector" or "boolean".
    analyzer:
        Custom analysis pipeline for all IRS collections.
    use_result_files:
        Force the file-based IRS exchange even without a directory
        (a temp directory is then created lazily).
    shards:
        Default shard count for new IRS collections (0: unsharded).  A
        persisted store reloads re-partitioned to this count — every
        layout cross-loads into every other.  Scoring over shards is
        bit-identical to unsharded scoring (DESIGN.md §"Sharded
        scoring"); parallel scatter workers engage once a session is
        opened with ``open_session(shards=N)``.
    shard_config:
        :class:`repro.irs.shards.ShardConfig` tunables (timeouts,
        retries, the fault-injection hook) for the scatter executor.
    storage:
        Durable layout under ``directory``: ``"store"`` uses the
        single-file append-only store at ``<directory>/irs.store``
        (incremental checkpoints, lazy restart — see
        docs/storage-format.md), ``"json"`` the legacy per-collection
        dumps under ``<directory>/irs_index``.  The default ``"auto"``
        keeps whatever layout already exists and picks the store for
        fresh directories.  Ignored without a ``directory``.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        model: str = "inquery",
        analyzer: Optional[Analyzer] = None,
        use_result_files: bool = False,
        shards: int = 0,
        shard_config: Any = None,
        storage: str = "auto",
    ) -> None:
        db_dir = os.path.join(directory, "db") if directory else None
        self.db = Database(directory=db_dir)
        self._irs_index_directory = (
            os.path.join(directory, "irs_index") if directory else None
        )
        self._store_path = (
            os.path.join(directory, "irs.store") if directory else None
        )
        if storage not in ("auto", "store", "json"):
            raise ValueError(f"unknown storage mode {storage!r}")
        if directory is None:
            storage = "memory"
        elif storage == "auto":
            if os.path.exists(self._store_path):
                storage = "store"
            elif os.path.isdir(self._irs_index_directory):
                storage = "json"
            else:
                storage = "store"
        self._storage_mode = storage
        self.store = None
        if storage == "store":
            from repro.store import SingleFileStore

            self.store = SingleFileStore(self._store_path)
            self.engine = self.store.load_engine(
                default_model=model, analyzer=analyzer,
                shard_count=shards, shard_config=shard_config,
            )
        elif storage == "json" and os.path.isdir(self._irs_index_directory):
            # Reload persisted inverted indexes ("stored in a file system").
            from repro.irs.persistence import load_engine

            self.engine = load_engine(
                self._irs_index_directory, default_model=model, analyzer=analyzer,
                shard_count=shards, shard_config=shard_config,
            )
        else:
            self.engine = IRSEngine(
                default_model=model, analyzer=analyzer,
                shard_count=shards, shard_config=shard_config,
            )
        result_dir = None
        if directory:
            result_dir = os.path.join(directory, "irs")
            os.makedirs(result_dir, exist_ok=True)
        elif use_result_files:
            import tempfile

            result_dir = tempfile.mkdtemp(prefix="repro_irs_")
        self.context: CouplingContext = install_coupling(
            self.db, self.engine, result_file_directory=result_dir
        )
        self.context.storage = self.store
        self.loader = SGMLLoader(self.db, base_class=IRSOBJECT_CLASS)
        if self.store is not None:
            # After the loader: recovery may reindex stale collections,
            # which invokes getText — code the loader just re-attached.
            self._recover_coupling()
        self._dtds: Dict[str, DTD] = {}
        # The default (inline) session: the supported query surface.  Build
        # pooled ones with ``system.open_session(workers=...)``.
        from repro.service.session import Session

        self.session = Session(self.db)
        self._sessions: List[Session] = []
        self._servers: List[Any] = []

    # -- document type management ----------------------------------------------

    def register_dtd(self, dtd: DTD) -> List[str]:
        """Register a DTD: one element-type class per declaration."""
        self._dtds[dtd.name or "default"] = dtd
        return self.loader.register_dtd(dtd)

    # -- document management ------------------------------------------------------

    def add_document(
        self, document: Union[str, Element], dtd: Optional[DTD] = None, validate: bool = True
    ) -> DBObject:
        """Parse (when given text), optionally validate, and fragment.

        Returns the root database object of the new document tree.
        """
        if isinstance(document, str):
            root = parse_document(document, dtd=dtd if validate else None)
        else:
            root = document
            if validate and dtd is not None:
                dtd.apply_defaults(root)
                dtd.validate(root)
        return self.loader.load_document(root)

    def delete_document(self, root: DBObject) -> int:
        """Remove a whole document tree; returns objects deleted."""
        return self.loader.delete_document(root)

    # -- collections ----------------------------------------------------------------

    def open_session(
        self, workers: int = 0, config: Any = None, shards: Optional[int] = None
    ):
        """Open a new :class:`repro.Session` on this system.

        ``workers=0`` gives the classic inline mode; ``workers>=1`` starts
        an embedded worker pool with cross-request batching.  Pooled
        sessions opened here are closed with the system.

        ``shards=N`` turns parallel scatter-gather scoring on: new
        collections default to N hash shards and prunable top-k queries
        fan out to per-shard worker processes (exact results guaranteed —
        sharded scoring is bit-identical to unsharded, and a failed
        worker degrades to retry then inline fallback, never a wrong
        ranking).  The worker pools are closed with the system.
        """
        from repro.service.session import Session

        if shards is not None:
            self.engine.shard_count = shards
            if shards:
                self.engine.attach_shard_executor()
        session = Session(self.db, workers=workers, config=config)
        if session.pooled:
            self._sessions.append(session)
        return session

    def serve(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        workers: int = 0,
        config: Any = None,
    ):
        """Start a :class:`~repro.net.server.DocumentServer` on this system.

        ``workers>=1`` opens a pooled session for the server (closed with
        the system) so concurrent remote clients batch through one
        window; ``workers=0`` serves through the default inline session
        (paper semantics, one request at a time per connection).  With
        ``port`` omitted (or 0) the OS picks a free port — read it from
        ``server.address``.  The server is stopped by
        :meth:`close`; connect with
        ``repro.connect(f"tcp://{host}:{port}")``.
        """
        from repro.net.config import ServerConfig
        from repro.net.server import DocumentServer

        if config is None:
            config = ServerConfig(
                host=host if host is not None else "127.0.0.1",
                port=port if port is not None else 0,
            )
        elif host is not None or port is not None:
            raise ValueError("pass either config= or host/port, not both")
        session = self.open_session(workers=workers) if workers else self.session
        server = DocumentServer(self, config=config, session=session)
        server.start()
        self._servers.append(server)
        return server

    def create_collection(self, name: str, spec_query: str = "", **options: Any) -> DBObject:
        """Create a COLLECTION object (delegates to :meth:`repro.Session.create_collection`)."""
        return self.session.create_collection(name, spec_query, **options)

    def index_collection(self, collection_obj: DBObject, **options: Any) -> bool:
        """Run ``indexObjects`` on a collection (via the default session)."""
        return self.session.index(collection_obj, **options)

    # -- durability -----------------------------------------------------------------

    def checkpoint(self) -> Dict[str, Any]:
        """Make the current IRS + database state durable; returns stats.

        In store mode this appends one incremental checkpoint to
        ``<directory>/irs.store`` (sealed segments already on disk are
        referenced, not rewritten) with the database ``index_gen`` of every
        collection recorded in the manifest, then checkpoints the OODB
        (snapshot + WAL truncation).  The ordering matters: generations are
        read from the committed database state *before* the store commit,
        so a crash at any point leaves either a manifest that matches the
        database or one that is detectably older — never newer (see
        :meth:`_recover_coupling`).

        In the legacy JSON mode this falls back to a full
        :func:`~repro.irs.persistence.save_engine` dump.  A purely
        in-memory system has nothing to persist and raises
        :class:`~repro.errors.StoreError`.
        """
        if self.store is not None:
            return checkpoint_coupling(self.db)
        if self._storage_mode == "json":
            from repro.irs.persistence import save_engine

            save_engine(self.engine, self._irs_index_directory)
            self.db.checkpoint()
            return {"mode": "json", "directory": self._irs_index_directory}
        from repro.errors import StoreError

        raise StoreError(
            "checkpoint requires a durable DocumentSystem (directory=...)"
        )

    def pack(self) -> Dict[str, Any]:
        """Checkpoint, then compact the store file offline; returns stats.

        Copies only live records into a fresh file and atomically replaces
        ``irs.store``, reclaiming the dead space incremental checkpoints
        leave behind (``health()["storage"]["dead_ratio"]`` tells when this
        is worth doing).  Store mode only.
        """
        from repro.errors import StoreError

        if self.store is None:
            raise StoreError("pack requires the single-file store")
        self.checkpoint()
        return self.store.pack()

    def _collection_gens(self) -> Dict[str, int]:
        """Current ``index_gen`` of every COLLECTION object, by IRS name."""
        from repro.core import collection as collection_module

        gens: Dict[str, int] = {}
        for obj in self.db.instances_of(collection_module.COLLECTION_CLASS):
            gens[obj.get("irs_name")] = int(obj.get("index_gen") or 0)
        return gens

    def _recover_coupling(self) -> None:
        """Reconcile the recovered IRS store with the recovered database.

        The database WAL is ground truth.  Every COLLECTION object carries
        an ``index_gen`` bumped under the WAL whenever its ``doc_map`` is
        rewritten; the store manifest records the generation each
        collection was last checkpointed at.  A mismatch means the crash
        fell between a WAL commit and the matching store checkpoint — the
        IRS side of that collection is stale, so it is dropped and
        deterministically reindexed from the database (same texts, same
        analyzer: rankings come out bit-identical), and a fresh checkpoint
        brings the store back in sync.  IRS collections whose database
        object did not survive recovery are orphans and are removed.
        """
        from repro.core import collection as collection_module

        stored_gens = self.store.gens()
        db_objects: Dict[str, DBObject] = {}
        for obj in self.db.instances_of(collection_module.COLLECTION_CLASS):
            db_objects[obj.get("irs_name")] = obj
        dirty = False
        for name in list(self.engine.collection_names()):
            if name not in db_objects:
                self.engine.drop_collection(name)
                dirty = True
        for name, obj in db_objects.items():
            gen = int(obj.get("index_gen") or 0)
            if self.engine.has_collection(name) and stored_gens.get(name, 0) == gen:
                continue
            self._reindex_collection(obj, name)
            dirty = True
        if dirty:
            self.checkpoint()

    def _reindex_collection(self, obj: DBObject, name: str) -> None:
        """Rebuild one stale IRS collection from recovered database state."""
        entry = (self.store.manifest or {}).get("collections", {}).get(name)
        shards = None
        if entry is not None and entry.get("layout") == "sharded":
            # Keep the shard override the collection was created with.
            shards = entry.get("shard_count")
        if self.engine.has_collection(name):
            self.engine.drop_collection(name)
        self.engine.create_collection(name, shards=shards)
        # Replay the WAL-durable doc_map rather than re-evaluating the
        # specification query: membership may have been modified
        # incrementally (insertObject/propagateUpdates) since the last
        # indexObjects, and recovery must reproduce exactly the state the
        # database committed, not what the spec would select today.
        self._reindex_from_doc_map(obj, name)

    def _reindex_from_doc_map(self, obj: DBObject, name: str) -> None:
        """Reindex a collection from its persisted membership."""
        from repro.core.collection import segment_text
        from repro.core.text_modes import text_for
        from repro.oodb.oid import OID

        mode = obj.get("text_mode") or 0
        segment_words = obj.get("segment_words") or 0
        doc_map = obj.get("doc_map") or {}
        new_map: Dict[str, list] = {}
        with self.engine.bulk_mutating(name):
            for oid_str in doc_map:
                oid = OID.parse(oid_str)
                if not self.db.object_exists(oid):
                    continue
                member = self.db.get_object(oid)
                text = (
                    member.send("getText", mode)
                    if member.responds_to("getText")
                    else text_for(member, mode)
                )
                new_map[oid_str] = [
                    self.engine.index_document(name, piece, {"oid": oid_str})
                    for piece in segment_text(text, segment_words)
                ]
        obj.set("doc_map", new_map)
        obj.set("buffer", {})
        obj.set("index_gen", int(obj.get("index_gen") or 0) + 1)
        from repro.core.hierarchical import invalidate_scorer

        invalidate_scorer(obj)

    # -- querying -----------------------------------------------------------------------

    def query(self, text: str, bindings: Optional[Dict[str, Any]] = None) -> List[tuple]:
        """Run a mixed OODBMS query (content predicates via getIRSValue)."""
        return self.session.execute(text, bindings)

    def search(self, collection_obj: DBObject, irs_query: str, model: Optional[str] = None):
        """Run a pure content query; returns a ranked :class:`repro.ResultSet`."""
        return self.session.query(collection_obj, irs_query, model=model)

    def irs_query(self, collection_obj: DBObject, irs_query: str) -> Dict:
        """Run a pure content query; returns ``{OID: value}``.

        Legacy shape — prefer :meth:`search` / :meth:`repro.Session.query`,
        which return a ranked :class:`repro.ResultSet`.
        """
        return self.session.query(collection_obj, irs_query).to_dict()

    def explain(self, text: str, bindings: Optional[Dict[str, Any]] = None):
        """Execute a mixed query under a tracer; returns an ExplainResult.

        ``result.render()`` prints the optimizer plan, execution counters,
        and the cross-layer stage tree (OODB evaluation, coupling methods,
        IRS scoring) with per-stage timings.
        """
        return self.session.explain(text, bindings)

    def health(self, slo_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Overload health report: admission, merges, memtable, latency.

        ``slo_seconds`` is the latency objective the slow-ratio is measured
        against (default :data:`repro.obs.health.DEFAULT_SLO_SECONDS`).
        See :mod:`repro.obs.health` for the report's structure and the
        ``ok`` / ``degraded`` / ``overloaded`` verdict rules.
        """
        from repro.obs.health import DEFAULT_SLO_SECONDS, build_health

        services = [
            session.service
            for session in self._sessions
            if session.service is not None
        ]
        storage = None
        if self.store is not None:
            storage = dict(self.store.stats())
            storage["dirty"] = self.store.dirty_info(self.engine)
        return build_health(
            engine=self.engine,
            services=services,
            slo_seconds=(
                DEFAULT_SLO_SECONDS if slo_seconds is None else slo_seconds
            ),
            servers=self._servers,
            storage=storage,
        )

    # -- bookkeeping ------------------------------------------------------------------------

    def reset_counters(self) -> None:
        """Zero both coupling and IRS counters (benchmark hygiene)."""
        self.context.counters.reset()
        self.engine.counters.reset()
        self.engine.reset_cache_stats()

    def close(self) -> None:
        """Persist IRS indexes (when durable) and close the database."""
        for server in self._servers:
            server.stop()
        self._servers = []
        for session in self._sessions:
            session.close()
        self._sessions = []
        self.engine.shutdown_shards()
        if self.store is not None:
            self.store.checkpoint(self.engine, gens=self._collection_gens())
            self.db.close()
            self.store.close()
            return
        if self._storage_mode == "json" and self._irs_index_directory is not None:
            from repro.irs.persistence import save_engine

            save_engine(self.engine, self._irs_index_directory)
        self.db.close()

    def __enter__(self) -> "DocumentSystem":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
