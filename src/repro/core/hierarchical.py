"""Coupling integration of hierarchical (single-level-storage) scoring.

Realizes Section 4.3.1 alternative (2) inside the coupling: a COLLECTION
built at *leaf* granularity can answer content queries for any element
level exactly, without the redundant multi-level indexing whose overhead
[SAZ94] measured.  Two entry points:

* :func:`hierarchical_result` — level-wide scoring, the counterpart of
  ``getIRSResult`` for a level that has no IRS documents of its own;
* the ``hierarchical_exact`` derivation scheme — plugs into
  ``deriveIRSValue`` so ``findIRSValue`` on an unrepresented element
  computes the value the IRS *would* have produced at that element's level.
"""

from __future__ import annotations

from typing import Dict

from repro.core.context import coupling_context
from repro.core.derivation import register_scheme
from repro.irs.hierarchical import HierarchicalScorer
from repro.irs.queries import parse_irs_query
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

SCHEME_NAME = "hierarchical_exact"


def scorer_for(collection_obj: DBObject) -> HierarchicalScorer:
    """The (cached) scorer bound to one COLLECTION object.

    The cache lives on the coupling context; call :func:`invalidate_scorer`
    after re-indexing or propagating updates.
    """
    db = collection_obj.database
    context = coupling_context(db)
    cache = getattr(context, "hierarchical_scorers", None)
    if cache is None:
        cache = {}
        context.hierarchical_scorers = cache
    scorer = cache.get(collection_obj.oid)
    if scorer is None:
        irs_collection = context.engine.collection(collection_obj.get("irs_name"))
        scorer = HierarchicalScorer(db, irs_collection)
        cache[collection_obj.oid] = scorer
    return scorer


def invalidate_scorer(collection_obj: DBObject) -> None:
    """Drop the cached scorer (the collection's contents changed)."""
    context = coupling_context(collection_obj.database)
    cache = getattr(context, "hierarchical_scorers", {})
    scorer = cache.pop(collection_obj.oid, None)
    if scorer is not None:
        scorer.invalidate()


def hierarchical_result(
    collection_obj: DBObject, irs_query: str, class_name: str
) -> Dict[OID, float]:
    """Score every instance of ``class_name`` from the leaf collection.

    The result has the same shape as ``getIRSResult`` against a collection
    that had indexed this level directly — but nothing beyond the leaf
    level is stored.
    """
    return scorer_for(collection_obj).score_level(irs_query, class_name)


def derive_hierarchical_exact(
    collection_obj: DBObject, irs_query: str, obj: DBObject
) -> float:
    """Derivation scheme: the exact level-appropriate IRS value.

    Unlike the heuristic schemes of Section 4.5.2 this is not a combination
    of *component values* — it recomputes the INQUERY belief from aggregated
    subtree statistics, answering the paper's open question "how to compute
    the IRS values of text objects if only components' IRS values are
    known" by keeping slightly more than the component values: the leaf
    postings themselves.
    """
    scorer = scorer_for(collection_obj)
    tree = parse_irs_query(irs_query)
    return scorer.belief(tree, obj)


def install_hierarchical_scheme() -> None:
    """Register ``hierarchical_exact`` with the derivation registry."""
    register_scheme(SCHEME_NAME, derive_hierarchical_exact)


install_hierarchical_scheme()
