"""Negation in mixed queries: open world vs closed world (Section 6).

"Bringing together the different assumptions ('Open World' vs. 'Closed
World') is far from trivial.  Negation, for example, has a different
meaning in both worlds."

Two semantics are available, and :func:`negation_result` makes the choice
explicit instead of silently picking one:

* **closed world** (the database view): *NOT relevant* means "not in the
  result set" — the complement of the thresholded IRS result within the
  collection's membership.  An object the IRS merely has no evidence about
  *satisfies* the negation.
* **open world** (the IR view): absence of evidence is not evidence of
  absence; ``#not`` only *downweights* belief.  An object satisfies the
  negation when its complemented belief ``1 - bel`` exceeds the threshold —
  objects with *no* evidence sit at ``1 - default_belief = 0.6``, i.e. they
  are *probably* non-relevant, not certainly.

The NEG benchmark tabulates how the two answer sets diverge.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.collection import _get_irs_result
from repro.irs.models.probabilistic import DEFAULT_BELIEF
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

CLOSED_WORLD = "closed_world"
OPEN_WORLD = "open_world"


def members(collection_obj: DBObject) -> Set[OID]:
    """The OIDs represented in the collection (the closed universe)."""
    return {OID.parse(oid_str) for oid_str in (collection_obj.get("doc_map") or {})}


def closed_world_not(
    collection_obj: DBObject, irs_query: str, threshold: float
) -> Set[OID]:
    """Members whose IRS value does NOT exceed ``threshold``.

    Pure set complement against the membership — the semantics a database
    user expects from ``NOT (value > t)``.
    """
    values = _get_irs_result(collection_obj, irs_query)
    matching = {oid for oid, value in values.items() if value > threshold}
    return members(collection_obj) - matching


def open_world_not(
    collection_obj: DBObject, irs_query: str, threshold: float
) -> Dict[OID, float]:
    """Members whose complemented belief exceeds ``threshold``.

    Uses ``1 - bel``; members without evidence carry the complemented
    default belief (0.6), so a threshold above 0.6 demands *positive*
    evidence of non-relevance (strong counter-evidence), which no pure
    absence can provide — the open-world behaviour the paper flags.
    """
    values = _get_irs_result(collection_obj, irs_query)
    result: Dict[OID, float] = {}
    for oid in members(collection_obj):
        belief = values.get(oid, DEFAULT_BELIEF)
        complement = 1.0 - belief
        if complement > threshold:
            result[oid] = complement
    return result


def negation_result(
    collection_obj: DBObject,
    irs_query: str,
    threshold: float,
    semantics: str = CLOSED_WORLD,
) -> Set[OID]:
    """Answer "objects NOT relevant to ``irs_query``" under chosen semantics."""
    if semantics == CLOSED_WORLD:
        return closed_world_not(collection_obj, irs_query, threshold)
    if semantics == OPEN_WORLD:
        return set(open_world_not(collection_obj, irs_query, threshold))
    raise ValueError(
        f"unknown negation semantics {semantics!r}; "
        f"choose {CLOSED_WORLD!r} or {OPEN_WORLD!r}"
    )
