"""Mixed-query evaluation strategies (Section 4.5.3).

A mixed query conjoins structure conditions (evaluated by the OODBMS) with
content conditions (evaluated by the IRS).  The paper names two strategies:

(1) **independent** — "The query portions are processed independently by
    the corresponding system, and the results are combined. ... With this
    approach, restrictions on the search space by the IRS cannot be used by
    the OODBMS."  In our system this is plain query evaluation: every
    candidate object answers ``getIRSValue`` (buffered, so the IRS runs
    once per distinct query, but the OODBMS still touches every candidate).

(2) **irs_first** — "The IRS selects all IRS documents fulfilling the
    conditions on the content.  The structure conditions are only verified
    for the text objects identified in this first step."  Realized through
    the optimizer's semantic restrictor for ``getIRSValue``: the candidate
    set of the ranged variable is cut down to the OIDs the IRS returned
    before any structure predicate runs.

:func:`compare_strategies` runs both on the same query and reports the
counter deltas the MIXED benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.core.collection import (
    disable_irs_first_optimization,
    enable_irs_first_optimization,
)
from repro.core.context import coupling_context
from repro.oodb.database import Database
from repro.oodb.query.evaluator import QueryEvaluator


@dataclass
class StrategyOutcome:
    """What one evaluation strategy did for one query."""

    strategy: str
    rows: List[tuple]
    tuples_examined: int
    method_calls: int
    restrictor_calls: int
    irs_queries: int
    seconds: float


def evaluate_independent(
    db: Database, query: str, bindings: Optional[Dict[str, Any]] = None
) -> StrategyOutcome:
    """Strategy (1): per-object evaluation of content predicates."""
    return _evaluate(db, query, bindings, irs_first=False)


def evaluate_irs_first(
    db: Database, query: str, bindings: Optional[Dict[str, Any]] = None
) -> StrategyOutcome:
    """Strategy (2): the IRS result restricts the candidate set first.

    Caveat inherited from the strategy itself: objects whose IRS value
    would be *derived* (they are not represented in the collection) cannot
    be selected — the IRS never returns them.
    """
    return _evaluate(db, query, bindings, irs_first=True)


def _evaluate(
    db: Database, query: str, bindings: Optional[Dict[str, Any]], irs_first: bool
) -> StrategyOutcome:
    context = coupling_context(db)
    engine_counters = context.engine.counters
    queries_before = engine_counters.queries_executed
    if irs_first:
        enable_irs_first_optimization(db)
    else:
        disable_irs_first_optimization(db)
    try:
        evaluator = QueryEvaluator(db)
        started = perf_counter()
        rows, stats = evaluator.run_with_stats(query, bindings)
        elapsed = perf_counter() - started
    finally:
        disable_irs_first_optimization(db)
    return StrategyOutcome(
        strategy="irs_first" if irs_first else "independent",
        rows=rows,
        tuples_examined=stats.tuples_examined,
        method_calls=stats.method_calls,
        restrictor_calls=stats.restrictor_calls,
        irs_queries=engine_counters.queries_executed - queries_before,
        seconds=elapsed,
    )


def compare_strategies(
    db: Database, query: str, bindings: Optional[Dict[str, Any]] = None
) -> Dict[str, StrategyOutcome]:
    """Run both strategies on ``query`` and return their outcomes.

    The independent strategy runs first so the IRS-first run benefits from
    a warm buffer exactly as it would in the paper's inter-query scenario;
    callers wanting cold comparisons reset the collection buffer between
    calls.
    """
    independent = evaluate_independent(db, query, bindings)
    irs_first = evaluate_irs_first(db, query, bindings)
    return {"independent": independent, "irs_first": irs_first}
