"""IRS operators duplicated as COLLECTION methods (Section 4.5.4).

"IRS-operators can be duplicated as methods of the collection objects.
INQUERY's AND-operator, to give an example, corresponds to a method
IRSOperatorAND in our implementation.  Its parameters are results of IRS
queries.  Hence, it is possible to calculate conjunction both in the IRS or
the OODBMS.  Consider the case that the corresponding collection object
already knows intermediate results because they have been buffered as the
result of previous query evaluations.  Then the second alternative is
particularly appealing."

Each ``IRSOperatorX(q1, q2, ...)`` method takes IRS *sub-query strings*,
obtains their (possibly buffered) result dictionaries via ``getIRSResult``,
and combines the per-object values with exactly the belief algebra of
:mod:`repro.irs.models.operators` — the "precise knowledge of the
IRS-operators' semantics" that makes the in-DB computation equivalent to
resubmitting the combined query to the IRS.
"""

from __future__ import annotations

from typing import Dict, List

from repro.irs.models import operators as ops
from repro.irs.models.probabilistic import DEFAULT_BELIEF
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID


def _sub_results(collection_obj: DBObject, queries: List[str]) -> List[Dict[OID, float]]:
    from repro.core.collection import _get_irs_result

    return [_get_irs_result(collection_obj, q) for q in queries]


def _all_oids(results: List[Dict[OID, float]]) -> List[OID]:
    seen = set()
    for result in results:
        seen.update(result)
    return sorted(seen)


def _beliefs(results: List[Dict[OID, float]], oid: OID) -> List[float]:
    """Per-subquery beliefs for one object; absent = default belief.

    Using INQUERY's default belief for missing evidence is what keeps the
    in-DB combination consistent with what the IRS itself would compute for
    the combined query.
    """
    return [result.get(oid, DEFAULT_BELIEF) for result in results]


def irs_operator_and(collection_obj: DBObject, *queries: str) -> Dict[OID, float]:
    """``IRSOperatorAND`` — conjunction computed inside the OODBMS."""
    results = _sub_results(collection_obj, list(queries))
    baseline = ops.op_and([DEFAULT_BELIEF] * len(results))
    combined = {}
    for oid in _all_oids(results):
        value = ops.op_and(_beliefs(results, oid))
        if value > baseline:
            combined[oid] = value
    return combined


def irs_operator_or(collection_obj: DBObject, *queries: str) -> Dict[OID, float]:
    """``IRSOperatorOR`` — disjunction computed inside the OODBMS."""
    results = _sub_results(collection_obj, list(queries))
    baseline = ops.op_or([DEFAULT_BELIEF] * len(results))
    combined = {}
    for oid in _all_oids(results):
        value = ops.op_or(_beliefs(results, oid))
        if value > baseline:
            combined[oid] = value
    return combined


def irs_operator_sum(collection_obj: DBObject, *queries: str) -> Dict[OID, float]:
    """``IRSOperatorSUM`` — mean belief computed inside the OODBMS."""
    results = _sub_results(collection_obj, list(queries))
    combined = {}
    for oid in _all_oids(results):
        value = ops.op_sum(_beliefs(results, oid))
        if value > DEFAULT_BELIEF:
            combined[oid] = value
    return combined


def irs_operator_max(collection_obj: DBObject, *queries: str) -> Dict[OID, float]:
    """``IRSOperatorMAX`` — maximum belief computed inside the OODBMS."""
    results = _sub_results(collection_obj, list(queries))
    combined = {}
    for oid in _all_oids(results):
        value = ops.op_max(_beliefs(results, oid))
        if value > DEFAULT_BELIEF:
            combined[oid] = value
    return combined


def irs_operator_wsum(collection_obj: DBObject, *args) -> Dict[OID, float]:
    """``IRSOperatorWSUM(w1, q1, w2, q2, ...)`` — weighted mean in the OODBMS."""
    if len(args) % 2 != 0:
        raise ValueError("IRSOperatorWSUM expects weight, query pairs")
    weights = [float(args[i]) for i in range(0, len(args), 2)]
    queries = [args[i] for i in range(1, len(args), 2)]
    results = _sub_results(collection_obj, queries)
    baseline = ops.op_wsum(weights, [DEFAULT_BELIEF] * len(results))
    combined = {}
    for oid in _all_oids(results):
        value = ops.op_wsum(weights, _beliefs(results, oid))
        if value > baseline:
            combined[oid] = value
    return combined


def irs_operator_not(collection_obj: DBObject, query: str) -> Dict[OID, float]:
    """``IRSOperatorNOT`` — complement belief for every *member* object.

    The universe is the collection's membership (doc_map): negation only
    makes sense against a closed set of candidates, which is exactly the
    open-vs-closed-world tension Section 6 flags as future work.
    """
    from repro.core.collection import _get_irs_result

    result = _get_irs_result(collection_obj, query)
    combined = {}
    for oid_str in (collection_obj.get("doc_map") or {}):
        oid = OID.parse(oid_str)
        value = ops.op_not(result.get(oid, DEFAULT_BELIEF))
        combined[oid] = value
    return combined


def attach_operator_methods(cdef) -> None:
    """Register the operator methods on the COLLECTION class definition."""
    cdef.add_method("IRSOperatorAND", irs_operator_and)
    cdef.add_method("IRSOperatorOR", irs_operator_or)
    cdef.add_method("IRSOperatorSUM", irs_operator_sum)
    cdef.add_method("IRSOperatorMAX", irs_operator_max)
    cdef.add_method("IRSOperatorWSUM", irs_operator_wsum)
    cdef.add_method("IRSOperatorNOT", irs_operator_not)
