"""The ``COLLECTION`` coupling class (Section 4.2).

"Instances of database class COLLECTION encapsulate exactly one IRS
collection.  The number of IRS collections in use is arbitrary."

Per instance, the persistent attributes are:

=================  =========================================================
``irs_name``       name of the encapsulated IRS collection
``spec_query``     the specification query selecting the member objects
``text_mode``      the ``getText`` mode used for this collection's documents
``model``          retrieval model override (None = engine default)
``derivation``     name of the ``deriveIRSValue`` scheme for non-members
``type_weights``   per-element-tag weights for the weighted_type scheme
``doc_map``        OID -> list of IRS document ids ("Each IRS document is
                   assigned exactly one object.  An object can be assigned
                   to more than one IRS document", Section 4.3 — several
                   ids occur with segment granularity [Cal94])
``segment_words``  >0 chunks each object's text into IRS documents of
                   roughly that many words (equal-size granularity)
``buffer``         the persistent IRS-result buffer (Section 4.2/Figure 3)
``pending_ops``    deferred update operations awaiting propagation
``update_policy``  "eager" or "deferred" (Section 4.6)
``index_gen``      index generation — bumped under the OODB WAL whenever
                   ``doc_map`` is rewritten; store checkpoints record it,
                   so recovery can detect IRS state older than the
                   database and reindex exactly those collections
=================  =========================================================
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.core import updates
from repro.core.buffer import ResultBuffer
from repro.core.context import coupling_context
from repro.core.text_modes import text_for
from repro.errors import CouplingError, DocumentMissingError
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID
from repro.oodb.query.optimizer import register_restrictor

COLLECTION_CLASS = "COLLECTION"


# --------------------------------------------------------------------------
# Class definition
# --------------------------------------------------------------------------

def define_collection_class(db: Database) -> None:
    """Define the COLLECTION class with its coupling methods.

    Idempotent — and re-attaches methods when the class structure was
    recovered from a snapshot (method implementations are code and are
    never persisted).
    """
    if db.schema.has_class(COLLECTION_CLASS):
        cdef = db.schema.get_class(COLLECTION_CLASS)
        # Schemas restored from snapshots taken before the single-file
        # store existed lack ``index_gen``; add it so the attribute
        # resolves with its 0 default on old objects.
        if not db.schema.has_attribute(COLLECTION_CLASS, "index_gen"):
            db.add_class_attribute(COLLECTION_CLASS, "index_gen", "INT", 0)
        _attach_collection_methods(cdef)
        return
    cdef = db.define_class(
        COLLECTION_CLASS,
        attributes={
            "irs_name": "STRING",
            "spec_query": "STRING",
            "text_mode": "INT",
            "model": "STRING",
            "derivation": "STRING",
            "type_weights": "DICT",
            "doc_map": "DICT",
            "buffer": "DICT",
            "pending_ops": "LIST",
            "update_policy": "STRING",
            "segment_words": "INT",
            "index_gen": "INT",
        },
    )
    _attach_collection_methods(cdef)


def _attach_collection_methods(cdef) -> None:
    cdef.add_method("indexObjects", index_objects)
    cdef.add_method("getIRSResult", _get_irs_result)
    cdef.add_method("findIRSValue", _find_irs_value)
    cdef.add_method("containsObject", contains_object)
    cdef.add_method("insertObject", insert_object)
    cdef.add_method("modifyObject", modify_object)
    cdef.add_method("deleteObject", delete_object)
    cdef.add_method("propagateUpdates", propagate_updates)
    cdef.add_method("memberCount", member_count)
    # The IRS operators duplicated as collection methods (Section 4.5.4)
    # live in repro.core.operators and are attached there to avoid a cycle.
    from repro.core import operators as operator_module

    operator_module.attach_operator_methods(cdef)


def _create_collection(
    db: Database,
    name: str,
    spec_query: str = "",
    text_mode: int = 0,
    derivation: str = "maximum",
    model: Optional[str] = None,
    update_policy: Optional[str] = None,
    type_weights: Optional[Dict[str, float]] = None,
    segment_words: int = 0,
    shards: Optional[int] = None,
) -> DBObject:
    """Create a COLLECTION object and its encapsulated IRS collection.

    ``spec_query`` is an OODBMS query whose single-column result lists the
    IRSObjects to represent (Section 4.3.2: "The specification query is an
    OODBMS query expression and thus is powerful enough to specify any
    reasonable combination of objects").  Call ``indexObjects`` to run it.

    ``shards`` overrides the engine's default shard count for this one
    collection (0 forces unsharded; None keeps the engine default).
    Sharding is a physical layout choice only — rankings are bit-identical
    either way (DESIGN.md §"Sharded scoring").

    Internal implementation — the supported entry point is
    :meth:`repro.Session.create_collection`.
    """
    context = coupling_context(db)
    if context.engine.has_collection(name):
        raise CouplingError(f"IRS collection {name!r} already exists")
    context.engine.create_collection(name, shards=shards)
    return db.create_object(
        COLLECTION_CLASS,
        irs_name=name,
        spec_query=spec_query,
        text_mode=text_mode,
        derivation=derivation,
        model=model,
        update_policy=update_policy or context.default_update_policy,
        type_weights=dict(type_weights or {}),
        doc_map={},
        buffer={},
        pending_ops=[],
        segment_words=segment_words,
        index_gen=0,
    )


def segment_text(text: str, words_per_segment: int) -> list:
    """Split ``text`` into pieces of roughly ``words_per_segment`` words.

    The equal-length segmentation of [HeP93]/[Cal94] ("splitting into
    equal-length pieces of 30 words").  ``words_per_segment <= 0`` keeps the
    text whole; an empty text still yields one (empty) segment so every
    member object stays represented.
    """
    if words_per_segment <= 0:
        return [text]
    words = text.split()
    if not words:
        return [text]
    return [
        " ".join(words[i : i + words_per_segment])
        for i in range(0, len(words), words_per_segment)
    ]


# --------------------------------------------------------------------------
# COLLECTION methods
# --------------------------------------------------------------------------

def index_objects(
    collection_obj: DBObject,
    spec_query: Optional[str] = None,
    text_mode: Optional[int] = None,
    bindings: Optional[Dict[str, Any]] = None,
) -> bool:
    """``indexObjects(specQuery, textMode)`` — populate the IRS collection.

    "indexObjects evaluates the specification query specQuery.  The result
    is a set of IRSObjects.  For each of these the method getText(mode) is
    invoked.  The results, in turn, are stored in a file which is indexed
    by the IRS" (Section 4.2).  The spool file is written when the context
    has a ``result_file_directory`` (the paper's file exchange); indexing
    itself always goes through the engine, carrying each object's OID as
    IRS-document metadata.
    """
    db = collection_obj.database
    context = coupling_context(db)
    started = time.perf_counter()
    # Lock order (see repro.sync): claim the collection object in the
    # database first — a deadlock/timeout abort can then only happen before
    # the IRS index is touched — then the coupling mutation mutex, and only
    # then (briefly, with all database reads done) the engine write lock.
    db.lock_exclusive(collection_obj.oid)
    with context.mutation_mutex(str(collection_obj.oid)):
        if spec_query is not None:
            collection_obj.set("spec_query", spec_query)
        if text_mode is not None:
            collection_obj.set("text_mode", text_mode)
        query_text = collection_obj.get("spec_query")
        if not query_text:
            raise CouplingError("collection has no specification query")
        mode = collection_obj.get("text_mode") or 0

        with obs.tracer().span("coupling.indexObjects") as span:
            rows = db.query(query_text, bindings or {})
            members = []
            for row in rows:
                if len(row) != 1 or not isinstance(row[0], DBObject):
                    raise CouplingError(
                        "specification query must project exactly one object column"
                    )
                obj = row[0]
                if not obj.isa("IRSObject"):
                    raise CouplingError(f"{obj!r} is not an IRSObject")
                members.append(obj)

            irs_name = collection_obj.get("irs_name")
            span.set_attribute("collection", irs_name)
            span.set_attribute("members", len(members))
            engine = context.engine

            # Phase 1 — database reads only: every member's text, segmented,
            # plus the previous doc ids to drop.
            old_map = collection_obj.get("doc_map") or {}
            segment_words = collection_obj.get("segment_words") or 0
            pieces_by_oid: List[Tuple[str, List[str]]] = []
            for obj in members:
                text = obj.send("getText", mode) if obj.responds_to("getText") else text_for(obj, mode)
                pieces_by_oid.append((str(obj.oid), segment_text(text, segment_words)))

            # Phase 2 — engine mutations under the collection write lock so
            # concurrent queries see the rebuild atomically.  No database
            # access happens in here; epoch bumps coalesce into one so the
            # rebuild invalidates epoch-keyed caches once, not per document.
            spool_lines = []
            doc_map: Dict[str, list] = {}
            indexed = 0
            with engine.bulk_mutating(irs_name):
                for doc_ids in old_map.values():
                    for doc_id in doc_ids:
                        try:
                            engine.remove_document(irs_name, doc_id)
                        except DocumentMissingError:
                            # Recovery reindexes into a freshly recreated
                            # collection; the old doc ids are simply gone.
                            pass
                for oid_str, pieces in pieces_by_oid:
                    doc_ids = []
                    for piece in pieces:
                        doc_id = engine.index_document(irs_name, piece, {"oid": oid_str})
                        doc_ids.append(doc_id)
                        spool_lines.append(f"{oid_str}\t{piece}")
                        indexed += 1
                    doc_map[oid_str] = doc_ids
            context.counters.add("documents_indexed", indexed)

            if context.result_file_directory is not None:
                spool_path = os.path.join(
                    context.result_file_directory, f"{irs_name}.spool.txt"
                )
                with open(spool_path, "w", encoding="utf-8") as fh:
                    fh.write("\n".join(spool_lines))

            collection_obj.set("doc_map", doc_map)
            collection_obj.set("buffer", {})
            collection_obj.set("pending_ops", [])
            collection_obj.set(
                "index_gen", int(collection_obj.get("index_gen") or 0) + 1
            )
            from repro.core.hierarchical import invalidate_scorer

            invalidate_scorer(collection_obj)
            context.counters.add("index_runs")
    registry = obs.metrics()
    registry.counter("coupling.indexObjects.calls").inc()
    registry.histogram("coupling.indexObjects.seconds").observe(
        time.perf_counter() - started
    )
    return True


def _get_irs_result(collection_obj: DBObject, irs_query: str) -> Dict[OID, float]:
    """``getIRSResult(IRSQuery)`` — dictionary of IRSObjects to IRS values.

    "The IRS query IRSQuery is passed on to the IRS.  The result is a
    dictionary: its keys are the IRSObjects of the text objects, the values
    the IRS values as computed by the IRS.  For both intra- and inter-query
    optimization, the results of IRS calls are buffered persistently."

    A pending deferred update forces propagation first (Section 4.6).

    Internal implementation — the supported entry point is
    :meth:`repro.Session.query`.
    """
    db = collection_obj.database
    context = coupling_context(db)

    started = time.perf_counter()
    with obs.tracer().span(
        "coupling.getIRSResult", query=obs.trim(irs_query)
    ) as span:
        if updates.has_pending(collection_obj):
            updates.propagate(collection_obj, forced=True)

        model = collection_obj.get("model")
        buffer = ResultBuffer(collection_obj, context.counters)
        cached = buffer.lookup(irs_query, model)
        if cached is not None:
            span.set_attribute("buffered", True)
            span.set_attribute("results", len(cached))
            oid_values = cached
        else:
            span.set_attribute("buffered", False)
            irs_name = collection_obj.get("irs_name")
            span.set_attribute("collection", irs_name)
            if context.result_file_directory is not None:
                values = _query_via_file(context, irs_name, irs_query, model)
            else:
                # Score and map doc ids to OIDs under one read hold so a
                # concurrent propagation cannot remove documents between the
                # two steps.
                with context.engine.reading(irs_name):
                    result = context.engine.query(irs_name, irs_query, model=model)
                    values = result.by_metadata(
                        context.engine.collection(irs_name), "oid"
                    )
            oid_values = {OID.parse(oid_str): value for oid_str, value in values.items()}
            buffer.store(irs_query, oid_values, model)
            span.set_attribute("results", len(oid_values))
    registry = obs.metrics()
    registry.counter("coupling.getIRSResult.calls").inc()
    registry.histogram("coupling.getIRSResult.seconds").observe(
        time.perf_counter() - started
    )
    return oid_values


def _query_via_file(context, irs_name: str, irs_query: str, model: Optional[str]) -> Dict[str, float]:
    """The paper's historical exchange: result file written, then parsed."""
    from repro.irs.engine import parse_result_file

    safe = "".join(ch if ch.isalnum() else "_" for ch in irs_query)[:40]
    path = os.path.join(context.result_file_directory, f"{irs_name}.{safe}.result")
    context.engine.query_to_file(irs_name, irs_query, path, metadata_key="oid", model=model)
    return parse_result_file(path)


def _find_irs_value(collection_obj: DBObject, irs_query: str, obj: DBObject) -> float:
    """``findIRSValue(IRSQuery, obj)`` — the flow chart of Figure 3.

    "The method returns the IRS value for the parameter object.  If the
    object is represented in the IRS collection, the IRS directly
    calculates the value, otherwise deriveIRSValue is invoked for obj" —
    and the derived value is inserted into the buffer.

    Internal implementation — the supported entry point is
    :meth:`repro.Session.find_value`.
    """
    db = collection_obj.database
    context = coupling_context(db)
    registry = obs.metrics()
    registry.counter("coupling.findIRSValue.calls").inc()
    with obs.tracer().span(
        "coupling.findIRSValue", query=obs.trim(irs_query), oid=str(obj.oid)
    ) as span:
        values = _get_irs_result(collection_obj, irs_query)
        if obj.oid in values:
            span.set_attribute("source", "irs")
            return values[obj.oid]
        doc_map = collection_obj.get("doc_map") or {}
        if str(obj.oid) in doc_map:
            # Represented, but the IRS found no relevance: genuinely 0.
            span.set_attribute("source", "zero")
            return 0.0
        span.set_attribute("source", "derived")
        derived = obj.send("deriveIRSValue", collection_obj, irs_query)
        buffer = ResultBuffer(collection_obj, context.counters)
        buffer.amend(irs_query, obj.oid, derived, collection_obj.get("model"))
        return derived


def contains_object(collection_obj: DBObject, obj: DBObject) -> bool:
    """True when ``obj`` is represented in the IRS collection."""
    doc_map = collection_obj.get("doc_map") or {}
    return str(obj.oid) in doc_map


def member_count(collection_obj: DBObject) -> int:
    """Number of objects represented in the IRS collection."""
    return len(collection_obj.get("doc_map") or {})


# --------------------------------------------------------------------------
# Update methods ("One out of three update methods ... has to be invoked
# whenever a relevant update occurs", Section 4.2)
# --------------------------------------------------------------------------

def insert_object(collection_obj: DBObject, obj: DBObject) -> None:
    """Notify the collection that a member object was created."""
    updates.record_update(collection_obj, updates.INSERT, obj)


def modify_object(collection_obj: DBObject, obj: DBObject) -> None:
    """Notify the collection that a member object's text changed."""
    updates.record_update(collection_obj, updates.MODIFY, obj)


def delete_object(collection_obj: DBObject, obj: DBObject) -> None:
    """Notify the collection that a member object was deleted."""
    updates.record_update(collection_obj, updates.DELETE, obj)


def propagate_updates(collection_obj: DBObject) -> int:
    """Apply pending deferred updates now (e.g. in a low-load period)."""
    return updates.propagate(collection_obj)


# --------------------------------------------------------------------------
# Optimizer integration (Sections 4.5.3/4.5.4)
# --------------------------------------------------------------------------

def enable_irs_first_optimization(db: Database) -> None:
    """Let the optimizer answer ``getIRSValue`` comparisons IRS-first.

    This is evaluation alternative (2) of Section 4.5.3: "The IRS selects
    all IRS documents fulfilling the conditions on the content.  The
    structure conditions are only verified for the text objects identified
    in this first step."  Note the stated semantics: objects *not
    represented* in the collection are never returned, so derived values do
    not participate — that is inherent to the strategy, not a bug, and is
    why it is opt-in.
    """
    coupling_context(db).irs_first_enabled = True


def disable_irs_first_optimization(db: Database) -> None:
    """Return to per-object evaluation (alternative (1) of Section 4.5.3)."""
    coupling_context(db).irs_first_enabled = False


def register_semantic_restrictor(db: Database) -> None:
    """Register the ``getIRSValue`` restrictor with the query optimizer."""

    def restrict(database: Database, args: tuple, op: str, constant: Any) -> Optional[Set[OID]]:
        try:
            context = coupling_context(database)
        except CouplingError:
            return None
        if not getattr(context, "irs_first_enabled", False):
            return None
        if len(args) != 2:
            return None
        collection_ref, irs_query = args
        collection_obj = _resolve_collection(database, collection_ref)
        if collection_obj is None or not isinstance(irs_query, str):
            return None
        context.counters.add("get_irs_value_calls")
        values = _get_irs_result(collection_obj, irs_query)
        if op == ">":
            return {oid for oid, value in values.items() if value > constant}
        if op == ">=":
            return {oid for oid, value in values.items() if value >= constant}
        return None  # other comparisons keep per-object evaluation

    register_restrictor("getIRSValue", restrict)


def _resolve_collection(db: Database, ref: Any) -> Optional[DBObject]:
    if isinstance(ref, DBObject):
        return ref if ref.isa(COLLECTION_CLASS) else None
    if isinstance(ref, OID) and db.object_exists(ref):
        obj = db.get_object(ref)
        return obj if obj.isa(COLLECTION_CLASS) else None
    return None
