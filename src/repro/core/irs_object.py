"""The ``IRSObject`` coupling class (Section 4.2).

"Each document element is a subclass of database class IRSObject."  The
class contributes three methods:

* ``getText(mode)`` — the object's textual representation (delegating to
  the text-mode registry; element-type classes may override);
* ``getIRSValue(collection, irsQuery)`` — "with this method each object
  knows its IRS value, in accordance with the object paradigm";
* ``deriveIRSValue(collection, irsQuery)`` — "called whenever an object's
  IRS value is required, but the object is not represented in the IRS
  collection".

Collection choice (Section 4.5.1): the collection argument may be (1) a
COLLECTION object/OID passed explicitly, (2) omitted, falling back to the
object's ``default_collection`` attribute (the "hard wired" variant), or
(3) omitted with a per-class ``chooseCollection`` override (the
"sophisticated choice of the IRSObject itself").
"""

from __future__ import annotations

from typing import Any, Optional

from repro import obs
from repro.core import derivation
from repro.core.context import coupling_context
from repro.core.text_modes import text_for
from repro.errors import CouplingError
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID

IRSOBJECT_CLASS = "IRSObject"


def define_irs_object_class(db: Database) -> None:
    """Define the IRSObject class with its coupling methods.

    Idempotent — re-attaches methods when the class structure came back
    from a snapshot (methods are code, never persisted).
    """
    if db.schema.has_class(IRSOBJECT_CLASS):
        cdef = db.schema.get_class(IRSOBJECT_CLASS)
    else:
        cdef = db.define_class(
            IRSOBJECT_CLASS,
            attributes={"default_collection": "OID"},
        )
    cdef.add_method("getText", get_text)
    cdef.add_method("getIRSValue", get_irs_value)
    cdef.add_method("deriveIRSValue", derive_irs_value)
    cdef.add_method("setDefaultCollection", set_default_collection)


# --------------------------------------------------------------------------
# IRSObject methods
# --------------------------------------------------------------------------

def get_text(obj: DBObject, mode: int = 0) -> str:
    """``getText(mode)`` — the textual representation for one collection.

    "To allow for different results of getText for different IRS
    collections, the method is parameterized."  The default dispatches to
    the text-mode registry; element-type classes override this method to
    attach arbitrary text (Section 5 does so for images and link targets).
    """
    return text_for(obj, mode)


def get_irs_value(obj: DBObject, collection: Any = None, irs_query: Optional[str] = None) -> float:
    """``getIRSValue(c, IRSQuery)`` — the object's relevance to a query.

    "In essence, it merely consists of an invocation of the method
    findIRSValue for argument c" (Section 4.2) — after determining the
    COLLECTION instance per Section 4.5.1 when none was given.
    """
    if irs_query is None:
        # Permit getIRSValue('WWW') with the collection omitted.
        if isinstance(collection, str):
            collection, irs_query = None, collection
        else:
            raise CouplingError("getIRSValue needs an IRS query string")
    collection_obj = _resolve(obj, collection)
    context = coupling_context(obj.database)
    context.counters.add("get_irs_value_calls")
    return collection_obj.send("findIRSValue", irs_query, obj)


def derive_irs_value(obj: DBObject, collection: Any, irs_query: str) -> float:
    """``deriveIRSValue(c, IRSQuery)`` — value from related objects' values.

    The default implementation dispatches to the collection's configured
    derivation scheme (Section 4.5.2); element-type classes override this
    method for application-specific computations, e.g. link-based
    derivation for hypertext nodes (Section 5).
    """
    collection_obj = _resolve(obj, collection)
    obs.metrics().counter("coupling.derivations").inc()
    with obs.tracer().span(
        "coupling.deriveIRSValue",
        oid=str(obj.oid),
        scheme=collection_obj.get("derivation") or "maximum",
    ) as span:
        value = derivation.derive(collection_obj, irs_query, obj)
        span.set_attribute("value", round(value, 6))
    return value


def set_default_collection(obj: DBObject, collection: Any) -> None:
    """Hard-wire the collection used when getIRSValue gets none (4.5.1(1))."""
    collection_obj = _resolve_explicit(obj.database, collection)
    obj.set("default_collection", collection_obj.oid)


# --------------------------------------------------------------------------
# Collection resolution (Section 4.5.1)
# --------------------------------------------------------------------------

def _resolve(obj: DBObject, collection: Any) -> DBObject:
    if collection is not None:
        return _resolve_explicit(obj.database, collection)
    # (3) "a sophisticated choice of the IRSObject itself": honour a
    # per-class chooseCollection override when one exists.
    if obj.responds_to("chooseCollection"):
        chosen = obj.send("chooseCollection")
        if chosen is not None:
            return _resolve_explicit(obj.database, chosen)
    # (1) the hard-wired default.
    default = obj.get("default_collection")
    if isinstance(default, OID) and obj.database.object_exists(default):
        return obj.database.get_object(default)
    raise CouplingError(
        f"{obj!r} has no collection: pass one to getIRSValue, set a default "
        "with setDefaultCollection, or define chooseCollection on the class"
    )


def _resolve_explicit(db: Database, collection: Any) -> DBObject:
    from repro.core.collection import COLLECTION_CLASS

    if isinstance(collection, DBObject):
        obj = collection
    elif isinstance(collection, OID):
        obj = db.get_object(collection)
    else:
        raise CouplingError(f"not a COLLECTION reference: {collection!r}")
    if not obj.isa(COLLECTION_CLASS):
        raise CouplingError(f"{obj!r} is not a COLLECTION instance")
    return obj
