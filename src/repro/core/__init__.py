"""``repro.core`` — the paper's contribution: the OODBMS-IRS coupling.

The coupling is realized "in a database schema that is, for example,
imported into the application schema" (Section 3): two database classes,

* :data:`COLLECTION_CLASS` (``COLLECTION``) — each instance encapsulates
  exactly one IRS collection (Section 4.2), with ``indexObjects``,
  ``getIRSResult`` (persistently buffered), ``findIRSValue`` and the
  update-propagation methods;
* :data:`IRSOBJECT_CLASS` (``IRSObject``) — the superclass of every
  document-element class, with ``getText``, ``getIRSValue`` and
  ``deriveIRSValue``.

:func:`install_coupling` imports this coupling schema into a database and
wires it to an :class:`repro.irs.IRSEngine`.  The :class:`DocumentSystem`
facade assembles the whole stack (OODBMS + IRS + SGML loader + coupling).
"""

from repro.core.context import CouplingContext, install_coupling, coupling_context
from repro.core.collection import COLLECTION_CLASS
from repro.core.irs_object import IRSOBJECT_CLASS
from repro.core.system import DocumentSystem

__all__ = [
    "CouplingContext",
    "install_coupling",
    "coupling_context",
    "COLLECTION_CLASS",
    "IRSOBJECT_CLASS",
    "DocumentSystem",
]
