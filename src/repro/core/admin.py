"""Administration: introspection reports over a running document system.

The editorial team of an online journal needs to see what the system is
doing — which collections exist, how fresh they are, what the buffers hold,
where the storage goes.  These helpers power the shell's ``.collections``
output and give applications a monitoring surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.collection import COLLECTION_CLASS
from repro.core.context import coupling_context
from repro.oodb.database import Database
from repro.oodb.objects import DBObject


@dataclass(frozen=True)
class CollectionReport:
    """Health and size report of one COLLECTION."""

    name: str
    spec_query: str
    members: int
    irs_documents: int
    index_terms: int
    index_bytes: int
    buffered_queries: int
    pending_updates: int
    update_policy: str
    derivation: str
    model: str
    text_mode: int

    @property
    def is_stale(self) -> bool:
        """True when deferred updates await propagation."""
        return self.pending_updates > 0


def collection_report(collection_obj: DBObject) -> CollectionReport:
    """Build the report for one COLLECTION object."""
    context = coupling_context(collection_obj.database)
    irs = context.engine.collection(collection_obj.get("irs_name"))
    doc_map = collection_obj.get("doc_map") or {}
    return CollectionReport(
        name=collection_obj.get("irs_name"),
        spec_query=collection_obj.get("spec_query") or "",
        members=len(doc_map),
        irs_documents=len(irs),
        index_terms=irs.index.term_count,
        index_bytes=irs.indexed_bytes(),
        buffered_queries=len(collection_obj.get("buffer") or {}),
        pending_updates=len(collection_obj.get("pending_ops") or []),
        update_policy=collection_obj.get("update_policy") or "deferred",
        derivation=collection_obj.get("derivation") or "maximum",
        model=collection_obj.get("model") or "(engine default)",
        text_mode=collection_obj.get("text_mode") or 0,
    )


def all_collection_reports(db: Database) -> List[CollectionReport]:
    """Reports for every COLLECTION object in the database."""
    return [
        collection_report(obj)
        for obj in db.instances_of(COLLECTION_CLASS)
        if obj.get("irs_name")
    ]


def system_report(db: Database) -> Dict[str, object]:
    """A one-shot summary of the whole coupled system."""
    context = coupling_context(db)
    class_counts: Dict[str, int] = {}
    for obj in db.iter_objects():
        class_counts[obj.class_name] = class_counts.get(obj.class_name, 0) + 1
    collections = all_collection_reports(db)
    return {
        "objects": db.object_count(),
        "classes": len(db.schema.class_names()),
        "objects_by_class": dict(sorted(class_counts.items())),
        "collections": len(collections),
        "stale_collections": [r.name for r in collections if r.is_stale],
        "total_index_bytes": sum(r.index_bytes for r in collections),
        "buffer_hit_rate": _hit_rate(context.counters),
        "irs_queries_executed": context.engine.counters.queries_executed,
    }


def _hit_rate(counters) -> float:
    total = counters.buffer_hits + counters.buffer_misses
    if total == 0:
        return 0.0
    return counters.buffer_hits / total
