"""Relevance feedback at the coupling level.

Judgments arrive as database objects (OIDs); the collection maps them onto
its IRS documents, runs Rocchio expansion in the IRS term space, and the
expanded query flows through ``getIRSResult`` — buffered and mixed-query
capable like any other IRS query.  ``expandQuery`` is installed as a
COLLECTION method by :func:`install_feedback_method`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.context import coupling_context
from repro.irs.feedback import FeedbackParameters, expand_query
from repro.oodb.objects import DBObject


def _doc_ids_for(collection_obj: DBObject, objects: Iterable[DBObject]) -> List[int]:
    doc_map = collection_obj.get("doc_map") or {}
    doc_ids: List[int] = []
    for obj in objects:
        doc_ids.extend(doc_map.get(str(obj.oid), []))
    return doc_ids


def expand_collection_query(
    collection_obj: DBObject,
    irs_query: str,
    relevant: Iterable[DBObject],
    non_relevant: Iterable[DBObject] = (),
    parameters: Optional[FeedbackParameters] = None,
) -> str:
    """Rocchio-expand ``irs_query`` using judged member objects.

    Objects without representation in this collection contribute nothing
    (feedback is evidence about *IRS documents*; derivation-only objects
    have none).
    """
    context = coupling_context(collection_obj.database)
    irs_collection = context.engine.collection(collection_obj.get("irs_name"))
    return expand_query(
        irs_collection,
        irs_query,
        _doc_ids_for(collection_obj, relevant),
        _doc_ids_for(collection_obj, non_relevant),
        parameters,
    )


def install_feedback_method(db) -> None:
    """Attach ``expandQuery`` to the COLLECTION class of ``db``."""
    from repro.core.collection import COLLECTION_CLASS

    cdef = db.schema.get_class(COLLECTION_CLASS)
    cdef.add_method("expandQuery", expand_collection_query)
