"""Relevance feedback (Rocchio query expansion).

Section 6 names relevance feedback as an open, application-independent
facet of the coupling.  This module supplies the classic Rocchio mechanism
at the IRS level: given judged-relevant (and optionally non-relevant)
documents, term weights are recomputed as

    w(t) = alpha * q(t) + beta * mean_rel tf-idf(t) - gamma * mean_nonrel tf-idf(t)

and the top-k positive terms form an expanded ``#wsum`` query that any
retrieval model of the engine can evaluate.  The coupling exposes it per
COLLECTION via :mod:`repro.core.feedback` (judgments arrive as OIDs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.irs.collection import IRSCollection
from repro.irs.queries import parse_irs_query


@dataclass(frozen=True)
class FeedbackParameters:
    """Rocchio coefficients and expansion size."""

    alpha: float = 1.0   # weight of the original query terms
    beta: float = 0.75   # weight of the relevant centroid
    gamma: float = 0.15  # weight of the non-relevant centroid
    expansion_terms: int = 8

    def __post_init__(self) -> None:
        if self.expansion_terms < 1:
            raise ValueError("expansion_terms must be >= 1")
        if min(self.alpha, self.beta, self.gamma) < 0:
            raise ValueError("Rocchio coefficients must be non-negative")


def _tf_idf_vector(collection: IRSCollection, doc_id: int) -> Dict[str, float]:
    index = collection.index
    n_docs = index.document_count
    vector = {}
    for term, tf in index.document_vector(doc_id).items():
        idf = math.log(1.0 + n_docs / index.document_frequency(term))
        vector[term] = (1.0 + math.log(tf)) * idf
    return vector


def _centroid(collection: IRSCollection, doc_ids: Iterable[int]) -> Dict[str, float]:
    doc_ids = list(doc_ids)
    if not doc_ids:
        return {}
    total: Dict[str, float] = {}
    for doc_id in doc_ids:
        for term, weight in _tf_idf_vector(collection, doc_id).items():
            total[term] = total.get(term, 0.0) + weight
    return {term: weight / len(doc_ids) for term, weight in total.items()}


def rocchio_weights(
    collection: IRSCollection,
    irs_query: str,
    relevant: Iterable[int],
    non_relevant: Iterable[int] = (),
    parameters: Optional[FeedbackParameters] = None,
) -> Dict[str, float]:
    """Rocchio term weights over the collection's analyzed term space."""
    parameters = parameters or FeedbackParameters()
    weights: Dict[str, float] = {}

    query_terms = parse_irs_query(irs_query).terms()
    for raw in query_terms:
        term = collection.analyzer.term(raw)
        if term is not None:
            weights[term] = weights.get(term, 0.0) + parameters.alpha

    for term, weight in _centroid(collection, relevant).items():
        weights[term] = weights.get(term, 0.0) + parameters.beta * weight
    for term, weight in _centroid(collection, non_relevant).items():
        weights[term] = weights.get(term, 0.0) - parameters.gamma * weight
    return weights


def expand_query(
    collection: IRSCollection,
    irs_query: str,
    relevant: Iterable[int],
    non_relevant: Iterable[int] = (),
    parameters: Optional[FeedbackParameters] = None,
) -> str:
    """Build the expanded ``#wsum(...)`` query text.

    Original query terms are always retained; the remaining budget of
    ``expansion_terms`` is filled with the best-weighted new terms.
    """
    parameters = parameters or FeedbackParameters()
    weights = rocchio_weights(collection, irs_query, relevant, non_relevant, parameters)
    positive = {t: w for t, w in weights.items() if w > 0}
    if not positive:
        return irs_query

    original_terms = []
    for raw in parse_irs_query(irs_query).terms():
        term = collection.analyzer.term(raw)
        if term is not None and term in positive and term not in original_terms:
            original_terms.append(term)

    ranked_new = sorted(
        (t for t in positive if t not in original_terms),
        key=lambda t: (-positive[t], t),
    )
    budget = max(0, parameters.expansion_terms - len(original_terms))
    chosen = original_terms + ranked_new[:budget]
    if not chosen:
        return irs_query

    parts = []
    for term in chosen:
        parts.append(f"{positive[term]:.4f} {term}")
    return f"#wsum({' '.join(parts)})"


def feedback_iteration(
    collection: IRSCollection,
    engine,
    collection_name: str,
    irs_query: str,
    relevant: List[int],
    non_relevant: Optional[List[int]] = None,
    parameters: Optional[FeedbackParameters] = None,
) -> Tuple[str, Dict[int, float]]:
    """One expand-and-requery round; returns (expanded query, new result)."""
    expanded = expand_query(
        collection, irs_query, relevant, non_relevant or [], parameters
    )
    result = engine.query(collection_name, expanded)
    return expanded, result.values
