"""Collection statistics: Zipf and Heaps checks for corpus realism.

The proprietary MMF corpus is substituted with seeded synthetic documents
(see DESIGN.md §2); these diagnostics validate that the substitute behaves
like natural-language text where it matters for retrieval: a roughly
Zipfian rank-frequency distribution (idf spread) and sublinear vocabulary
growth (Heaps' law).  The STATS benchmark prints them; the corpus tests
assert sane ranges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.irs.inverted_index import InvertedIndex


@dataclass(frozen=True)
class CollectionStatistics:
    """Summary statistics of one inverted index."""

    documents: int
    tokens: int
    vocabulary: int
    postings: int
    average_document_length: float
    zipf_slope: float
    heaps_beta: float

    @property
    def type_token_ratio(self) -> float:
        if self.tokens == 0:
            return 0.0
        return self.vocabulary / self.tokens


def rank_frequency(index: InvertedIndex) -> List[Tuple[int, int]]:
    """(rank, collection frequency) pairs, most frequent first."""
    frequencies = sorted(
        (index.collection_frequency(term) for term in index.terms()), reverse=True
    )
    return [(rank, frequency) for rank, frequency in enumerate(frequencies, start=1)]


def zipf_slope(index: InvertedIndex) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    Natural text sits near -1; a uniform vocabulary would be near 0.
    """
    points = [
        (math.log(rank), math.log(frequency))
        for rank, frequency in rank_frequency(index)
        if frequency > 0
    ]
    return _slope(points)


def heaps_beta(document_term_lists: List[List[str]]) -> float:
    """Heaps' law exponent beta from V(n) ~ K * n^beta.

    Computed as the slope of log V against log n over the running corpus;
    natural text sits around 0.4-0.8.
    """
    seen: set = set()
    tokens = 0
    points = []
    for terms in document_term_lists:
        tokens += len(terms)
        seen.update(terms)
        if tokens > 0 and len(seen) > 1:
            points.append((math.log(tokens), math.log(len(seen))))
    return _slope(points)


def _slope(points: List[Tuple[float, float]]) -> float:
    n = len(points)
    if n < 2:
        return 0.0
    sum_x = sum(x for x, _y in points)
    sum_y = sum(y for _x, y in points)
    sum_xx = sum(x * x for x, _y in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if abs(denominator) < 1e-12:
        return 0.0
    return (n * sum_xy - sum_x * sum_y) / denominator


def collection_statistics(
    index: InvertedIndex, document_term_lists: List[List[str]]
) -> CollectionStatistics:
    """All summary statistics in one call."""
    return CollectionStatistics(
        documents=index.document_count,
        tokens=index.token_count,
        vocabulary=index.term_count,
        postings=index.posting_count,
        average_document_length=index.average_document_length,
        zipf_slope=zipf_slope(index),
        heaps_beta=heaps_beta(document_term_lists),
    )


def statistics_for_collection(collection) -> CollectionStatistics:
    """Statistics of an :class:`~repro.irs.collection.IRSCollection`."""
    term_lists = [
        collection.analyzer.tokens(document.text)
        for document in collection.documents()
    ]
    return collection_statistics(collection.index, term_lists)
