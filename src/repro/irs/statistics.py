"""Collection statistics: the scoring cache plus corpus-realism checks.

Two concerns live here:

* :class:`StatisticsCache` — the query-evaluation fast path's memo of
  global statistics (average document length, per-term df/idf, per-document
  TF-IDF norms, per-term document-id sets).  One instance is attached to
  each :class:`~repro.irs.collection.IRSCollection`; every read validates
  against :attr:`InvertedIndex.epoch` and drops all memos when the index
  mutated, so interleaved add/remove/query sequences never observe stale
  values.
* Zipf and Heaps diagnostics that validate the seeded synthetic corpus
  behaves like natural-language text (see DESIGN.md §2).  The STATS
  benchmark prints them; the corpus tests assert sane ranges.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.irs.inverted_index import InvertedIndex


class StatisticsCache:
    """Epoch-validated memo of the index statistics scoring needs.

    Every accessor first compares the index's epoch with the epoch the
    memos were built at; a mismatch clears everything.  Per-term values are
    filled lazily; per-document norms are built for *all* documents in one
    pass over the postings the first time any norm is requested — one
    O(postings) sweep instead of an O(vocabulary) scan per scored document.

    Accessors are serialized by a re-entrant lock so concurrent scorers on
    the service layer's worker pool never observe a half-built memo; the
    critical sections are dict probes (plus one norm sweep on a cold
    cache), so contention stays negligible next to scoring itself.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self._index = index
        self._epoch = -1
        self._lock = threading.RLock()
        self._avg_dl: Optional[float] = None
        self._idf: Dict[str, float] = {}
        self._inquery_idf: Dict[str, float] = {}
        self._doc_id_sets: Dict[str, FrozenSet[int]] = {}
        self._norms: Optional[Dict[int, float]] = None
        # Plain ints, not registry instruments: these sit on the per-document
        # scoring fast path where even a dict lookup per access would show up.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _validate(self) -> None:
        if self._epoch != self._index.epoch:
            if self._epoch != -1:
                self.invalidations += 1
            self._epoch = self._index.epoch
            self._avg_dl = None
            self._idf.clear()
            self._inquery_idf.clear()
            self._doc_id_sets.clear()
            self._norms = None

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/invalidation counters as a plain dict."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
            }

    def reset_cache_info(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.invalidations = 0

    @property
    def index(self) -> InvertedIndex:
        return self._index

    @property
    def average_document_length(self) -> float:
        """Memoized mean document length."""
        with self._lock:
            self._validate()
            if self._avg_dl is None:
                self.misses += 1
                self._avg_dl = self._index.average_document_length
            else:
                self.hits += 1
            return self._avg_dl

    def document_frequency(self, term: str) -> int:
        """df of ``term`` (delegates to the index; already O(1))."""
        return self._index.document_frequency(term)

    def idf(self, term: str) -> float:
        """The vector model's idf, ``log(1 + N/df)`` (0.0 when df == 0)."""
        with self._lock:
            self._validate()
            cached = self._idf.get(term)
            if cached is None:
                self.misses += 1
                df = self._index.document_frequency(term)
                if df == 0:
                    cached = 0.0
                else:
                    cached = math.log(1.0 + self._index.document_count / df)
                self._idf[term] = cached
            else:
                self.hits += 1
            return cached

    def inquery_idf(self, term: str) -> float:
        """INQUERY's scaled idf part, clamped to [0, 1] (0.0 when df == 0)."""
        with self._lock:
            self._validate()
            cached = self._inquery_idf.get(term)
            if cached is None:
                self.misses += 1
                df = self._index.document_frequency(term)
                n_docs = self._index.document_count
                if df == 0 or n_docs == 0:
                    cached = 0.0
                else:
                    part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
                    cached = max(0.0, min(1.0, part))
                self._inquery_idf[term] = cached
            else:
                self.hits += 1
            return cached

    def doc_id_set(self, term: str) -> FrozenSet[int]:
        """The set of documents containing ``term`` (memoized)."""
        with self._lock:
            self._validate()
            cached = self._doc_id_sets.get(term)
            if cached is None:
                self.misses += 1
                cached = frozenset(p.doc_id for p in self._index.postings(term))
                self._doc_id_sets[term] = cached
            else:
                self.hits += 1
            return cached

    def document_norm(self, doc_id: int) -> float:
        """TF-IDF norm of one document (0.0 for unknown documents).

        Norms of *all* documents are built together on first access: one
        pass over every postings list accumulates squared weights per
        document, then a square root per document.

        The sweep walks terms in **sorted order** with idf computed from the
        index's ``document_frequency`` (the same expression :meth:`idf`
        memoizes, not the local postings-list length).  That makes each
        document's float accumulation canonical — its own terms in sorted
        order, global df — and therefore bit-identical across every index
        representation (monolithic, segment stack, shard union, worker
        replica), which the sharded-scoring equivalence guarantee relies on.
        """
        with self._lock:
            self._validate()
            if self._norms is None:
                self.misses += 1
                index = self._index
                n_docs = index.document_count
                squared: Dict[int, float] = {d: 0.0 for d in index.document_ids()}
                for term in sorted(index.terms()):
                    df = index.document_frequency(term)
                    if df == 0:
                        continue
                    idf = math.log(1.0 + n_docs / df)
                    for posting in index.postings(term):
                        w = (1.0 + math.log(posting.tf)) * idf
                        squared[posting.doc_id] += w * w
                self._norms = {d: math.sqrt(total) for d, total in squared.items()}
            else:
                self.hits += 1
            return self._norms.get(doc_id, 0.0)


@dataclass(frozen=True)
class CollectionStatistics:
    """Summary statistics of one inverted index."""

    documents: int
    tokens: int
    vocabulary: int
    postings: int
    average_document_length: float
    zipf_slope: float
    heaps_beta: float

    @property
    def type_token_ratio(self) -> float:
        if self.tokens == 0:
            return 0.0
        return self.vocabulary / self.tokens


def rank_frequency(index: InvertedIndex) -> List[Tuple[int, int]]:
    """(rank, collection frequency) pairs, most frequent first."""
    frequencies = sorted(
        (index.collection_frequency(term) for term in index.terms()), reverse=True
    )
    return [(rank, frequency) for rank, frequency in enumerate(frequencies, start=1)]


def zipf_slope(index: InvertedIndex) -> float:
    """Least-squares slope of log(frequency) vs log(rank).

    Natural text sits near -1; a uniform vocabulary would be near 0.
    """
    points = [
        (math.log(rank), math.log(frequency))
        for rank, frequency in rank_frequency(index)
        if frequency > 0
    ]
    return _slope(points)


def heaps_beta(document_term_lists: List[List[str]]) -> float:
    """Heaps' law exponent beta from V(n) ~ K * n^beta.

    Computed as the slope of log V against log n over the running corpus;
    natural text sits around 0.4-0.8.
    """
    seen: set = set()
    tokens = 0
    points = []
    for terms in document_term_lists:
        tokens += len(terms)
        seen.update(terms)
        if tokens > 0 and len(seen) > 1:
            points.append((math.log(tokens), math.log(len(seen))))
    return _slope(points)


def _slope(points: List[Tuple[float, float]]) -> float:
    n = len(points)
    if n < 2:
        return 0.0
    sum_x = sum(x for x, _y in points)
    sum_y = sum(y for _x, y in points)
    sum_xx = sum(x * x for x, _y in points)
    sum_xy = sum(x * y for x, y in points)
    denominator = n * sum_xx - sum_x * sum_x
    if abs(denominator) < 1e-12:
        return 0.0
    return (n * sum_xy - sum_x * sum_y) / denominator


def collection_statistics(
    index: InvertedIndex, document_term_lists: List[List[str]]
) -> CollectionStatistics:
    """All summary statistics in one call."""
    return CollectionStatistics(
        documents=index.document_count,
        tokens=index.token_count,
        vocabulary=index.term_count,
        postings=index.posting_count,
        average_document_length=index.average_document_length,
        zipf_slope=zipf_slope(index),
        heaps_beta=heaps_beta(document_term_lists),
    )


def statistics_for_collection(collection) -> CollectionStatistics:
    """Statistics of an :class:`~repro.irs.collection.IRSCollection`."""
    term_lists = [
        collection.analyzer.tokens(document.text)
        for document in collection.documents()
    ]
    return collection_statistics(collection.index, term_lists)
