"""Common interface of retrieval models."""

from __future__ import annotations

from typing import Dict, List

from repro.irs.collection import IRSCollection
from repro.irs.queries import QueryNode


class RetrievalModel:
    """Scores documents of one collection against a parsed query tree."""

    #: Operator used to combine bare multi-term queries for this model.
    default_operator = "sum"

    name = "abstract"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        """Return ``{doc_id: IRS value}`` for all documents with value > 0.

        Values lie in [0, 1]; higher means more likely relevant ("an IRS
        value which indicates the supposed relevance of each IRS document",
        Section 1.1).
        """
        raise NotImplementedError

    def analyzed_terms(self, collection: IRSCollection, raw_terms: List[str]) -> List[str]:
        """Run query terms through the collection's analyzer, dropping stopped ones."""
        analyzed = []
        for raw in raw_terms:
            term = collection.analyzer.term(raw)
            if term is not None:
                analyzed.append(term)
        return analyzed
