"""Common interface of retrieval models, plus query precompilation.

The compiled-query stage is the first leg of the scoring fast path: every
raw query term is pushed through the collection's analyzer exactly once
(memoized across repeated terms), and the operator structure is resolved
into plain compiled nodes.  Scoring then works with analyzed terms and
dict lookups — no per-(term, candidate-document) re-analysis, no repeated
query-tree walks over raw nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.irs.collection import IRSCollection
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode, TermNode


class CompiledTerm:
    """A query term analyzed once.  ``term`` is None when stopped out."""

    __slots__ = ("raw", "term")

    def __init__(self, raw: str, term: Optional[str]) -> None:
        self.raw = raw
        self.term = term


class CompiledProximity:
    """A proximity window with its terms analyzed once.

    ``terms`` holds the analyzed terms; ``None`` entries mark stopped-out
    operands, which make the window unmatchable (INQUERY behaved the same).
    ``node`` keeps the original query node for the proximity caches.
    """

    __slots__ = ("node", "ordered", "window", "terms")

    def __init__(self, node: ProximityNode, terms: Tuple[Optional[str], ...]) -> None:
        self.node = node
        self.ordered = node.ordered
        self.window = node.window
        self.terms = terms

    @property
    def matchable(self) -> bool:
        return all(term is not None for term in self.terms)


class CompiledOperator:
    """An operator node over compiled children."""

    __slots__ = ("op", "children", "weights")

    def __init__(self, op: str, children: Tuple[object, ...], weights: Tuple[float, ...]) -> None:
        self.op = op
        self.children = children
        self.weights = weights


CompiledNode = object  # CompiledTerm | CompiledProximity | CompiledOperator


def compile_query(collection: IRSCollection, node: QueryNode) -> CompiledNode:
    """Resolve ``node`` into a compiled tree against ``collection``.

    Analysis runs once per *distinct* raw term, however often (and however
    deep) the term occurs in the query.
    """
    memo: Dict[str, Optional[str]] = {}

    def analyze(raw: str) -> Optional[str]:
        if raw not in memo:
            memo[raw] = collection.analyzer.term(raw)
        return memo[raw]

    def walk(current: QueryNode) -> CompiledNode:
        if isinstance(current, TermNode):
            return CompiledTerm(current.term, analyze(current.term))
        if isinstance(current, ProximityNode):
            return CompiledProximity(
                current, tuple(analyze(t.term) for t in current.term_nodes)
            )
        if isinstance(current, OperatorNode):
            return CompiledOperator(
                current.op,
                tuple(walk(child) for child in current.children),
                current.weights,
            )
        raise ValueError(f"cannot compile query node {current!r}")

    return walk(node)


def compiled_terms(node: CompiledNode) -> List[str]:
    """All analyzed terms of a compiled tree (stopped terms omitted)."""
    out: List[str] = []

    def walk(current: CompiledNode) -> None:
        if isinstance(current, CompiledTerm):
            if current.term is not None:
                out.append(current.term)
            return
        if isinstance(current, CompiledProximity):
            out.extend(t for t in current.terms if t is not None)
            return
        if isinstance(current, CompiledOperator):
            for child in current.children:
                walk(child)

    walk(node)
    return out


class RetrievalModel:
    """Scores documents of one collection against a parsed query tree."""

    #: Operator used to combine bare multi-term queries for this model.
    default_operator = "sum"

    name = "abstract"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        """Return ``{doc_id: IRS value}`` for all documents with value > 0.

        Values lie in [0, 1]; higher means more likely relevant ("an IRS
        value which indicates the supposed relevance of each IRS document",
        Section 1.1).
        """
        raise NotImplementedError

    def analyzed_terms(self, collection: IRSCollection, raw_terms: List[str]) -> List[str]:
        """Run query terms through the collection's analyzer, dropping stopped ones."""
        analyzed = []
        for raw in raw_terms:
            term = collection.analyzer.term(raw)
            if term is not None:
                analyzed.append(term)
        return analyzed
