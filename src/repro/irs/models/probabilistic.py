"""INQUERY-style probabilistic inference model.

The IRS the paper couples is INQUERY, "based on Bayesean inference networks"
[CrT91, CCH92].  This model reproduces the published INQUERY belief
function: per (term, document) the belief is

    bel(t, d) = db + (1 - db) * tf_part * idf_part

with default belief ``db = 0.4``,

    tf_part  = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
    idf_part = log(N + 0.5) - log(df) , normalized by log(N + 1)

— i.e. the Robertson tf component with document-length normalization
(explicitly noted by the paper: "INQUERY, for example, takes into account
the IRS documents' length in order to compute IRS values", Section 4.5.2)
and a scaled idf.  Beliefs combine through the operator algebra of
:mod:`repro.irs.models.operators`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.irs.collection import IRSCollection
from repro.irs.models import operators as ops
from repro.irs.models.base import RetrievalModel
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode, TermNode

#: INQUERY's default belief for unobserved evidence.
DEFAULT_BELIEF = 0.4


class InferenceNetworkModel(RetrievalModel):
    """Belief scoring with #and/#or/#not/#sum/#wsum/#max combination."""

    name = "inquery"
    default_operator = "sum"

    def __init__(self, default_belief: float = DEFAULT_BELIEF) -> None:
        if not 0.0 <= default_belief < 1.0:
            raise ValueError("default belief must lie in [0, 1)")
        self._db = default_belief

    # -- scoring -----------------------------------------------------------

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        candidates = self._candidates(collection, query)
        baseline = self.baseline(query)
        result: Dict[int, float] = {}
        for doc_id in candidates:
            belief = self._belief(collection, query, doc_id)
            if belief > baseline:  # strictly more evidence than "no evidence"
                result[doc_id] = belief
        return result

    def baseline(self, query: QueryNode) -> float:
        """The query's belief for a document with *no* matching evidence.

        Documents scoring above this are retrieved; the baseline depends on
        the operator structure (e.g. ``#and`` of two terms bottoms out at
        ``db * db``, not ``db``).
        """
        if isinstance(query, (TermNode, ProximityNode)):
            return self._db
        if isinstance(query, OperatorNode):
            children = [self.baseline(c) for c in query.children]
            if query.op == "and":
                return ops.op_and(children)
            if query.op == "or":
                return ops.op_or(children)
            if query.op == "not":
                return ops.op_not(children[0])
            if query.op == "sum":
                return ops.op_sum(children)
            if query.op == "wsum":
                return ops.op_wsum(query.weights, children)
            if query.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {query!r}")  # pragma: no cover

    def _candidates(self, collection: IRSCollection, query: QueryNode) -> List[int]:
        """Documents containing at least one positive query term."""
        terms = self.analyzed_terms(collection, query.terms())
        docs: Set[int] = set()
        for term in terms:
            for posting in collection.index.postings(term):
                docs.add(posting.doc_id)
        return sorted(docs)

    # -- belief computation ---------------------------------------------------

    def term_belief(self, collection: IRSCollection, raw_term: str, doc_id: int) -> float:
        """bel(t, d) for one raw query term (analysis applied here)."""
        term = collection.analyzer.term(raw_term)
        if term is None:
            return self._db
        index = collection.index
        tf = index.term_frequency(term, doc_id)
        if tf == 0:
            return self._db
        n_docs = index.document_count
        df = index.document_frequency(term)
        dl = index.document_length(doc_id)
        avg_dl = index.average_document_length or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return self._db + (1.0 - self._db) * tf_part * idf_part

    def proximity_belief(
        self, collection: IRSCollection, node: ProximityNode, doc_id: int
    ) -> float:
        """Belief of a #od/#uw window: matches behave like a pseudo-term.

        tf = window match count, df = documents with at least one match;
        the usual tf/length/idf combination applies.
        """
        from repro.irs.proximity import proximity_df_cached, proximity_tf

        tf = proximity_tf(collection, doc_id, node.terms(), node.window, node.ordered)
        if tf == 0:
            return self._db
        n_docs = collection.index.document_count
        df = proximity_df_cached(collection, node)
        if df == 0 or n_docs == 0:
            return self._db
        dl = collection.index.document_length(doc_id)
        avg_dl = collection.index.average_document_length or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return self._db + (1.0 - self._db) * tf_part * idf_part

    def _belief(self, collection: IRSCollection, node: QueryNode, doc_id: int) -> float:
        if isinstance(node, TermNode):
            return self.term_belief(collection, node.term, doc_id)
        if isinstance(node, ProximityNode):
            return self.proximity_belief(collection, node, doc_id)
        if isinstance(node, OperatorNode):
            children = [self._belief(collection, c, doc_id) for c in node.children]
            if node.op == "and":
                return ops.op_and(children)
            if node.op == "or":
                return ops.op_or(children)
            if node.op == "not":
                return ops.op_not(children[0])
            if node.op == "sum":
                return ops.op_sum(children)
            if node.op == "wsum":
                return ops.op_wsum(node.weights, children)
            if node.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {node!r}")  # pragma: no cover
