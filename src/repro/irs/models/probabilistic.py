"""INQUERY-style probabilistic inference model.

The IRS the paper couples is INQUERY, "based on Bayesean inference networks"
[CrT91, CCH92].  This model reproduces the published INQUERY belief
function: per (term, document) the belief is

    bel(t, d) = db + (1 - db) * tf_part * idf_part

with default belief ``db = 0.4``,

    tf_part  = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
    idf_part = log(N + 0.5) - log(df) , normalized by log(N + 1)

— i.e. the Robertson tf component with document-length normalization
(explicitly noted by the paper: "INQUERY, for example, takes into account
the IRS documents' length in order to compute IRS values", Section 4.5.2)
and a scaled idf.  Beliefs combine through the operator algebra of
:mod:`repro.irs.models.operators`.

Scoring is **term-at-a-time**: the query is compiled (each raw term
analyzed once), then each distinct term's postings list is walked exactly
once, producing a per-term belief map over the documents that contain it.
Flat ``#sum``/``#wsum`` queries — the common shape — accumulate those maps
directly into a scores dict; structured queries combine the precomputed
leaf maps per candidate with plain dict lookups, never re-touching the
analyzer or the index.  The naive document-at-a-time path survives in
:mod:`repro.irs.models.reference` for equivalence tests and benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set

from repro.irs.collection import IRSCollection
from repro.irs.models import operators as ops
from repro.irs.models.base import (
    CompiledOperator,
    CompiledProximity,
    CompiledTerm,
    RetrievalModel,
    compile_query,
    compiled_terms,
)
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode, TermNode

#: INQUERY's default belief for unobserved evidence.
DEFAULT_BELIEF = 0.4


class InferenceNetworkModel(RetrievalModel):
    """Belief scoring with #and/#or/#not/#sum/#wsum/#max combination."""

    name = "inquery"
    default_operator = "sum"

    def __init__(self, default_belief: float = DEFAULT_BELIEF) -> None:
        if not 0.0 <= default_belief < 1.0:
            raise ValueError("default belief must lie in [0, 1)")
        self._db = default_belief

    # -- scoring -----------------------------------------------------------

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        compiled = compile_query(collection, query)
        term_maps: Dict[str, Dict[int, float]] = {}
        flat = self._flat_linear(compiled)
        if flat is not None:
            return self._score_term_at_a_time(collection, flat, term_maps)
        return self._score_structured(collection, query, compiled, term_maps)

    def _flat_linear(self, compiled) -> Optional[List[tuple]]:
        """(weight, leaf) pairs when the query is a flat #sum/#wsum of leaves.

        These linear combinations admit pure term-at-a-time accumulation;
        anything else (nested operators, #and/#or/#not/#max) goes through
        the structured combiner.  A #wsum whose weights do not sum to a
        positive total falls through as well (op_wsum has a special case).
        """
        if isinstance(compiled, (CompiledTerm, CompiledProximity)):
            return [(1.0, compiled)]
        if not isinstance(compiled, CompiledOperator):
            return None
        if compiled.op not in ("sum", "wsum"):
            return None
        if not all(
            isinstance(c, (CompiledTerm, CompiledProximity)) for c in compiled.children
        ):
            return None
        if compiled.op == "sum":
            weights = [1.0] * len(compiled.children)
        else:
            weights = list(compiled.weights)
            if sum(weights) <= 0:
                return None
        return list(zip(weights, compiled.children))

    def _score_term_at_a_time(
        self,
        collection: IRSCollection,
        weighted_leaves: List[tuple],
        term_maps: Dict[str, Dict[int, float]],
    ) -> Dict[int, float]:
        """Accumulate leaf belief maps directly into a scores dict.

        For a linear combination ``sum_i w_i * bel_i / W`` every absent leaf
        contributes the default belief, so the score decomposes as
        ``db + sum_i w_i * (bel_i - db) / W`` — each term's postings are
        walked once, adding its weighted excess belief to the accumulator.
        Documents retrieved are exactly those with positive accumulated
        excess (i.e. strictly more evidence than the no-evidence baseline).
        """
        db = self._db
        total_weight = sum(w for w, _leaf in weighted_leaves)
        acc: Dict[int, float] = {}
        for weight, leaf in weighted_leaves:
            for doc_id, belief in self._leaf_map(collection, leaf, term_maps).items():
                acc[doc_id] = acc.get(doc_id, 0.0) + weight * (belief - db)
        return {
            doc_id: db + excess / total_weight
            for doc_id, excess in acc.items()
            if excess > 0.0
        }

    def _score_structured(
        self,
        collection: IRSCollection,
        query: QueryNode,
        compiled,
        term_maps: Dict[str, Dict[int, float]],
    ) -> Dict[int, float]:
        """Combine precomputed leaf belief maps per candidate document."""
        db = self._db
        candidates: Set[int] = set()
        for term in set(compiled_terms(compiled)):
            candidates.update(collection.stats.doc_id_set(term))
        if not candidates:
            return {}

        def evaluate(node, doc_id: int) -> float:
            if isinstance(node, CompiledTerm):
                return self._leaf_map(collection, node, term_maps).get(doc_id, db)
            if isinstance(node, CompiledProximity):
                return self._leaf_map(collection, node, term_maps).get(doc_id, db)
            children = [evaluate(c, doc_id) for c in node.children]
            op = node.op
            if op == "and":
                return ops.op_and(children)
            if op == "or":
                return ops.op_or(children)
            if op == "not":
                return ops.op_not(children[0])
            if op == "sum":
                return ops.op_sum(children)
            if op == "wsum":
                return ops.op_wsum(node.weights, children)
            if op == "max":
                return ops.op_max(children)
            raise ValueError(f"cannot score operator {op!r}")  # pragma: no cover

        baseline = self.baseline(query)
        result: Dict[int, float] = {}
        for doc_id in sorted(candidates):
            belief = evaluate(compiled, doc_id)
            if belief > baseline:  # strictly more evidence than "no evidence"
                result[doc_id] = belief
        return result

    def _leaf_map(
        self,
        collection: IRSCollection,
        leaf,
        term_maps: Dict[str, Dict[int, float]],
    ) -> Dict[int, float]:
        """``{doc_id: belief}`` of one leaf over the documents that match it.

        Term leaves walk their postings list exactly once per query (maps
        are shared across repeated terms); proximity leaves reuse the
        epoch-memoized match maps of :mod:`repro.irs.proximity`.
        """
        if isinstance(leaf, CompiledTerm):
            if leaf.term is None:
                return {}
            cached = term_maps.get(leaf.term)
            if cached is None:
                cached = self._term_belief_map(collection, leaf.term)
                term_maps[leaf.term] = cached
            return cached
        return self._proximity_belief_map(collection, leaf, term_maps)

    def _term_belief_map(self, collection: IRSCollection, term: str) -> Dict[int, float]:
        index = collection.index
        stats = collection.stats
        idf_part = stats.inquery_idf(term)
        avg_dl = stats.average_document_length or 1.0
        db = self._db
        one_minus_db = 1.0 - db
        beliefs: Dict[int, float] = {}
        for posting in index.postings(term):
            tf = posting.tf
            dl = index.document_length(posting.doc_id)
            tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
            beliefs[posting.doc_id] = db + one_minus_db * tf_part * idf_part
        return beliefs

    def _proximity_belief_map(
        self,
        collection: IRSCollection,
        leaf: CompiledProximity,
        term_maps: Dict[str, Dict[int, float]],
    ) -> Dict[int, float]:
        from repro.irs.proximity import proximity_tf_map

        key = ("prox", leaf.ordered, leaf.window, tuple(leaf.node.terms()))
        cached = term_maps.get(key)
        if cached is not None:
            return cached
        beliefs: Dict[int, float] = {}
        if leaf.matchable:
            tf_map = proximity_tf_map(collection, leaf.node)
            df = len(tf_map)
            index = collection.index
            n_docs = index.document_count
            if df > 0 and n_docs > 0:
                avg_dl = collection.stats.average_document_length or 1.0
                db = self._db
                one_minus_db = 1.0 - db
                idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
                idf_part = max(0.0, min(1.0, idf_part))
                for doc_id, tf in tf_map.items():
                    dl = index.document_length(doc_id)
                    tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
                    beliefs[doc_id] = db + one_minus_db * tf_part * idf_part
        term_maps[key] = beliefs
        return beliefs

    def baseline(self, query: QueryNode) -> float:
        """The query's belief for a document with *no* matching evidence.

        Documents scoring above this are retrieved; the baseline depends on
        the operator structure (e.g. ``#and`` of two terms bottoms out at
        ``db * db``, not ``db``).
        """
        if isinstance(query, (TermNode, ProximityNode)):
            return self._db
        if isinstance(query, OperatorNode):
            children = [self.baseline(c) for c in query.children]
            if query.op == "and":
                return ops.op_and(children)
            if query.op == "or":
                return ops.op_or(children)
            if query.op == "not":
                return ops.op_not(children[0])
            if query.op == "sum":
                return ops.op_sum(children)
            if query.op == "wsum":
                return ops.op_wsum(query.weights, children)
            if query.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {query!r}")  # pragma: no cover

    def _candidates(self, collection: IRSCollection, query: QueryNode) -> List[int]:
        """Documents containing at least one positive query term."""
        terms = self.analyzed_terms(collection, query.terms())
        docs: Set[int] = set()
        for term in terms:
            for posting in collection.index.postings(term):
                docs.add(posting.doc_id)
        return sorted(docs)

    # -- belief computation ---------------------------------------------------

    def term_belief(self, collection: IRSCollection, raw_term: str, doc_id: int) -> float:
        """bel(t, d) for one raw query term (analysis applied here)."""
        term = collection.analyzer.term(raw_term)
        if term is None:
            return self._db
        index = collection.index
        tf = index.term_frequency(term, doc_id)
        if tf == 0:
            return self._db
        n_docs = index.document_count
        df = index.document_frequency(term)
        dl = index.document_length(doc_id)
        avg_dl = index.average_document_length or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return self._db + (1.0 - self._db) * tf_part * idf_part

    def proximity_belief(
        self, collection: IRSCollection, node: ProximityNode, doc_id: int
    ) -> float:
        """Belief of a #od/#uw window: matches behave like a pseudo-term.

        tf = window match count, df = documents with at least one match;
        the usual tf/length/idf combination applies.
        """
        from repro.irs.proximity import proximity_df_cached, proximity_tf

        tf = proximity_tf(collection, doc_id, node.terms(), node.window, node.ordered)
        if tf == 0:
            return self._db
        n_docs = collection.index.document_count
        df = proximity_df_cached(collection, node)
        if df == 0 or n_docs == 0:
            return self._db
        dl = collection.index.document_length(doc_id)
        avg_dl = collection.index.average_document_length or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return self._db + (1.0 - self._db) * tf_part * idf_part

    def _belief(self, collection: IRSCollection, node: QueryNode, doc_id: int) -> float:
        if isinstance(node, TermNode):
            return self.term_belief(collection, node.term, doc_id)
        if isinstance(node, ProximityNode):
            return self.proximity_belief(collection, node, doc_id)
        if isinstance(node, OperatorNode):
            children = [self._belief(collection, c, doc_id) for c in node.children]
            if node.op == "and":
                return ops.op_and(children)
            if node.op == "or":
                return ops.op_or(children)
            if node.op == "not":
                return ops.op_not(children[0])
            if node.op == "sum":
                return ops.op_sum(children)
            if node.op == "wsum":
                return ops.op_wsum(node.weights, children)
            if node.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {node!r}")  # pragma: no cover
