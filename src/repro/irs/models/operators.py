"""Belief-combination operators with INQUERY semantics.

These are the "half a dozen operators" whose "exact semantics" the paper's
authors knew and re-implemented as collection methods for optimization
(Section 4.5.4).  They are defined here once and reused both by the
probabilistic retrieval model (combining per-term beliefs inside the IRS)
and by :mod:`repro.core.operators` (combining whole buffered result
dictionaries inside the OODBMS) — having the *same* function in both places
is precisely what makes moving the combination between the systems sound.
"""

from __future__ import annotations

from typing import Sequence


def op_and(beliefs: Sequence[float]) -> float:
    """#and: product of beliefs (probabilistic conjunction)."""
    result = 1.0
    for belief in beliefs:
        result *= belief
    return result


def op_or(beliefs: Sequence[float]) -> float:
    """#or: 1 - prod(1 - b) (probabilistic disjunction)."""
    result = 1.0
    for belief in beliefs:
        result *= 1.0 - belief
    return 1.0 - result


def op_not(belief: float) -> float:
    """#not: complement."""
    return 1.0 - belief


def op_sum(beliefs: Sequence[float]) -> float:
    """#sum: arithmetic mean of beliefs."""
    if not beliefs:
        return 0.0
    return sum(beliefs) / len(beliefs)


def op_wsum(weights: Sequence[float], beliefs: Sequence[float]) -> float:
    """#wsum: weighted mean of beliefs."""
    if len(weights) != len(beliefs):
        raise ValueError("#wsum needs one weight per belief")
    total_weight = sum(weights)
    if total_weight == 0:
        return 0.0
    return sum(w * b for w, b in zip(weights, beliefs)) / total_weight


def op_max(beliefs: Sequence[float]) -> float:
    """#max: maximum belief."""
    if not beliefs:
        return 0.0
    return max(beliefs)
