"""Boolean retrieval model.

The simplest paradigm the paper's loose coupling must support (Section 3).
``#and`` intersects, ``#or`` unions, ``#not`` complements relative to the
whole collection.  Matching documents all receive IRS value 1.0 — boolean
systems know no graded relevance, which is exactly the degenerate case the
coupling has to tolerate.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.irs.collection import IRSCollection
from repro.irs.models.base import RetrievalModel
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode, TermNode


class BooleanModel(RetrievalModel):
    """Set-algebra matching with uniform value 1.0."""

    name = "boolean"
    default_operator = "and"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        matching = self._evaluate(collection, query)
        return {doc_id: 1.0 for doc_id in matching}

    def _evaluate(self, collection: IRSCollection, node: QueryNode) -> Set[int]:
        if isinstance(node, TermNode):
            term = collection.analyzer.term(node.term)
            if term is None:
                return set()
            return {p.doc_id for p in collection.index.postings(term)}
        if isinstance(node, ProximityNode):
            from repro.irs.proximity import candidate_documents, proximity_tf

            return {
                doc_id
                for doc_id in candidate_documents(collection, node.terms())
                if proximity_tf(
                    collection, doc_id, node.terms(), node.window, node.ordered
                )
                > 0
            }
        if isinstance(node, OperatorNode):
            child_sets = [self._evaluate(collection, c) for c in node.children]
            if node.op == "and":
                result = child_sets[0]
                for s in child_sets[1:]:
                    result = result & s
                return result
            if node.op in ("or", "sum", "wsum", "max"):
                # The weighted operators degenerate to union under boolean
                # semantics: any evidence matches.
                result: Set[int] = set()
                for s in child_sets:
                    result |= s
                return result
            if node.op == "not":
                universe = set(collection.index.document_ids())
                return universe - child_sets[0]
        raise ValueError(f"cannot evaluate query node {node!r}")  # pragma: no cover
