"""Boolean retrieval model.

The simplest paradigm the paper's loose coupling must support (Section 3).
``#and`` intersects, ``#or`` unions, ``#not`` complements relative to the
whole collection.  Matching documents all receive IRS value 1.0 — boolean
systems know no graded relevance, which is exactly the degenerate case the
coupling has to tolerate.

Evaluation runs over a compiled query (each raw term analyzed once) using
the statistics cache's memoized per-term document-id sets, so repeated
terms and repeated queries never rebuild sets from postings.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.irs.collection import IRSCollection
from repro.irs.models.base import (
    CompiledOperator,
    CompiledProximity,
    CompiledTerm,
    RetrievalModel,
    compile_query,
)
from repro.irs.queries import QueryNode


class BooleanModel(RetrievalModel):
    """Set-algebra matching with uniform value 1.0."""

    name = "boolean"
    default_operator = "and"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        matching = self._evaluate(collection, compile_query(collection, query))
        return {doc_id: 1.0 for doc_id in matching}

    def _evaluate(self, collection: IRSCollection, node) -> Set[int]:
        if isinstance(node, CompiledTerm):
            if node.term is None:
                return set()
            return set(collection.stats.doc_id_set(node.term))
        if isinstance(node, CompiledProximity):
            from repro.irs.proximity import proximity_tf_map

            if not node.matchable:
                return set()
            return set(proximity_tf_map(collection, node.node))
        if isinstance(node, CompiledOperator):
            child_sets = [self._evaluate(collection, c) for c in node.children]
            if node.op == "and":
                result = child_sets[0]
                for s in child_sets[1:]:
                    result = result & s
                return result
            if node.op in ("or", "sum", "wsum", "max"):
                # The weighted operators degenerate to union under boolean
                # semantics: any evidence matches.
                result: Set[int] = set()
                for s in child_sets:
                    result |= s
                return result
            if node.op == "not":
                universe = set(collection.index.document_ids())
                return universe - child_sets[0]
        raise ValueError(f"cannot evaluate query node {node!r}")  # pragma: no cover
