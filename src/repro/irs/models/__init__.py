"""Retrieval models.

The paper's loose coupling is explicitly paradigm-agnostic: "Exchangeability
enables us to use any kind of retrieval system: e.g. boolean retrieval
systems, vector retrieval systems, and systems based on probability"
(Section 3).  Three models implement the common :class:`RetrievalModel`
interface; the engine selects one per query.
"""

from repro.irs.models.base import RetrievalModel, compile_query
from repro.irs.models.boolean import BooleanModel
from repro.irs.models.vector import VectorSpaceModel
from repro.irs.models.probabilistic import InferenceNetworkModel
from repro.irs.models.reference import (
    NaiveInferenceNetworkModel,
    NaiveVectorSpaceModel,
)

MODELS = {
    "boolean": BooleanModel,
    "vector": VectorSpaceModel,
    "inquery": InferenceNetworkModel,
}

__all__ = [
    "RetrievalModel",
    "BooleanModel",
    "VectorSpaceModel",
    "InferenceNetworkModel",
    "NaiveVectorSpaceModel",
    "NaiveInferenceNetworkModel",
    "MODELS",
    "compile_query",
]
