"""Naive document-at-a-time reference models.

These are the pre-optimization scoring paths, kept verbatim so that

* the equivalence tests can assert the fast term-at-a-time paths produce
  per-document values within 1e-9 of them on arbitrary corpora, and
* ``benchmarks/bench_scoring.py`` can measure the before/after throughput
  of the scoring engine against a live baseline instead of a folklore
  number.

They deliberately bypass the statistics caches: global statistics are
re-derived per use (average document length is re-summed, per-document
norms re-scan the document's whole vocabulary slice) and query terms are
re-analyzed per (term, candidate-document) pair — exactly the costs the
fast path eliminates.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set

from repro.irs.collection import IRSCollection
from repro.irs.inverted_index import InvertedIndex
from repro.irs.models import operators as ops
from repro.irs.models.probabilistic import InferenceNetworkModel
from repro.irs.models.vector import VectorSpaceModel
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode, TermNode


def naive_average_document_length(index: InvertedIndex) -> float:
    """Mean document length re-summed from scratch (the pre-PR cost).

    Reaches into the index's length table on purpose: the pre-optimization
    ``average_document_length`` summed that very dict on every call, and the
    reference path must replicate both the cost and the exact float.
    """
    lengths = index._doc_lengths
    if not lengths:
        return 0.0
    return sum(lengths.values()) / len(lengths)


class NaiveVectorSpaceModel(VectorSpaceModel):
    """Doc-at-a-time cosine scoring with per-document vocabulary scans."""

    name = "vector-naive"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        query_vector = self._query_vector(collection, query)
        if not query_vector:
            return {}
        index = collection.index
        n_docs = index.document_count
        scores: Dict[int, float] = {}
        for term, query_weight in query_vector.items():
            df = index.document_frequency(term)
            if df == 0:
                continue
            idf = math.log(1.0 + n_docs / df)
            for posting in index.postings(term):
                tf = 1.0 + math.log(posting.tf)
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + query_weight * tf * idf
        if not scores:
            return {}
        result: Dict[int, float] = {}
        query_norm = math.sqrt(sum(w * w for w in query_vector.values()))
        for doc_id, dot in scores.items():
            doc_norm = self._document_norm(collection, doc_id)
            if doc_norm > 0 and dot > 0:
                value = dot / (doc_norm * query_norm)
                result[doc_id] = min(1.0, value)
        return result

    def _document_norm(self, collection: IRSCollection, doc_id: int) -> float:
        index = collection.index
        n_docs = index.document_count
        total = 0.0
        for term, tf in index.document_vector(doc_id).items():
            df = index.document_frequency(term)
            idf = math.log(1.0 + n_docs / df)
            w = (1.0 + math.log(tf)) * idf
            total += w * w
        return math.sqrt(total)


class NaiveInferenceNetworkModel(InferenceNetworkModel):
    """Doc-at-a-time belief scoring with per-(term, doc) re-analysis."""

    name = "inquery-naive"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        candidates = self._candidates(collection, query)
        baseline = self.baseline(query)
        result: Dict[int, float] = {}
        for doc_id in candidates:
            belief = self._naive_belief(collection, query, doc_id)
            if belief > baseline:
                result[doc_id] = belief
        return result

    def _candidates(self, collection: IRSCollection, query: QueryNode) -> List[int]:
        terms = self.analyzed_terms(collection, query.terms())
        docs: Set[int] = set()
        for term in terms:
            for posting in collection.index.postings(term):
                docs.add(posting.doc_id)
        return sorted(docs)

    def _naive_term_belief(self, collection: IRSCollection, raw_term: str, doc_id: int) -> float:
        term = collection.analyzer.term(raw_term)
        if term is None:
            return self._db
        index = collection.index
        tf = index.term_frequency(term, doc_id)
        if tf == 0:
            return self._db
        n_docs = index.document_count
        df = index.document_frequency(term)
        dl = index.document_length(doc_id)
        avg_dl = naive_average_document_length(index) or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return self._db + (1.0 - self._db) * tf_part * idf_part

    def _naive_proximity_belief(
        self, collection: IRSCollection, node: ProximityNode, doc_id: int
    ) -> float:
        from repro.irs.proximity import proximity_document_frequency, proximity_tf

        tf = proximity_tf(collection, doc_id, node.terms(), node.window, node.ordered)
        if tf == 0:
            return self._db
        n_docs = collection.index.document_count
        df = proximity_document_frequency(
            collection, node.terms(), node.window, node.ordered
        )
        if df == 0 or n_docs == 0:
            return self._db
        dl = collection.index.document_length(doc_id)
        avg_dl = naive_average_document_length(collection.index) or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return self._db + (1.0 - self._db) * tf_part * idf_part

    def _naive_belief(self, collection: IRSCollection, node: QueryNode, doc_id: int) -> float:
        if isinstance(node, TermNode):
            return self._naive_term_belief(collection, node.term, doc_id)
        if isinstance(node, ProximityNode):
            return self._naive_proximity_belief(collection, node, doc_id)
        if isinstance(node, OperatorNode):
            children = [self._naive_belief(collection, c, doc_id) for c in node.children]
            if node.op == "and":
                return ops.op_and(children)
            if node.op == "or":
                return ops.op_or(children)
            if node.op == "not":
                return ops.op_not(children[0])
            if node.op == "sum":
                return ops.op_sum(children)
            if node.op == "wsum":
                return ops.op_wsum(node.weights, children)
            if node.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {node!r}")  # pragma: no cover
