"""Vector-space retrieval model (TF-IDF, cosine similarity).

Included because the paper argues the coupling must accommodate "vector
retrieval systems" unchanged (Section 3).  Operator structure is flattened
to a bag of positive terms — classic vector-space queries are unstructured —
except ``#not`` whose terms *subtract* weight, and ``#wsum`` whose weights
multiply the corresponding query-term weights.

Scoring is term-at-a-time over the postings lists; idf values and the
per-document TF-IDF norms come from the collection's epoch-validated
:class:`~repro.irs.statistics.StatisticsCache` (all norms are built in a
single pass over the postings instead of an O(vocabulary) scan per scored
document).  The pre-cache implementation survives in
:mod:`repro.irs.models.reference` for equivalence tests and benchmarks.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.irs.collection import IRSCollection
from repro.irs.models.base import RetrievalModel
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode, TermNode


class VectorSpaceModel(RetrievalModel):
    """Cosine similarity between tf-idf document and query vectors."""

    name = "vector"
    default_operator = "sum"

    def score(self, collection: IRSCollection, query: QueryNode) -> Dict[int, float]:
        query_vector = self._query_vector(collection, query)
        if not query_vector:
            return {}
        index = collection.index
        stats = collection.stats
        scores: Dict[int, float] = {}
        for term, query_weight in query_vector.items():
            idf = stats.idf(term)  # 0.0 exactly when df == 0
            if idf == 0.0:
                continue
            for posting in index.postings(term):
                tf = 1.0 + math.log(posting.tf)
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + query_weight * tf * idf
        if not scores:
            return {}
        # Cosine normalization by the cached document vector norms.
        result: Dict[int, float] = {}
        query_norm = math.sqrt(sum(w * w for w in query_vector.values()))
        for doc_id, dot in scores.items():
            doc_norm = stats.document_norm(doc_id)
            if doc_norm > 0 and dot > 0:
                value = dot / (doc_norm * query_norm)
                result[doc_id] = min(1.0, value)
        return result

    def _query_vector(self, collection: IRSCollection, node: QueryNode, sign: float = 1.0, weight: float = 1.0) -> Dict[str, float]:
        vector: Dict[str, float] = {}
        memo: Dict[str, object] = {}
        self._accumulate(collection, node, sign, weight, vector, memo)
        # Negative weights (from #not) are kept: they subtract during the
        # dot product; documents whose score goes non-positive are dropped.
        return {t: w for t, w in vector.items() if w != 0}

    def _accumulate(
        self,
        collection: IRSCollection,
        node: QueryNode,
        sign: float,
        weight: float,
        vector: Dict[str, float],
        memo: Dict[str, object],
    ) -> None:
        if isinstance(node, TermNode):
            if node.term in memo:
                term = memo[node.term]
            else:
                term = collection.analyzer.term(node.term)
                memo[node.term] = term
            if term is not None:
                vector[term] = vector.get(term, 0.0) + sign * weight
            return
        if isinstance(node, ProximityNode):
            # The vector paradigm has no positional machinery; proximity
            # degenerates to the bag of its terms — the kind of paradigm
            # difference the loose coupling deliberately tolerates.
            for term_node in node.term_nodes:
                self._accumulate(collection, term_node, sign, weight, vector, memo)
            return
        if isinstance(node, OperatorNode):
            if node.op == "not":
                self._accumulate(collection, node.children[0], -sign, weight, vector, memo)
                return
            if node.op == "wsum":
                for child_weight, child in zip(node.weights, node.children):
                    self._accumulate(collection, child, sign, weight * child_weight, vector, memo)
                return
            for child in node.children:
                self._accumulate(collection, child, sign, weight, vector, memo)

    def _document_norm(self, collection: IRSCollection, doc_id: int) -> float:
        """One document's TF-IDF norm (delegates to the statistics cache)."""
        return collection.stats.document_norm(doc_id)
