"""Inverted index: the IRS's internal document representation.

Section 1.1: "During the indexing process, the documents within an
IRS-collection are transformed to an internal representation (e.g., inverted
lists)".  This module provides exactly that: per-term postings lists with
term frequencies and positions, plus the global statistics retrieval models
need (document count, document lengths, document/collection frequencies).

All aggregate statistics (posting count, token count, per-term collection
frequencies) are maintained as running counters updated by
``add_document``/``remove_document``, so reading them is O(1).  Sorted
postings lists are materialized once per term and reused until the term is
touched again.  Every mutation bumps :attr:`InvertedIndex.epoch`, which the
statistics caches of :mod:`repro.irs.statistics` use for invalidation.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Posting:
    """Occurrences of one term in one document."""

    doc_id: int
    positions: List[int] = field(default_factory=list)

    @property
    def tf(self) -> int:
        """Term frequency within the document."""
        return len(self.positions)


class InvertedIndex:
    """Postings lists over integer document ids."""

    def __init__(self) -> None:
        self._postings: Dict[str, Dict[int, Posting]] = {}
        self._doc_lengths: Dict[int, int] = {}
        self._collection_frequency: Dict[str, int] = {}
        self._posting_count = 0
        self._token_count = 0
        self._sorted: Dict[str, List[Posting]] = {}
        self._epoch = 0
        self._epoch_batch_depth = 0
        self._epoch_batch_dirty = False

    # -- building -------------------------------------------------------------

    def _bump_epoch(self) -> None:
        if self._epoch_batch_depth:
            self._epoch_batch_dirty = True
        else:
            self._epoch += 1

    @contextmanager
    def batched_epoch(self) -> Iterator[None]:
        """Coalesce the epoch bumps of a mutation batch into one.

        Inside the context add/remove defer their epoch bump; on exit the
        epoch advances once if anything mutated.  Lets a propagation window
        of N updates invalidate epoch-keyed caches once instead of N times.
        Not thread-safe by itself: callers hold the collection write lock.
        """
        self._epoch_batch_depth += 1
        try:
            yield
        finally:
            self._epoch_batch_depth -= 1
            if self._epoch_batch_depth == 0 and self._epoch_batch_dirty:
                self._epoch_batch_dirty = False
                self._epoch += 1

    def add_document(self, doc_id: int, terms: List[str]) -> None:
        """Index ``terms`` (analysis already applied) under ``doc_id``."""
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id} already indexed")
        self._doc_lengths[doc_id] = len(terms)
        self._token_count += len(terms)
        for position, term in enumerate(terms):
            by_doc = self._postings.setdefault(term, {})
            posting = by_doc.get(doc_id)
            if posting is None:
                by_doc[doc_id] = Posting(doc_id, [position])
                self._posting_count += 1
            else:
                posting.positions.append(position)
            self._collection_frequency[term] = (
                self._collection_frequency.get(term, 0) + 1
            )
            self._sorted.pop(term, None)
        self._bump_epoch()

    def remove_document(self, doc_id: int, terms: Optional[List[str]] = None) -> None:
        """Remove all trace of ``doc_id``.

        Without ``terms`` this scans every postings list (O(vocabulary)).
        Callers that know the document's distinct terms (e.g. a segment's
        forward map) pass them to make removal O(|document terms|).
        """
        if doc_id not in self._doc_lengths:
            raise KeyError(doc_id)
        self._token_count -= self._doc_lengths[doc_id]
        del self._doc_lengths[doc_id]
        if terms is None:
            candidates = list(self._postings.items())
        else:
            candidates = [
                (term, self._postings[term]) for term in set(terms)
                if term in self._postings
            ]
        empty_terms = []
        for term, by_doc in candidates:
            posting = by_doc.pop(doc_id, None)
            if posting is None:
                continue
            self._posting_count -= 1
            remaining = self._collection_frequency[term] - posting.tf
            if remaining:
                self._collection_frequency[term] = remaining
            else:
                del self._collection_frequency[term]
            self._sorted.pop(term, None)
            if not by_doc:
                empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]
        self._bump_epoch()

    # -- statistics ----------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Mutation counter: bumped by every add/remove.

        Caches keyed on (index, epoch) are valid exactly while the epoch is
        unchanged — the invalidation contract of the statistics caches.
        """
        return self._epoch

    @property
    def document_count(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        """Number of distinct terms."""
        return len(self._postings)

    @property
    def posting_count(self) -> int:
        """Number of (term, document) postings (running counter, O(1))."""
        return self._posting_count

    @property
    def token_count(self) -> int:
        """Total number of indexed term occurrences (running counter, O(1))."""
        return self._token_count

    def document_length(self, doc_id: int) -> int:
        """Number of terms indexed for ``doc_id``."""
        return self._doc_lengths[doc_id]

    @property
    def average_document_length(self) -> float:
        """Mean document length (0.0 for an empty index)."""
        if not self._doc_lengths:
            return 0.0
        return self._token_count / len(self._doc_lengths)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return len(self._postings.get(term, ()))

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across all documents (O(1))."""
        return self._collection_frequency.get(term, 0)

    # -- access ----------------------------------------------------------------

    def postings(self, term: str) -> List[Posting]:
        """The postings list of ``term`` in doc-id order (empty when absent).

        The list is materialized once and cached until the term is touched
        by add/remove again; callers must treat it as read-only.
        """
        cached = self._sorted.get(term)
        if cached is not None:
            return cached
        by_doc = self._postings.get(term)
        if by_doc is None:
            return []
        ordered = [by_doc[doc_id] for doc_id in sorted(by_doc)]
        self._sorted[term] = ordered
        return ordered

    def cursor(self, term: str):
        """A :class:`~repro.irs.postings.PostingsCursor` over ``term``.

        The dict form's side of the cursor protocol: a
        :class:`~repro.irs.postings.ListCursor` over the memoized sorted
        list (None when the term is absent), with the same virtual-block
        semantics the compact form exposes natively.
        """
        # Local import: postings.py needs Posting from this module.
        from repro.irs.postings import ListCursor

        postings = self.postings(term)
        return ListCursor(postings) if postings else None

    def term_frequency(self, term: str, doc_id: int) -> int:
        """tf of ``term`` in ``doc_id`` (0 when absent)."""
        posting = self._postings.get(term, {}).get(doc_id)
        return posting.tf if posting else 0

    def positions(self, term: str, doc_id: int) -> Optional[List[int]]:
        """Positions of ``term`` in ``doc_id`` (None when absent, read-only)."""
        posting = self._postings.get(term, {}).get(doc_id)
        return posting.positions if posting else None

    def has_document(self, doc_id: int) -> bool:
        """True when ``doc_id`` is indexed."""
        return doc_id in self._doc_lengths

    def document_ids(self) -> List[int]:
        """All indexed doc ids, ascending."""
        return sorted(self._doc_lengths)

    def terms(self) -> Iterator[str]:
        """All distinct terms (unordered)."""
        return iter(self._postings)

    def document_vector(self, doc_id: int) -> Dict[str, int]:
        """term -> tf map of one document (rebuilt from postings)."""
        vector: Dict[str, int] = {}
        for term, by_doc in self._postings.items():
            posting = by_doc.get(doc_id)
            if posting is not None:
                vector[term] = posting.tf
        return vector

    # -- persistence helpers -----------------------------------------------------

    def to_payload(self) -> dict:
        """A JSON-encodable dump of the whole index."""
        return {
            "doc_lengths": {str(d): l for d, l in self._doc_lengths.items()},
            "postings": {
                term: {str(p.doc_id): p.positions for p in by_doc.values()}
                for term, by_doc in self._postings.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "InvertedIndex":
        """Inverse of :meth:`to_payload`."""
        index = cls()
        index._doc_lengths = {int(d): l for d, l in payload["doc_lengths"].items()}
        index._postings = {
            term: {
                int(doc_id): Posting(int(doc_id), list(positions))
                for doc_id, positions in by_doc.items()
            }
            for term, by_doc in payload["postings"].items()
        }
        index._token_count = sum(index._doc_lengths.values())
        index._posting_count = sum(
            len(by_doc) for by_doc in index._postings.values()
        )
        index._collection_frequency = {
            term: sum(p.tf for p in by_doc.values())
            for term, by_doc in index._postings.items()
        }
        index._epoch = 1
        return index
