"""``repro.irs`` — the information-retrieval substrate.

A from-scratch IRS standing in for INQUERY [CCH92].  As Section 1.1 of the
paper describes, the IRS administers *collections* of flat documents (lists
of words), builds inverted-list index structures stored in the file system,
and answers term queries with sets of documents and *IRS values* indicating
supposed relevance.

The engine is deliberately paradigm-exchangeable (one of the paper's main
arguments for a loose coupling): the same :class:`~repro.irs.engine.IRSEngine`
runs a boolean model, a vector-space model (TF-IDF/cosine), and a
probabilistic INQUERY-style inference model with the ``#and/#or/#sum/#max/
#wsum/#not`` belief operators.
"""

from repro.irs.engine import IRSEngine, IRSResult
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection

__all__ = ["IRSEngine", "IRSResult", "Analyzer", "IRSCollection"]
