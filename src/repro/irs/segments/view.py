"""MergedIndexView: one logical index over the segment stack.

The view exposes the full read *and* write surface of
:class:`~repro.irs.inverted_index.InvertedIndex`, so an
:class:`~repro.irs.collection.IRSCollection`, the retrieval models, the
statistics caches and the engine all run unchanged over segments:

* global counters (document/token/posting counts, average length) come
  from the manager's running live bookkeeping — O(1), integer-exact;
* ``document_frequency``/``collection_frequency`` sum each segment's O(1)
  live counters — O(#segments), integer-exact, so idf values are bit-equal
  to the monolithic index's;
* ``postings(term)`` concatenates per-segment live postings into one
  doc-id-ordered list, memoized per ``(epoch, structure)`` version so a
  term's merge cost is paid once per index generation (the segmented
  analogue of the monolithic ``_sorted`` memo);
* writes delegate to the manager (memtable append / tombstone).

Version discipline: the memo is rebuilt whenever the manager's
``(epoch, structure)`` pair moves.  Both counters only move under the
collection's write lock, and every read runs under the read lock, so a
reader can never observe a half-invalidated memo.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.irs.inverted_index import Posting
from repro.irs.postings import MergedCursor, PostingsCursor
from repro.irs.segments.manager import SegmentManager


class MergedIndexView:
    """Read/write facade with ``InvertedIndex``'s interface over segments."""

    def __init__(self, manager: SegmentManager) -> None:
        self._manager = manager
        self._memo_version: Optional[tuple] = None
        self._merged_postings: Dict[str, List[Posting]] = {}
        self._live_terms: Optional[List[str]] = None

    # -- building (delegates to the manager) -------------------------------

    def add_document(self, doc_id: int, terms: List[str]) -> None:
        self._manager.add_document(doc_id, terms)

    def remove_document(self, doc_id: int) -> None:
        self._manager.remove_document(doc_id)

    # -- versioning --------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Content generation — same invalidation contract as the
        monolithic :attr:`InvertedIndex.epoch`: unchanged scores <=>
        unchanged epoch.  Seals and merges do *not* bump it."""
        return self._manager.epoch

    def _memo(self) -> Dict[str, List[Posting]]:
        version = self._manager.version
        if self._memo_version != version:
            # Rebind (never mutate in place): a concurrent reader that
            # already fetched the old dict keeps reading consistent entries.
            self._merged_postings = {}
            self._live_terms = None
            self._memo_version = version
        return self._merged_postings

    # -- global statistics (O(1)) ------------------------------------------

    @property
    def document_count(self) -> int:
        return self._manager.document_count

    @property
    def token_count(self) -> int:
        return self._manager.token_count

    @property
    def average_document_length(self) -> float:
        count = self._manager.document_count
        if not count:
            return 0.0
        return self._manager.token_count / count

    @property
    def posting_count(self) -> int:
        manager = self._manager
        total = manager.memtable.index.posting_count
        for segment in manager.sealed_segments():
            total += segment.live_posting_count
        return total

    @property
    def term_count(self) -> int:
        return len(self._terms_memo())

    def document_length(self, doc_id: int) -> int:
        return self._manager.document_length(doc_id)

    def document_frequency(self, term: str) -> int:
        manager = self._manager
        df = manager.memtable.index.document_frequency(term)
        for segment in manager.sealed_segments():
            df += segment.document_frequency(term)
        return df

    def collection_frequency(self, term: str) -> int:
        manager = self._manager
        cf = manager.memtable.index.collection_frequency(term)
        for segment in manager.sealed_segments():
            cf += segment.collection_frequency(term)
        return cf

    # -- access ------------------------------------------------------------

    def postings(self, term: str) -> List[Posting]:
        """Live postings of ``term`` across all segments, doc-id order.

        Memoized per index version; callers must treat the list as
        read-only (same contract as ``InvertedIndex.postings``).
        """
        memo = self._memo()
        cached = memo.get(term)
        if cached is not None:
            return cached
        manager = self._manager
        lists = [
            live
            for segment in manager.sealed_segments()
            if (live := segment.live_postings(term))
        ]
        memtable_postings = manager.memtable.index.postings(term)
        if memtable_postings:
            lists.append(memtable_postings)
        if not lists:
            merged: List[Posting] = []
        elif len(lists) == 1:
            merged = lists[0]
        else:
            # Doc-id ranges of segments may interleave after merges, so a
            # plain concatenation is not enough; each input is sorted but we
            # sort the union (cheap: postings are few per term, memoized).
            merged = [p for sub in lists for p in sub]
            merged.sort(key=lambda posting: posting.doc_id)
        memo[term] = merged
        return merged

    def term_cursors(self, term: str) -> List[PostingsCursor]:
        """One live cursor per segment holding ``term`` (memtable last).

        The top-k scorer consumes these per segment — doc ids are unique
        across live segments, so scoring each segment's cursor against a
        shared heap visits every live document exactly once while keeping
        each cursor's block bounds tight.
        """
        manager = self._manager
        cursors = []
        for segment in manager.sealed_segments():
            cursor = segment.term_cursor(term)
            if cursor is not None:
                cursors.append(cursor)
        memtable_cursor = manager.memtable.term_cursor(term)
        if memtable_cursor is not None:
            cursors.append(memtable_cursor)
        return cursors

    def cursor(self, term: str) -> Optional[PostingsCursor]:
        """One doc-id-ordered :class:`PostingsCursor` over the whole stack."""
        cursors = self.term_cursors(term)
        if not cursors:
            return None
        if len(cursors) == 1:
            return cursors[0]
        return MergedCursor(cursors)

    def term_frequency(self, term: str, doc_id: int) -> int:
        segment = self._manager.segment_of(doc_id)
        if segment is None:
            return 0
        return segment.index.term_frequency(term, doc_id)

    def positions(self, term: str, doc_id: int) -> Optional[List[int]]:
        segment = self._manager.segment_of(doc_id)
        if segment is None:
            return None
        return segment.index.positions(term, doc_id)

    def has_document(self, doc_id: int) -> bool:
        return self._manager.has_document(doc_id)

    def document_ids(self) -> List[int]:
        return sorted(self._manager._doc_lengths)

    def _terms_memo(self) -> List[str]:
        self._memo()
        terms = self._live_terms
        if terms is None:
            manager = self._manager
            live = set(manager.memtable.index.terms())
            for segment in manager.sealed_segments():
                for term in segment.index.terms():
                    if term not in live and segment.document_frequency(term) > 0:
                        live.add(term)
            terms = self._live_terms = list(live)
        return terms

    def terms(self) -> Iterator[str]:
        """All distinct live terms (unordered), memoized per version."""
        return iter(self._terms_memo())

    def document_vector(self, doc_id: int) -> Dict[str, int]:
        vector = self._manager.forward_vector(doc_id)
        return dict(vector) if vector else {}

    @property
    def _doc_lengths(self) -> Dict[int, int]:
        """Live doc-id -> length map (naive reference-model compatibility)."""
        return self._manager._doc_lengths

    # -- persistence helpers -----------------------------------------------

    def to_payload(self) -> dict:
        """A monolithic-format dump of the *live* logical index.

        Lets callers that expect ``InvertedIndex.to_payload`` (compression
        experiments, ad-hoc tooling) keep working; collection persistence
        uses the per-segment format instead (see ``IRSCollection``).
        """
        return {
            "doc_lengths": {
                str(doc_id): length
                for doc_id, length in self._manager._doc_lengths.items()
            },
            "postings": {
                term: {
                    str(posting.doc_id): posting.positions
                    for posting in self.postings(term)
                }
                for term in sorted(self._terms_memo())
            },
        }
