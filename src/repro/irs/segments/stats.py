"""SegmentedStatistics: the no-rebuild-cliff statistics cache.

The monolithic :class:`~repro.irs.statistics.StatisticsCache` builds the
TF-IDF norms of *all* documents in one O(postings) sweep the first time any
norm is read — the right trade for a read-mostly index, but after every
update propagation (epoch bump) the very next vector-model query pays the
whole sweep again: the rebuild cliff this subsystem removes.

Over a segment stack the forward maps give each document's term vector in
O(|document|), so norms are computed *per document on demand* and memoized:
a query scoring k candidate documents after an update costs O(sum of their
vector sizes), not O(total postings).  df/idf/avg-dl memos are inherited
unchanged — the :class:`MergedIndexView` already serves integer-exact
global statistics, so the idf of every term is bit-identical to the
monolithic cache's, and each norm accumulates the document's terms in
**sorted order** — the canonical order every statistics implementation
uses — so norms (and therefore vector scores) are bit-identical to the
monolithic cache's, not merely within a float tolerance.  The sharded
scoring path leans on exactly this property (see DESIGN.md §"Sharded
scoring").
"""

from __future__ import annotations

import math
from typing import Dict

from repro.irs.segments.manager import SegmentManager
from repro.irs.segments.view import MergedIndexView
from repro.irs.statistics import StatisticsCache


class SegmentedStatistics(StatisticsCache):
    """Epoch-validated statistics memo with per-document lazy norms."""

    def __init__(self, view: MergedIndexView, manager: SegmentManager) -> None:
        super().__init__(view)
        self._manager = manager
        self._doc_norms: Dict[int, float] = {}

    def _validate(self) -> None:
        if self._epoch != self._index.epoch:
            self._doc_norms = {}
        super()._validate()

    def document_norm(self, doc_id: int) -> float:
        """TF-IDF norm of one document, from its forward vector.

        O(|document terms|) on a miss (idf lookups are memoized across
        documents), O(1) on a hit; 0.0 for unknown documents.
        """
        with self._lock:
            self._validate()
            cached = self._doc_norms.get(doc_id)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
            vector = self._manager.forward_vector(doc_id)
            if not vector:
                norm = 0.0
            else:
                total = 0.0
                # Sorted terms: the canonical accumulation order shared with
                # the monolithic sweep, so the norm is bit-identical to it.
                for term in sorted(vector):
                    # self.idf re-enters the RLock and shares the per-term memo.
                    weight = (1.0 + math.log(vector[term])) * self.idf(term)
                    total += weight * weight
                norm = math.sqrt(total)
            self._doc_norms[doc_id] = norm
            return norm
