"""SegmentManager: lifecycle of a collection's segment stack.

One manager per segmented collection owns:

* the mutable :class:`~repro.irs.segments.segment.MemtableSegment` plus the
  ordered list of immutable :class:`SealedSegment`\\ s;
* a *locator* (doc id -> owning segment) so point lookups and tombstoning
  never scan segments;
* shared live-document bookkeeping (``_doc_lengths``, running token count)
  that the :class:`~repro.irs.segments.view.MergedIndexView` serves as
  O(1) global statistics;
* two version counters with distinct invalidation semantics:

  - :attr:`epoch` — bumped by every *content* change (add/remove).  This is
    the counter PR 1's StatisticsCache, the engine result LRU and PR 3's
    epoch-tagged ResultSets key on, exactly as the monolithic
    ``InvertedIndex.epoch`` was.
  - :attr:`structure` — bumped by content-*preserving* reorganizations
    (sealing the memtable, committing a merge).  Scores are unchanged
    across a structure bump, so caches keyed on the epoch stay warm; only
    the view's per-term merged postings (keyed on ``(epoch, structure)``)
    are refreshed.

Locking contract: mutators (``add_document``, ``remove_document``,
``seal``, ``compact``, ``commit_merge``) require the collection's write
lock; ``begin_merge`` requires at least the read lock (it snapshots
tombstones); ``SealedSegment.merged`` building runs lock-free on immutable
inputs.  The manager itself only carries a tiny admin mutex for the
single-merge-in-flight flag.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Union

from repro import obs
from repro.irs.segments.segment import (
    MemtableSegment,
    SealedSegment,
    SegmentConfig,
)

Segment = Union[MemtableSegment, SealedSegment]


@dataclass
class MergePlan:
    """A merge in flight: chosen inputs plus their tombstone snapshots."""

    segment_id: int
    segments: List[SealedSegment]
    snapshots: List[Set[int]] = field(default_factory=list)

    def build(self) -> SealedSegment:
        """Fold the inputs into one segment; runs without any lock."""
        return SealedSegment.merged(self.segment_id, self.segments, self.snapshots)


class SegmentManager:
    """Owns one collection's memtable, sealed segments and merge state."""

    def __init__(self, name: str, config: Optional[SegmentConfig] = None) -> None:
        self.name = name
        self.config = config or SegmentConfig()
        self._memtable = MemtableSegment(0)
        self._sealed: List[SealedSegment] = []
        self._next_segment_id = 1
        self._locator: Dict[int, Segment] = {}
        #: Live documents only; shared with the view (and, via the view's
        #: ``_doc_lengths`` property, with the naive reference models).
        self._doc_lengths: Dict[int, int] = {}
        self._token_count = 0
        self._epoch = 0
        self._structure = 0
        self._batch_depth = 0
        self._batch_dirty = False
        #: Guards the one-merge-in-flight flag (begin may run under a read
        #: lock, so two planners could race without it).
        self._admin_lock = threading.Lock()
        self._merging = False
        self.seals = 0
        self.merges = 0
        self.tombstones_purged = 0

    # -- versions ---------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Content generation: the cache-invalidation counter."""
        return self._epoch

    @property
    def structure(self) -> int:
        """Reorganization generation (seal/merge); content-preserving."""
        return self._structure

    @property
    def version(self) -> tuple:
        return (self._epoch, self._structure)

    def _bump_epoch(self) -> None:
        if self._batch_depth:
            self._batch_dirty = True
        else:
            self._epoch += 1

    @contextmanager
    def batched_epoch(self) -> Iterator[None]:
        """Coalesce the epoch bumps of a write batch into one.

        Used by the engine's ``bulk_mutating`` so a propagation window of N
        pending updates invalidates downstream caches once, not N times.
        Requires the collection write lock (like every mutator).
        """
        self._batch_depth += 1
        try:
            yield
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0 and self._batch_dirty:
                self._batch_dirty = False
                self._epoch += 1

    # -- write path (collection write lock held) --------------------------

    def add_document(self, doc_id: int, terms: List[str]) -> None:
        if doc_id in self._doc_lengths:
            raise ValueError(f"document {doc_id} already indexed")
        self._memtable.add_document(doc_id, terms)
        self._locator[doc_id] = self._memtable
        self._doc_lengths[doc_id] = len(terms)
        self._token_count += len(terms)
        self._bump_epoch()
        self._maybe_seal()

    def remove_document(self, doc_id: int) -> None:
        segment = self._locator.pop(doc_id, None)
        if segment is None:
            raise KeyError(doc_id)
        if segment is self._memtable:
            segment.remove_document(doc_id)
        else:
            segment.tombstone(doc_id)
            obs.metrics().counter("irs.segments.tombstones").inc()
        self._token_count -= self._doc_lengths.pop(doc_id)
        self._bump_epoch()

    def _maybe_seal(self) -> None:
        memtable = self._memtable
        if (
            memtable.document_count >= self.config.seal_document_count
            or memtable.token_count >= self.config.seal_token_count
        ):
            self.seal()

    def seal(self) -> Optional[SealedSegment]:
        """Freeze the memtable into a sealed segment; start a fresh one.

        Content-preserving: bumps :attr:`structure`, not :attr:`epoch`.
        Returns the new sealed segment, or None when the memtable is empty.
        """
        if not self._memtable.document_count:
            return None
        sealed = self._memtable.seal()
        self._sealed.append(sealed)
        for doc_id in sealed.forward:
            self._locator[doc_id] = sealed
        self._memtable = MemtableSegment(self._next_segment_id)
        self._next_segment_id += 1
        self._structure += 1
        self.seals += 1
        registry = obs.metrics()
        registry.counter("irs.segments.sealed").inc()
        registry.gauge("irs.segments.count." + self.name).set(self.segment_count)
        registry.gauge("irs.segments.memtable_docs." + self.name).set(0)
        return sealed

    # -- read-side accessors (collection read lock held) -------------------

    @property
    def memtable(self) -> MemtableSegment:
        return self._memtable

    def sealed_segments(self) -> List[SealedSegment]:
        return self._sealed

    @property
    def segment_count(self) -> int:
        """Live segments: sealed ones plus the memtable when non-empty."""
        return len(self._sealed) + (1 if self._memtable.document_count else 0)

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def token_count(self) -> int:
        return self._token_count

    def document_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id]

    def has_document(self, doc_id: int) -> bool:
        return doc_id in self._doc_lengths

    def segment_of(self, doc_id: int) -> Optional[Segment]:
        """The segment holding the *live* ``doc_id`` (None when absent)."""
        return self._locator.get(doc_id)

    def forward_vector(self, doc_id: int) -> Optional[Dict[str, int]]:
        """The live ``{term: tf}`` vector of ``doc_id`` (not a copy)."""
        segment = self._locator.get(doc_id)
        if segment is None:
            return None
        return segment.forward.get(doc_id)

    def tombstone_count(self) -> int:
        return sum(len(segment.tombstones) for segment in self._sealed)

    def tombstone_ratio(self) -> float:
        physical = len(self._doc_lengths) + self.tombstone_count()
        return self.tombstone_count() / physical if physical else 0.0

    def info(self) -> Dict[str, object]:
        """One observability snapshot (shell ``.stats``, engine info)."""
        return {
            "segments": self.segment_count,
            "sealed": len(self._sealed),
            "memtable_documents": self._memtable.document_count,
            "memtable_tokens": self._memtable.token_count,
            "documents": len(self._doc_lengths),
            "tombstones": self.tombstone_count(),
            "tombstone_ratio": round(self.tombstone_ratio(), 4),
            "sealed_postings_bytes": sum(
                segment.postings_bytes() for segment in self._sealed
            ),
            "epoch": self._epoch,
            "structure": self._structure,
            "seals": self.seals,
            "merges": self.merges,
            "tombstones_purged": self.tombstones_purged,
        }

    # -- persistence -------------------------------------------------------

    def load_sealed(self, entry: dict) -> SealedSegment:
        """Register one persisted segment (collection load path only)."""
        segment = SealedSegment.from_payload(self._next_segment_id, entry)
        self._next_segment_id += 1
        self._sealed.append(segment)
        for doc_id in segment.forward:
            self._locator[doc_id] = segment
            self._doc_lengths[doc_id] = segment.index.document_length(doc_id)
        self._token_count += segment.live_token_count
        self._structure += 1
        self._epoch = 1
        return segment

    # -- merging -----------------------------------------------------------

    def begin_merge(self, segments: Sequence[SealedSegment]) -> Optional[MergePlan]:
        """Claim a merge over ``segments`` and snapshot their tombstones.

        Requires at least the collection read lock (writers are excluded,
        so the snapshots are consistent).  Returns None when another merge
        is already in flight or a candidate is no longer registered.
        """
        with self._admin_lock:
            if self._merging or not segments:
                return None
            if any(segment not in self._sealed for segment in segments):
                return None
            self._merging = True
            plan = MergePlan(self._next_segment_id, list(segments))
            self._next_segment_id += 1
        plan.snapshots = [set(segment.tombstones) for segment in plan.segments]
        return plan

    def commit_merge(self, plan: MergePlan, merged: SealedSegment) -> None:
        """Swap the merged segment in (collection write lock held).

        Documents tombstoned on an input *after* the snapshot are physically
        present in ``merged``; they are re-tombstoned here so no deletion is
        lost, then the inputs are spliced out at the position of the first.
        """
        try:
            purged = 0
            for segment, snapshot in zip(plan.segments, plan.snapshots):
                purged += len(snapshot)
                for doc_id in segment.tombstones - snapshot:
                    merged.tombstone(doc_id)
            position = self._sealed.index(plan.segments[0])
            retained = [s for s in self._sealed if s not in plan.segments]
            retained.insert(min(position, len(retained)), merged)
            self._sealed = retained
            for doc_id in merged.forward:
                self._locator[doc_id] = merged
            self._structure += 1
            self.merges += 1
            self.tombstones_purged += purged
            registry = obs.metrics()
            registry.counter("irs.segments.merges").inc()
            registry.counter("irs.segments.merged_inputs").inc(len(plan.segments))
            registry.counter("irs.segments.tombstones_purged").inc(purged)
            registry.gauge("irs.segments.count." + self.name).set(self.segment_count)
        finally:
            with self._admin_lock:
                self._merging = False

    def abort_merge(self, plan: MergePlan) -> None:
        with self._admin_lock:
            self._merging = False

    def compact(self) -> bool:
        """Seal and fold everything into one tombstone-free segment.

        Requires the collection write lock.  Returns True when a merge
        happened.  A no-op (False) when there is nothing to fold or a
        background merge holds the in-flight flag.
        """
        self.seal()
        if not self._sealed:
            return False
        if len(self._sealed) == 1 and not self._sealed[0].tombstones:
            return False
        plan = self.begin_merge(list(self._sealed))
        if plan is None:
            return False
        merged = plan.build()
        self.commit_merge(plan, merged)
        return True
