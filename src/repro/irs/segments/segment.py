"""Segments: the building blocks of the log-structured index.

A segmented collection's postings live in a stack of segments instead of
one monolithic :class:`~repro.irs.inverted_index.InvertedIndex`:

* :class:`MemtableSegment` — the single mutable in-memory segment.  All
  writes (indexObjects, update propagation) land here; removal is physical
  because the memtable is small.
* :class:`SealedSegment` — an immutable segment produced by sealing a full
  memtable (or by merging).  Its postings never change; deletion is logical
  via :meth:`SealedSegment.tombstone`, which records per-term dead
  document/collection frequencies so merged statistics stay integer-exact
  without rescanning postings.

Both keep a *forward map* (doc id -> term -> tf) alongside the inverted
postings.  The forward map makes tombstoning O(|document|) instead of
O(vocabulary), lets the statistics layer compute one document's norm
without sweeping every postings list, and is what a merge reads to carry
live documents into the merged segment.

Everything here is lock-free by design: callers synchronize through the
engine's per-collection :class:`~repro.sync.ReadWriteLock` (see
:mod:`repro.irs.segments.manager` for the locking contract of each call).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.irs.inverted_index import InvertedIndex, Posting
from repro.irs.postings import (
    CompactIndex,
    ListCursor,
    PostingsCursor,
)


@dataclass(frozen=True)
class SegmentConfig:
    """Tuning knobs of the segmented index (documented in docs/api.md).

    The defaults are sized for this reproduction's corpora (hundreds to a
    few tens of thousands of short documents): the memtable seals at 1024
    documents or 256k tokens, and the size-tiered merge policy folds a tier
    once ``tier_fanout`` segments of similar size have accumulated.
    """

    #: When False the engine builds monolithic collections (the pre-segment
    #: behavior); kept as an escape hatch and as the benchmark baseline.
    enabled: bool = True
    #: Seal the memtable once it holds this many documents ...
    seal_document_count: int = 1024
    #: ... or this many tokens, whichever comes first.
    seal_token_count: int = 262_144
    #: A size tier is ``floor(log_fanout(live_docs))``; a tier with this many
    #: segments is merged into one.
    tier_fanout: int = 4
    #: Upper bound on segments folded by a single merge.
    max_merge_segments: int = 10
    #: A sealed segment whose tombstone ratio reaches this is rewritten
    #: (merged alone) even when its size tier is not full.
    tombstone_purge_ratio: float = 0.25
    #: Background scheduler: seconds between merge scans.
    merge_interval_seconds: float = 0.05
    #: Background scheduler: per-collection merge time budget per scan.
    merge_budget_seconds: float = 0.25


def _forward_from_index(index) -> Dict[int, Dict[str, int]]:
    """Rebuild the forward map from an index's postings.

    For the compact form this is one decode sweep; for the dict form it
    reads ``_postings`` directly (same private-access idiom as
    :mod:`repro.irs.compression`) to avoid materializing sorted postings
    lists as a side effect.
    """
    if isinstance(index, CompactIndex):
        return index.forward_map()
    forward: Dict[int, Dict[str, int]] = {doc_id: {} for doc_id in index._doc_lengths}
    for term, by_doc in index._postings.items():
        for doc_id, posting in by_doc.items():
            forward[doc_id][term] = posting.tf
    return forward


def _live_entries(
    segment: "SealedSegment", term: str, dead: Set[int]
) -> Iterator[tuple]:
    """``(doc_id, tf, positions)`` of one input's live postings, doc order."""
    index = segment.index
    if isinstance(index, CompactIndex):
        compact = index.compact_postings(term)
        if compact is None:
            return
        for entry in compact.iter_entries():
            if entry[0] not in dead:
                yield entry
    else:
        for posting in index.postings(term):
            if posting.doc_id not in dead:
                yield posting.doc_id, posting.tf, posting.positions


class MemtableSegment:
    """The mutable in-memory segment absorbing all writes."""

    __slots__ = ("segment_id", "index", "forward")

    def __init__(self, segment_id: int) -> None:
        self.segment_id = segment_id
        self.index = InvertedIndex()
        #: doc id -> {term: tf}; maintained incrementally on add/remove.
        self.forward: Dict[int, Dict[str, int]] = {}

    def add_document(self, doc_id: int, terms: List[str]) -> None:
        self.index.add_document(doc_id, terms)
        vector: Dict[str, int] = {}
        for term in terms:
            vector[term] = vector.get(term, 0) + 1
        self.forward[doc_id] = vector

    def remove_document(self, doc_id: int) -> None:
        """Physical removal: the memtable is the one segment that can."""
        vector = self.forward.pop(doc_id)
        self.index.remove_document(doc_id, terms=list(vector))

    @property
    def document_count(self) -> int:
        return self.index.document_count

    @property
    def token_count(self) -> int:
        return self.index.token_count

    def approx_bytes(self) -> int:
        """Rough heap footprint of the dict-form memtable, for health reports.

        Dict-form postings cost a posting object (~64 B) plus its inverted-
        and forward-map slots (~2 dict entries, ~70 B) per token occurrence,
        and per-document overhead (forward vector dict, length entry).  A
        coarse constant-factor model — the point is the trend (memtable
        growth between seals), not an exact byte count.
        """
        return 144 * self.index.posting_count + 96 * self.index.document_count

    def term_cursor(self, term: str) -> Optional[PostingsCursor]:
        """A cursor over this memtable's postings of ``term`` (dict form)."""
        postings = self.index.postings(term)
        return ListCursor(postings) if postings else None

    def seal(self) -> "SealedSegment":
        """Freeze this memtable into a sealed segment.

        The handover re-encodes the memtable's dict postings into the
        compact block form — O(memtable tokens) once per sealed segment,
        amortized across the writes that filled it.
        """
        compact = CompactIndex.from_inverted(self.index)
        return SealedSegment(self.segment_id, compact, self.forward)


class SealedSegment:
    """An immutable segment: frozen postings plus tombstone bookkeeping.

    Postings and document lengths never change after sealing; deletion is
    recorded in :attr:`tombstones` and in per-term dead-frequency counters,
    so live df/cf/posting counts are O(1) subtractions.  The forward map
    holds exactly the *live* documents (a tombstone pops its entry after
    charging the counters).

    The index is normally a :class:`~repro.irs.postings.CompactIndex`
    (block postings — sealing and merging both emit that form natively);
    an :class:`InvertedIndex` is still accepted so hand-built segments in
    tests and legacy call sites keep working, with every read going
    through the shared index surface.
    """

    __slots__ = (
        "segment_id",
        "index",
        "forward",
        "tombstones",
        "dead_documents",
        "dead_tokens",
        "_dead_df",
        "_dead_cf",
        "_dead_postings",
        "store_stamp",
    )

    def __init__(
        self,
        segment_id: int,
        index: InvertedIndex,
        forward: Dict[int, Dict[str, int]],
    ) -> None:
        self.segment_id = segment_id
        self.index = index
        self.forward = forward
        self.tombstones: Set[int] = set()
        self.dead_documents = 0
        self.dead_tokens = 0
        self._dead_df: Dict[str, int] = {}
        self._dead_cf: Dict[str, int] = {}
        self._dead_postings = 0
        #: ``(store_token, offset, length)`` of this segment's record in the
        #: single-file store, set by the store on write or load.  Postings
        #: are immutable, so a stamped segment is never written again —
        #: the incremental-checkpoint invariant (tombstones travel in the
        #: manifest, not in the segment record).
        self.store_stamp = None

    # -- deletion ---------------------------------------------------------

    def tombstone(self, doc_id: int) -> None:
        """Logically delete ``doc_id``: O(|document terms|), no index edit."""
        vector = self.forward.pop(doc_id)
        self.tombstones.add(doc_id)
        self.dead_documents += 1
        self.dead_tokens += self.index.document_length(doc_id)
        self._dead_postings += len(vector)
        for term, tf in vector.items():
            self._dead_df[term] = self._dead_df.get(term, 0) + 1
            self._dead_cf[term] = self._dead_cf.get(term, 0) + tf

    def is_live(self, doc_id: int) -> bool:
        return doc_id in self.forward

    # -- live statistics (exact, O(1) per term) ---------------------------

    @property
    def live_document_count(self) -> int:
        return self.index.document_count - self.dead_documents

    @property
    def live_token_count(self) -> int:
        return self.index.token_count - self.dead_tokens

    @property
    def live_posting_count(self) -> int:
        return self.index.posting_count - self._dead_postings

    @property
    def tombstone_ratio(self) -> float:
        physical = self.index.document_count
        return self.dead_documents / physical if physical else 0.0

    def document_frequency(self, term: str) -> int:
        df = self.index.document_frequency(term) - self._dead_df.get(term, 0)
        return df if df > 0 else 0

    def collection_frequency(self, term: str) -> int:
        cf = self.index.collection_frequency(term) - self._dead_cf.get(term, 0)
        return cf if cf > 0 else 0

    def live_postings(self, term: str) -> List[Posting]:
        """Postings of ``term`` restricted to live documents, doc-id order."""
        postings = self.index.postings(term)
        if not self._dead_df.get(term):
            return postings
        return [p for p in postings if p.doc_id in self.forward]

    def term_cursor(self, term: str) -> Optional[PostingsCursor]:
        """A :class:`PostingsCursor` over the live postings of ``term``.

        On the compact form this touches only block metadata up front —
        no decoding until the scorer asks for a document.  The live filter
        (this segment's forward map) is attached only when the term
        actually has tombstoned documents, so the common path stays
        branch-free.
        """
        index = self.index
        if isinstance(index, CompactIndex):
            compact = index.compact_postings(term)
            if compact is None:
                return None
            live = self.forward if self._dead_df.get(term) else None
            return compact.cursor(live)
        postings = self.live_postings(term)
        return ListCursor(postings) if postings else None

    def postings_bytes(self) -> int:
        """Bytes of this segment's postings representation."""
        index = self.index
        if isinstance(index, CompactIndex):
            return index.postings_bytes()
        from repro.irs.compression import compressed_size

        return compressed_size(index)

    # -- persistence ------------------------------------------------------

    def to_payload(self) -> dict:
        """Physical index plus the tombstone list (replayed on load)."""
        return {
            "index": self.index.to_payload(),
            "tombstones": sorted(self.tombstones),
        }

    @classmethod
    def from_payload(cls, segment_id: int, payload: dict) -> "SealedSegment":
        # Payloads are representation-neutral (the logical schema of
        # ``InvertedIndex.to_payload``); loading encodes straight into the
        # compact block form.
        index = CompactIndex.from_payload(payload["index"])
        segment = cls(segment_id, index, _forward_from_index(index))
        for doc_id in payload.get("tombstones", ()):
            segment.tombstone(int(doc_id))
        return segment

    # -- merging ----------------------------------------------------------

    @classmethod
    def merged(
        cls,
        segment_id: int,
        segments: Sequence["SealedSegment"],
        dead_sets: Sequence[Iterable[int]],
    ) -> "SealedSegment":
        """Fold ``segments`` into one, dropping the docs in ``dead_sets``.

        ``dead_sets[i]`` is the tombstone *snapshot* of ``segments[i]`` taken
        when the merge began; documents tombstoned after the snapshot are
        re-tombstoned on the merged segment at commit (see
        ``SegmentManager.commit_merge``).  Reads only the inputs' physical
        structures, which are immutable, so it runs without any lock.

        Build-once: live entries stream per term straight from the inputs'
        blocks through a k-way merge into the output's
        :class:`~repro.irs.postings.CompactPostingsBuilder` — no
        dict-of-Posting intermediate is ever materialized.
        """
        dead_sets = [set(dead) for dead in dead_sets]
        doc_lengths: Dict[int, int] = {}
        forward: Dict[int, Dict[str, int]] = {}
        for segment, dead in zip(segments, dead_sets):
            for doc_id, length in segment.index._doc_lengths.items():
                if doc_id not in dead:
                    doc_lengths[doc_id] = length
                    forward[doc_id] = {}
        all_terms: Set[str] = set()
        for segment in segments:
            all_terms.update(segment.index.terms())

        def entries_of(term: str) -> Iterator[tuple]:
            # Doc-id ranges may interleave after earlier merges, so the
            # per-segment sorted streams go through a k-way heap merge.
            streams = [
                _live_entries(segment, term, dead)
                for segment, dead in zip(segments, dead_sets)
            ]
            for doc_id, tf, positions in heapq.merge(*streams):
                forward[doc_id][term] = tf
                yield doc_id, tf, positions

        merged_index = CompactIndex.from_entry_streams(
            ((term, entries_of(term)) for term in all_terms), doc_lengths
        )
        return cls(segment_id, merged_index, forward)
