"""Size-tiered merge policy and the background merge scheduler.

Policy (:func:`select_candidates`): sealed segments are bucketed into size
tiers by ``floor(log_fanout(live_docs))``; once a tier accumulates
``tier_fanout`` segments they are folded into one (oldest tier first, at
most ``max_merge_segments`` per merge).  Independently, a segment whose
tombstone ratio reaches ``tombstone_purge_ratio`` is rewritten alone to
reclaim its dead postings.

Scheduler (:class:`MergeScheduler`): a daemon thread that scans every
segmented collection each ``merge_interval_seconds`` and runs merges within
a per-collection time budget.  It obeys the PR 3 lock ordering contract
(:mod:`repro.sync`) and is *cooperative*:

1. snapshot phase — a brief read-lock hold claims the merge and snapshots
   tombstones (``begin_merge``);
2. build phase — the merged segment is assembled with **no lock held**;
   inputs are immutable, so queries and update propagation proceed
   untouched;
3. commit phase — the splice is attempted with a *non-blocking* write
   acquire first, yielding to foreground writers, then falls back to a
   blocking acquire (the splice itself is O(live docs of the merged
   segment) dict updates, far below any query).

The scheduler never holds a database lock, so taking a collection lock
from its thread cannot create a cross-system cycle.
"""

from __future__ import annotations

import logging
import math
import threading
import time
from typing import List, Optional

from repro import obs
from repro.errors import UnknownCollectionError
from repro.irs.postings import CompactIndex
from repro.irs.segments.manager import SegmentManager
from repro.irs.segments.segment import SealedSegment

logger = logging.getLogger(__name__)


def select_candidates(manager: SegmentManager) -> List[SealedSegment]:
    """Pick the next set of sealed segments to fold (empty when none)."""
    config = manager.config
    sealed = manager.sealed_segments()
    if not sealed:
        return []
    tiers: dict = {}
    for segment in sealed:
        live = max(1, segment.live_document_count)
        tier = int(math.log(live, config.tier_fanout))
        tiers.setdefault(tier, []).append(segment)
    for tier in sorted(tiers):
        group = tiers[tier]
        if len(group) >= config.tier_fanout:
            return group[: config.max_merge_segments]
    for segment in sealed:
        if (
            segment.dead_documents
            and segment.tombstone_ratio >= config.tombstone_purge_ratio
        ):
            return [segment]
    return []


class MergeScheduler:
    """Background size-tiered merging across an engine's collections."""

    def __init__(self, engine, interval: Optional[float] = None) -> None:
        self._engine = engine
        self._interval = (
            interval
            if interval is not None
            else engine.segment_config.merge_interval_seconds
        )
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="irs-merge-scheduler", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:  # pragma: no cover - defensive: keep the daemon alive
                logger.exception("background merge pass failed")
            self._stop.wait(self._interval)

    # -- one pass ----------------------------------------------------------

    def run_once(self) -> int:
        """Scan all collections and merge within budget; returns #merges."""
        merges = 0
        for name in self._engine.collection_names():
            if self._stop.is_set():
                break
            merges += self._merge_collection(name)
        return merges

    def _merge_collection(self, name: str) -> int:
        try:
            collection = self._engine.collection(name)
        except UnknownCollectionError:
            return 0
        # A sharded collection owns one manager per shard; all of them
        # serialize on the *parent* collection's lock (shard mutations
        # only ever happen under it), so the commit contract is unchanged.
        merges = 0
        for manager in collection.segment_managers():
            deadline = time.monotonic() + manager.config.merge_budget_seconds
            while not self._stop.is_set():
                candidates = select_candidates(manager)
                if not candidates:
                    break
                if not self._merge_once(name, manager, candidates):
                    break
                merges += 1
                if time.monotonic() >= deadline:
                    break
        return merges

    def _merge_once(
        self, name: str, manager: SegmentManager, candidates: List[SealedSegment]
    ) -> bool:
        rwlock = self._engine.rwlock(name)
        with rwlock.reading():
            plan = manager.begin_merge(candidates)
        if plan is None:
            return False
        started = time.perf_counter()
        try:
            with obs.tracer().span(
                "irs.segments.merge", collection=name, inputs=len(plan.segments)
            ) as span:
                merged = plan.build()
                span.set_attribute("documents", merged.live_document_count)
                span.set_attribute(
                    "representation",
                    "compact" if isinstance(merged.index, CompactIndex) else "dict",
                )
                span.set_attribute("postings_bytes", merged.postings_bytes())
                self._commit(rwlock, manager, plan, merged)
        except BaseException:
            manager.abort_merge(plan)
            raise
        elapsed = time.perf_counter() - started
        obs.metrics().histogram("irs.segments.merge_seconds").observe(elapsed)
        obs.slow_log().record(
            "merge", f"segments:{name}", elapsed, collection=name,
            inputs=len(plan.segments),
        )
        return True

    def _commit(self, rwlock, manager, plan, merged) -> None:
        """Cooperative commit: poll non-blocking first, then block.

        A busy foreground writer (propagation window) always wins the poll;
        the blocking fallback bounds scheduler latency once traffic pauses.
        """
        poll_deadline = time.monotonic() + 0.25
        while time.monotonic() < poll_deadline and not self._stop.is_set():
            if rwlock.acquire_write_nowait():
                try:
                    manager.commit_merge(plan, merged)
                finally:
                    rwlock.release_write()
                return
            obs.metrics().counter("irs.segments.merge_commit_yields").inc()
            time.sleep(0.001)
        with rwlock.writing():
            manager.commit_merge(plan, merged)
