"""Segmented log-structured index subsystem.

A segmented collection stores its postings as a stack of segments — one
mutable in-memory memtable absorbing all writes, plus immutable sealed
segments with tombstones for logical deletion — served to the retrieval
models through a :class:`MergedIndexView` that is interface-compatible with
the monolithic :class:`~repro.irs.inverted_index.InvertedIndex`.  A
size-tiered background :class:`MergeScheduler` folds sealed segments and
purges tombstones without blocking queries.  See DESIGN.md §"Segmented
indexing" for the lifecycle and epoch semantics.
"""

from repro.irs.segments.manager import MergePlan, SegmentManager
from repro.irs.segments.merge import MergeScheduler, select_candidates
from repro.irs.segments.segment import MemtableSegment, SealedSegment, SegmentConfig
from repro.irs.segments.stats import SegmentedStatistics
from repro.irs.segments.view import MergedIndexView

__all__ = [
    "MemtableSegment",
    "MergePlan",
    "MergeScheduler",
    "MergedIndexView",
    "SealedSegment",
    "SegmentConfig",
    "SegmentManager",
    "SegmentedStatistics",
    "select_candidates",
]
