"""ShardedCollection: one logical collection over N shard sub-collections.

Each shard is an ordinary :class:`~repro.irs.collection.IRSCollection`
(usually segmented, so every shard keeps its own memtable/seal/merge
lifecycle) named ``<name>#<i>``.  Documents route by CRC-32 of their OID
(:mod:`repro.irs.shards.router`), reads go through the
:class:`~repro.irs.shards.view.ShardUnionView`, and statistics through
:class:`~repro.irs.shards.stats.ShardStatistics` — both globally exact,
so every scoring path (exhaustive, pruned, scattered) produces scores
bit-identical to an unsharded collection holding the same documents.

The collection also supplies the top-k scorer's source hooks
(:meth:`topk_sources` / :meth:`topk_version`) — inline top-k then runs
all shards' segments against one shared heap, raising the MaxScore
threshold across shard boundaries — and per-shard scoring adapters the
scatter path's inline failover uses.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from typing import Dict, Iterator, List, Optional

from repro.errors import DocumentMissingError
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection, IRSDocument
from repro.irs.inverted_index import InvertedIndex
from repro.irs.segments import SealedSegment, SegmentConfig, SegmentManager
from repro.irs.shards.router import routing_key, shard_of
from repro.irs.shards.stats import ShardStatistics
from repro.irs.shards.view import ShardUnionView


class _ShardScoringAdapter:
    """One shard's postings under the parent's global statistics.

    Fed to :func:`repro.irs.topk.topk_scores` when a scatter worker fails
    and its shard must be re-scored inline: the sources are the shard's
    own segments, but analyzer, statistics and index are the parent's —
    the same global values the worker replica computed with, so the
    fallback's floats match the lost worker's bit for bit.

    The adapter is long-lived (one per shard, memoized on the parent) so
    the impact caches the top-k scorer hangs off it stay warm across
    failovers; they key on the parent's full version tuple because
    impacts depend on *global* statistics, not just this shard's content.
    """

    def __init__(self, parent: "ShardedCollection", shard_index: int) -> None:
        self._parent = parent
        self._shard_index = shard_index
        self.segments = None  # unused: topk_sources below wins

    @property
    def analyzer(self) -> Analyzer:
        return self._parent.analyzer

    @property
    def stats(self) -> ShardStatistics:
        return self._parent.stats

    @property
    def index(self) -> ShardUnionView:
        return self._parent.index

    def topk_sources(self) -> list:
        shard = self._parent.shards[self._shard_index]
        if shard.segments is not None:
            return [*shard.segments.sealed_segments(), shard.segments.memtable]
        return [shard.index]

    def topk_version(self) -> tuple:
        return self._parent.topk_version()


class ShardedCollection(IRSCollection):
    """A hash-partitioned collection with exact global statistics."""

    def __init__(
        self,
        name: str,
        analyzer: Optional[Analyzer] = None,
        segment_config: Optional[SegmentConfig] = None,
        shard_count: int = 2,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        # The parent holds no physical index of its own: skip the base
        # class's segment setup and install the union view instead.
        super().__init__(name, analyzer, segment_config=None)
        self.shard_count = shard_count
        self.shards: List[IRSCollection] = [
            IRSCollection(f"{name}#{i}", self.analyzer, segment_config=segment_config)
            for i in range(shard_count)
        ]
        self._doc_shard: Dict[int, int] = {}
        self.index = ShardUnionView(self)
        self._adapters: Dict[int, _ShardScoringAdapter] = {}
        self._adapters_lock = threading.Lock()
        self._global_stats_memo: Optional[tuple] = None

    # -- routing ------------------------------------------------------------

    def shard_index_of(self, doc_id: int) -> Optional[int]:
        """The shard index owning ``doc_id`` (None if unknown)."""
        return self._doc_shard.get(doc_id)

    def shard_for(self, doc_id: int) -> Optional[IRSCollection]:
        """The shard sub-collection owning ``doc_id`` (None if unknown)."""
        shard_index = self._doc_shard.get(doc_id)
        if shard_index is None:
            return None
        return self.shards[shard_index]

    def forward_vector(self, doc_id: int) -> Dict[str, int]:
        """``term -> tf`` of one live document, from its owning shard."""
        shard = self.shard_for(doc_id)
        if shard is None:
            return {}
        if shard.segments is not None:
            vector = shard.segments.forward_vector(doc_id)
            return dict(vector) if vector else {}
        return shard.index.document_vector(doc_id)

    # -- statistics ----------------------------------------------------------

    @property
    def stats(self) -> ShardStatistics:
        with self._stats_lock:
            cache = self._stats
            if cache is None or cache.index is not self.index:
                cache = ShardStatistics(self.index, self)
                self._stats = cache
            return cache

    # -- segment plumbing ----------------------------------------------------

    @property
    def segment_count(self) -> int:
        return sum(shard.segment_count for shard in self.shards)

    def segment_managers(self) -> List[SegmentManager]:
        return [
            shard.segments for shard in self.shards if shard.segments is not None
        ]

    @contextmanager
    def batched_epoch(self) -> Iterator[None]:
        with ExitStack() as stack:
            for shard in self.shards:
                stack.enter_context(shard.batched_epoch())
            yield

    def compact(self) -> bool:
        compacted = [shard.compact() for shard in self.shards]
        return any(compacted)

    # -- top-k scorer hooks --------------------------------------------------

    def topk_sources(self) -> list:
        """Every shard's scoring units, flattened into one source list.

        The inline top-k path runs them against one shared heap, so the
        MaxScore threshold raises across shard boundaries exactly as it
        does across one collection's segments.
        """
        sources: list = []
        for shard in self.shards:
            if shard.segments is not None:
                sources.extend(shard.segments.sealed_segments())
                sources.append(shard.segments.memtable)
            else:
                sources.append(shard.index)
        return sources

    def topk_version(self) -> tuple:
        """Per-shard ``(epoch, structure)`` tuple — the union's version.

        Includes structure, because a shard sealing or merging relocates
        postings between sources even though no content changed.
        """
        return tuple(
            shard.segments.version
            if shard.segments is not None
            else (shard.index.epoch,)
            for shard in self.shards
        )

    def scoring_adapter(self, shard_index: int) -> _ShardScoringAdapter:
        """The (memoized) single-shard scoring adapter for failover."""
        with self._adapters_lock:
            adapter = self._adapters.get(shard_index)
            if adapter is None:
                adapter = _ShardScoringAdapter(self, shard_index)
                self._adapters[shard_index] = adapter
            return adapter

    def shard_global_stats(self) -> dict:
        """The union statistics a worker replica needs, memoized per version.

        ``document_count``/``token_count`` feed the global average document
        length; the ``df`` table covers *every* union term so a replica
        computes the same idf for a query term its own shard never saw.
        All integers — the replica's floats derive from them exactly.
        """
        version = self.topk_version()
        memo = self._global_stats_memo
        if memo is not None and memo[0] == version:
            return memo[1]
        index = self.index
        payload = {
            "document_count": index.document_count,
            "token_count": index.token_count,
            "df": {term: index.document_frequency(term) for term in index.terms()},
        }
        self._global_stats_memo = (version, payload)
        return payload

    def shard_document_counts(self) -> List[int]:
        """Live documents per shard (for skew reporting in ``health()``)."""
        return [shard.index.document_count for shard in self.shards]

    # -- document management -------------------------------------------------

    def _ingest(self, document: IRSDocument) -> int:
        shard_index = shard_of(
            routing_key(document.metadata, document.doc_id), self.shard_count
        )
        shard = self.shards[shard_index]
        self._documents[document.doc_id] = document
        shard._documents[document.doc_id] = document
        shard.index.add_document(
            document.doc_id, self.analyzer.tokens(document.text)
        )
        self._doc_shard[document.doc_id] = shard_index
        return shard_index

    def add_document(
        self, text: str, metadata: Optional[Dict[str, str]] = None
    ) -> int:
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        self._ingest(IRSDocument(doc_id, text, dict(metadata or {})))
        return doc_id

    def remove_document(self, doc_id: int) -> None:
        if doc_id not in self._documents:
            raise DocumentMissingError(
                f"document {doc_id} not in collection {self.name!r}"
            )
        shard_index = self._doc_shard.pop(doc_id)
        shard = self.shards[shard_index]
        del self._documents[doc_id]
        shard._documents.pop(doc_id, None)
        shard.index.remove_document(doc_id)

    def replace_document(self, doc_id: int, text: str) -> None:
        if doc_id not in self._documents:
            raise DocumentMissingError(
                f"document {doc_id} not in collection {self.name!r}"
            )
        # The routing key (OID, else doc id) is stable under re-indexing,
        # so the document stays on its shard.
        document = self._documents[doc_id]
        shard = self.shards[self._doc_shard[doc_id]]
        shard.index.remove_document(doc_id)
        document.text = text
        document.revision += 1
        shard.index.add_document(doc_id, self.analyzer.tokens(text))

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict:
        """Per-shard dump: documents at the top, one entry per shard.

        Each shard entry uses the same ``"index"``/``"segments"`` shapes
        an unsharded collection dumps, so either format cross-loads into
        the other (see :meth:`from_payload` and
        ``IRSCollection.from_payload``).
        """
        payload = {
            "name": self.name,
            "next_doc_id": self._next_doc_id,
            "analyzer": self.analyzer.config(),
            "shard_count": self.shard_count,
            "documents": [
                {
                    "doc_id": d.doc_id,
                    "text": d.text,
                    "metadata": d.metadata,
                    "revision": d.revision,
                }
                for d in self.documents()
            ],
            "shards": [self._shard_payload(shard) for shard in self.shards],
        }
        return payload

    @staticmethod
    def _shard_payload(shard: IRSCollection) -> dict:
        if shard.segments is None:
            return {"index": shard.index.to_payload()}
        entries = [s.to_payload() for s in shard.segments.sealed_segments()]
        memtable = shard.segments.memtable
        if memtable.document_count:
            entries.append({"index": memtable.index.to_payload(), "tombstones": []})
        return {"segments": entries}

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        analyzer: Optional[Analyzer] = None,
        segment_config: Optional[SegmentConfig] = None,
        shard_count: Optional[int] = None,
    ) -> "ShardedCollection":
        """Rebuild from a sharded *or* unsharded dump.

        A sharded payload whose shard count matches loads each shard's
        postings directly (exact replay, tombstones included).  An
        unsharded payload — or a shard-count change — re-partitions by
        re-analyzing the stored document texts, which reproduces the
        postings exactly as long as the analyzer matches the one that
        indexed them (the same contract ``IRSCollection.from_payload``
        already has).
        """
        stored = payload.get("shard_count")
        count = shard_count if shard_count is not None else stored
        if count is None:
            raise ValueError(
                "shard_count required to load an unsharded payload as sharded"
            )
        entries = payload.get("shards")
        if segment_config is None:
            segmented_dump = entries is not None and any(
                "segments" in entry for entry in entries
            ) or "segments" in payload
            if segmented_dump:
                segment_config = SegmentConfig()
        collection = cls(
            payload["name"],
            analyzer,
            segment_config=segment_config,
            shard_count=count,
        )
        collection._next_doc_id = payload["next_doc_id"]
        documents = {
            entry["doc_id"]: IRSDocument(
                entry["doc_id"],
                entry["text"],
                dict(entry["metadata"]),
                int(entry.get("revision", 0)),
            )
            for entry in payload["documents"]
        }
        if entries is not None and count == stored:
            collection._documents = dict(documents)
            for shard_index, entry in enumerate(entries):
                shard = collection.shards[shard_index]
                cls._load_shard(shard, entry)
                for doc_id in shard.index.document_ids():
                    collection._doc_shard[doc_id] = shard_index
                    shard._documents[doc_id] = documents[doc_id]
        else:
            # Re-partition (unsharded dump, or the shard count changed).
            for doc_id in sorted(documents):
                collection._ingest(documents[doc_id])
        return collection

    @staticmethod
    def _load_shard(shard: IRSCollection, entry: dict) -> None:
        if shard.segments is not None:
            sub_entries = entry.get("segments")
            if sub_entries is None:
                sub_entries = [{"index": entry["index"], "tombstones": []}]
            for sub in sub_entries:
                shard.segments.load_sealed(sub)
        elif "segments" in entry:
            segments = [
                SealedSegment.from_payload(position, sub)
                for position, sub in enumerate(entry["segments"])
            ]
            merged = SealedSegment.merged(
                0, segments, [segment.tombstones for segment in segments]
            )
            shard.index = InvertedIndex.from_payload(merged.index.to_payload())
        else:
            shard.index = InvertedIndex.from_payload(entry["index"])
