"""Sharded collections: hash-partitioned indexes, scatter-gather scoring.

A :class:`ShardedCollection` splits one logical collection into N shard
sub-collections (hash on the document's OID), each with its own segment
lifecycle, behind a :class:`ShardUnionView` that serves globally exact
statistics the same way PR 4's ``MergedIndexView`` combines segments.
Scoring is therefore **bit-identical** to the unsharded path — see
DESIGN.md §"Sharded scoring" for the full argument.

Two scoring paths exist:

* inline — the union view feeds the ordinary engine paths (every model,
  every query shape); the top-k scorer sees each shard's segments as
  sources sharing one heap, so the MaxScore threshold raises across
  shard boundaries;
* scatter — :class:`ShardExecutor` fans a prunable top-k query out to
  process-pool workers holding shard replicas, merges the per-shard
  top-k, and re-scores failed shards inline with the merged k-th score
  as a floor.  A killed or hung worker degrades to retry then inline
  fallback, never to a wrong ranking.
"""

from repro.irs.shards.collection import ShardedCollection
from repro.irs.shards.executor import ShardConfig, ShardExecutor
from repro.irs.shards.router import routing_key, shard_of
from repro.irs.shards.stats import ShardStatistics
from repro.irs.shards.view import ShardUnionView

__all__ = [
    "ShardConfig",
    "ShardExecutor",
    "ShardStatistics",
    "ShardUnionView",
    "ShardedCollection",
    "routing_key",
    "shard_of",
]
