"""ShardUnionView: one logical index over a sharded collection.

The sharded analogue of :class:`~repro.irs.segments.view.MergedIndexView`:
the full read surface of :class:`~repro.irs.inverted_index.InvertedIndex`
over the shard sub-collections, so the retrieval models, the statistics
caches and the engine all run unchanged over shards:

* global counters (document/token/posting counts, average length) sum the
  shards' O(1) counters — integer-exact;
* ``document_frequency``/``collection_frequency`` sum per-shard counters,
  so idf values are bit-equal to the monolithic index's (the same
  exact-statistics argument the segment view makes, one level up);
* ``postings(term)`` concatenates per-shard live postings into one
  doc-id-ordered list, memoized per shard-version tuple;
* per-document lookups route to the owning shard through the collection's
  routing table — shards partition the document space, so exactly one
  shard can answer.

Writes go through :class:`~repro.irs.shards.collection.ShardedCollection`
(which routes them); the view deliberately refuses them so a stray caller
cannot bypass the routing table.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.irs.inverted_index import InvertedIndex, Posting
from repro.irs.postings import MergedCursor, PostingsCursor


class ShardUnionView:
    """Read facade with ``InvertedIndex``'s interface over shards."""

    def __init__(self, collection) -> None:
        self._collection = collection
        self._memo_version: Optional[tuple] = None
        self._merged_postings: Dict[str, List[Posting]] = {}
        self._live_terms: Optional[List[str]] = None
        self._lengths: Optional[Dict[int, int]] = None

    # -- building ----------------------------------------------------------

    def add_document(self, doc_id: int, terms: List[str]) -> None:
        raise TypeError(
            "documents enter a sharded collection through "
            "ShardedCollection.add_document (routing decides the shard)"
        )

    def remove_document(self, doc_id: int) -> None:
        raise TypeError(
            "documents leave a sharded collection through "
            "ShardedCollection.remove_document"
        )

    # -- versioning --------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Content generation: the sum of the shard epochs.

        Shard epochs only ever grow, so any content change strictly moves
        the sum — the invalidation contract (unchanged scores <=>
        unchanged epoch) holds exactly as it does per shard.
        """
        return sum(shard.index.epoch for shard in self._collection.shards)

    def _version(self) -> tuple:
        return self._collection.topk_version()

    def _memo(self) -> Dict[str, List[Posting]]:
        version = self._version()
        if self._memo_version != version:
            # Rebind (never mutate in place): a concurrent reader that
            # already fetched the old dict keeps reading consistent entries.
            self._merged_postings = {}
            self._live_terms = None
            self._lengths = None
            self._memo_version = version
        return self._merged_postings

    # -- global statistics -------------------------------------------------

    @property
    def document_count(self) -> int:
        return sum(shard.index.document_count for shard in self._collection.shards)

    @property
    def token_count(self) -> int:
        return sum(shard.index.token_count for shard in self._collection.shards)

    @property
    def average_document_length(self) -> float:
        count = self.document_count
        if not count:
            return 0.0
        return self.token_count / count

    @property
    def posting_count(self) -> int:
        return sum(shard.index.posting_count for shard in self._collection.shards)

    @property
    def term_count(self) -> int:
        return len(self._terms_memo())

    def document_length(self, doc_id: int) -> int:
        shard = self._collection.shard_for(doc_id)
        if shard is None:
            return 0
        return shard.index.document_length(doc_id)

    def document_frequency(self, term: str) -> int:
        return sum(
            shard.index.document_frequency(term)
            for shard in self._collection.shards
        )

    def collection_frequency(self, term: str) -> int:
        return sum(
            shard.index.collection_frequency(term)
            for shard in self._collection.shards
        )

    # -- access ------------------------------------------------------------

    def postings(self, term: str) -> List[Posting]:
        """Live postings of ``term`` across all shards, doc-id order.

        Memoized per shard-version tuple; callers must treat the list as
        read-only (same contract as ``InvertedIndex.postings``).
        """
        memo = self._memo()
        cached = memo.get(term)
        if cached is not None:
            return cached
        lists = [
            sub
            for shard in self._collection.shards
            if (sub := shard.index.postings(term))
        ]
        if not lists:
            merged: List[Posting] = []
        elif len(lists) == 1:
            merged = lists[0]
        else:
            # Doc ids interleave freely across shards (routing is a hash,
            # not a range), so sort the union; cheap and memoized.
            merged = [p for sub in lists for p in sub]
            merged.sort(key=lambda posting: posting.doc_id)
        memo[term] = merged
        return merged

    def term_cursors(self, term: str) -> List[PostingsCursor]:
        """All live cursors holding ``term``, shard by shard."""
        cursors: List[PostingsCursor] = []
        for shard in self._collection.shards:
            index = shard.index
            if isinstance(index, InvertedIndex):
                cursor = index.cursor(term)
                if cursor is not None:
                    cursors.append(cursor)
            else:
                cursors.extend(index.term_cursors(term))
        return cursors

    def cursor(self, term: str) -> Optional[PostingsCursor]:
        """One doc-id-ordered cursor over every shard holding ``term``."""
        cursors = self.term_cursors(term)
        if not cursors:
            return None
        if len(cursors) == 1:
            return cursors[0]
        return MergedCursor(cursors)

    def term_frequency(self, term: str, doc_id: int) -> int:
        shard = self._collection.shard_for(doc_id)
        if shard is None:
            return 0
        return shard.index.term_frequency(term, doc_id)

    def positions(self, term: str, doc_id: int) -> Optional[List[int]]:
        shard = self._collection.shard_for(doc_id)
        if shard is None:
            return None
        return shard.index.positions(term, doc_id)

    def has_document(self, doc_id: int) -> bool:
        shard = self._collection.shard_for(doc_id)
        return shard is not None and shard.index.has_document(doc_id)

    def document_ids(self) -> List[int]:
        return sorted(self._doc_lengths)

    def _terms_memo(self) -> List[str]:
        self._memo()
        terms = self._live_terms
        if terms is None:
            live: set = set()
            for shard in self._collection.shards:
                live.update(shard.index.terms())
            terms = self._live_terms = list(live)
        return terms

    def terms(self) -> Iterator[str]:
        """All distinct live terms (unordered), memoized per version."""
        return iter(self._terms_memo())

    def document_vector(self, doc_id: int) -> Dict[str, int]:
        shard = self._collection.shard_for(doc_id)
        if shard is None:
            return {}
        return shard.index.document_vector(doc_id)

    @property
    def _doc_lengths(self) -> Dict[int, int]:
        """Live doc-id -> length map (naive reference-model compatibility)."""
        self._memo()
        lengths = self._lengths
        if lengths is None:
            lengths = {}
            for shard in self._collection.shards:
                lengths.update(shard.index._doc_lengths)
            self._lengths = lengths
        return lengths

    # -- persistence helpers -----------------------------------------------

    def to_payload(self) -> dict:
        """A monolithic-format dump of the live logical index.

        Collection persistence uses the per-shard format instead (see
        ``ShardedCollection.to_payload``); this keeps callers expecting
        ``InvertedIndex.to_payload`` working.
        """
        return {
            "doc_lengths": {
                str(doc_id): length
                for doc_id, length in self._doc_lengths.items()
            },
            "postings": {
                term: {
                    str(posting.doc_id): posting.positions
                    for posting in self.postings(term)
                }
                for term in sorted(self._terms_memo())
            },
        }
