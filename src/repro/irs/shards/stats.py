"""ShardStatistics: per-document lazy norms over the shard union.

The sharded sibling of
:class:`~repro.irs.segments.stats.SegmentedStatistics`: df/idf/avg-dl
memos are inherited from :class:`~repro.irs.statistics.StatisticsCache`
over the :class:`~repro.irs.shards.view.ShardUnionView` — integer-exact
global counters, so idf values are bit-equal to the monolithic cache's —
and TF-IDF norms are computed per document on demand from the owning
shard's forward vector, accumulating the document's terms in **sorted
order** (the canonical order every statistics implementation uses).  A
norm is therefore bit-identical no matter which representation computes
it: monolithic sweep, segment stack, shard union, or a worker replica
holding only its own shard's postings plus the global df table.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.irs.statistics import StatisticsCache


class ShardStatistics(StatisticsCache):
    """Epoch-validated statistics memo with per-document lazy norms."""

    def __init__(self, view, collection) -> None:
        super().__init__(view)
        self._collection = collection
        self._doc_norms: Dict[int, float] = {}

    def _validate(self) -> None:
        if self._epoch != self._index.epoch:
            self._doc_norms = {}
        super()._validate()

    def document_norm(self, doc_id: int) -> float:
        """TF-IDF norm of one document, from its shard's forward vector.

        O(|document terms|) on a miss (idf lookups are memoized across
        documents), O(1) on a hit; 0.0 for unknown documents.
        """
        with self._lock:
            self._validate()
            cached = self._doc_norms.get(doc_id)
            if cached is not None:
                self.hits += 1
                return cached
            self.misses += 1
            vector = self._collection.forward_vector(doc_id)
            if not vector:
                norm = 0.0
            else:
                total = 0.0
                # Sorted terms with the *union* idf: the canonical
                # accumulation shared with the monolithic sweep.
                for term in sorted(vector):
                    weight = (1.0 + math.log(vector[term])) * self.idf(term)
                    total += weight * weight
                norm = math.sqrt(total)
            self._doc_norms[doc_id] = norm
            return norm
