"""Document-to-shard routing.

Documents hash on their OID — the paper's stable per-object identity
(Section 4.3) — so an object's IRS documents land on the same shard no
matter when or in what order they are indexed.  Documents without an OID
fall back to ``doc:<id>`` (the same fallback key the result-file channel
uses).

The hash is CRC-32, *not* Python's ``hash()``: the builtin is randomized
per process, and a replica worker must agree with its parent about which
shard owns a document.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional


def routing_key(metadata: Optional[Dict[str, str]], doc_id: int) -> str:
    """The stable routing key of one document: its OID, else ``doc:<id>``."""
    if metadata:
        oid = metadata.get("oid")
        if oid:
            return oid
    return f"doc:{doc_id}"


def shard_of(key: str, shard_count: int) -> int:
    """The shard index owning ``key`` (deterministic across processes)."""
    if shard_count <= 1:
        return 0
    return zlib.crc32(key.encode("utf-8")) % shard_count
