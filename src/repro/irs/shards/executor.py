"""ShardExecutor: scatter-gather top-k over per-shard worker processes.

One single-worker :class:`~concurrent.futures.ProcessPoolExecutor` per
shard (spawn context — never fork a threaded parent) holds that shard's
replica.  A prunable top-k query is scattered to every shard's pool,
each worker returns its exact shard-local top-k, and the gather merges
them under the global ``(-value, doc_id)`` rank order: any document in
the global top-k is in its shard's top-k (fewer than k documents can
outrank it anywhere), so the merged-and-truncated list *is* the global
top-k — bit-identical to the unsharded path because the replicas score
with the union's exact statistics.

Failure contract: a failed shard — dispatch error, killed worker
(``BrokenProcessPool``), hang (future timeout), or a stale replica — is
retried once on a rebuilt pool with a fresh sync, then re-scored
*inline* from the parent's copy of the shard, seeding the pruning
threshold with the already-merged k-th score.  Every failure mode is
recorded (``irs.shard.retries``/``irs.shard.failovers``/
``irs.shard.timeouts`` counters, per-shard span status); none can
produce a wrong ranking.  When the whole scatter declines (non-prunable
shape, closed executor) the caller falls back to the inline union path,
which is exact for every model and query shape.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.irs.shards import worker as shard_worker

_COUNTER_KEYS = (
    "blocks_skipped",
    "blocks_decoded",
    "early_terminations",
    "candidates_scored",
)


@dataclass(frozen=True)
class ShardConfig:
    """Tunables of the scatter path (mirrors the service's ServiceConfig).

    ``failure_injector`` is the test hook: called as ``injector(label,
    attempt)`` with ``label = "<collection>#<shard>"`` before every
    dispatch attempt; raising makes that attempt fail exactly as a dead
    pool would.
    """

    shard_timeout_seconds: float = 30.0
    max_retries: int = 1
    failure_injector: Optional[Callable[[str, int], None]] = None


class ShardExecutor:
    """Per-shard worker pools plus the scatter-gather-failover driver."""

    def __init__(self, config: Optional[ShardConfig] = None) -> None:
        self._config = config or ShardConfig()
        self._lock = threading.Lock()
        self._pools: Dict[Tuple[str, int], ProcessPoolExecutor] = {}
        #: (collection, shard) -> (shard_version, union_version) last shipped
        #: to the *current* pool; cleared whenever the pool is rebuilt.
        self._versions: Dict[Tuple[str, int], tuple] = {}
        self._closed = False

    @property
    def config(self) -> ShardConfig:
        return self._config

    # -- pool management -----------------------------------------------------

    def pool(self, name: str, shard_index: int) -> ProcessPoolExecutor:
        """The (lazily created) single-worker pool of one shard."""
        key = (name, shard_index)
        with self._lock:
            if self._closed:
                raise RuntimeError("shard executor is closed")
            pool = self._pools.get(key)
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=1,
                    mp_context=multiprocessing.get_context("spawn"),
                )
                self._pools[key] = pool
            return pool

    def _discard_pool(self, name: str, shard_index: int) -> None:
        """Tear a (possibly broken or hung) pool down, replica and all."""
        key = (name, shard_index)
        with self._lock:
            pool = self._pools.pop(key, None)
            self._versions.pop(key, None)
        if pool is None:
            return
        # A hung worker ignores a polite shutdown; terminate outright.
        processes = getattr(pool, "_processes", None)
        if processes:
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        pool.shutdown(wait=False, cancel_futures=True)

    def drop_collection(self, name: str) -> None:
        """Discard every pool of a dropped collection."""
        with self._lock:
            keys = [key for key in self._pools if key[0] == name]
        for key in keys:
            self._discard_pool(*key)

    def close(self) -> None:
        """Shut down every worker pool."""
        with self._lock:
            keys = list(self._pools)
            self._closed = True
        for key in keys:
            self._discard_pool(*key)

    # -- replica sync --------------------------------------------------------

    def _ensure_synced(self, pool, collection, shard_index, union_version, registry):
        """Queue a replica sync ahead of the query when versions moved.

        The pool has one worker, so its queue is FIFO: the sync is
        guaranteed to execute before the query we submit next — no need
        to wait on it here.  Content unchanged on this shard means a
        cheap stats-only sync (other shards moved the union statistics).
        """
        key = (collection.name, shard_index)
        shard = collection.shards[shard_index]
        if shard.segments is not None:
            shard_version = shard.segments.version
        else:
            shard_version = (shard.index.epoch,)
        with self._lock:
            shipped = self._versions.get(key)
        if shipped == (shard_version, union_version):
            return
        if shipped is not None and shipped[0] == shard_version:
            payload = None
        else:
            payload = shard.index.to_payload()
        pool.submit(
            shard_worker.sync_replica,
            collection.name,
            shard_index,
            shard_version,
            union_version,
            payload,
            collection.analyzer,
            collection.shard_global_stats(),
        )
        with self._lock:
            self._versions[key] = (shard_version, union_version)
        registry.counter("irs.shard.syncs").inc()

    # -- the scatter-gather driver -------------------------------------------

    def _await(self, future, registry) -> Optional[dict]:
        try:
            return future.result(timeout=self._config.shard_timeout_seconds)
        except FutureTimeoutError:
            registry.counter("irs.shard.timeouts").inc()
            return None
        except Exception:
            return None

    def _dispatch(self, collection, shard_index, union_version,
                  model_name, irs_query, k, attempt, registry):
        """One dispatch attempt; raises on any failure mode it can see."""
        injector = self._config.failure_injector
        if injector is not None:
            injector(f"{collection.name}#{shard_index}", attempt)
        pool = self.pool(collection.name, shard_index)
        self._ensure_synced(pool, collection, shard_index, union_version, registry)
        return pool.submit(
            shard_worker.replica_query,
            collection.name,
            shard_index,
            union_version,
            model_name,
            irs_query,
            k,
        )

    def scatter_topk(
        self,
        collection,
        model_name: str,
        model_impl,
        tree,
        irs_query: str,
        k: int,
        span,
        registry,
    ) -> Optional[Tuple[Dict[int, float], Dict[str, int]]]:
        """Scatter a prunable top-k query; None => caller scores inline.

        Must be called under the collection's read lock (the shard state
        shipped to the replicas and re-scored on failover may not move
        mid-query).  Returns the exact top-k value dict plus the
        aggregated pruning counters.
        """
        if self._closed:
            return None
        from repro.irs import topk

        if model_name == "vector":
            plan, _reason = topk._vector_plan(collection, model_impl, tree)
        elif model_name == "inquery":
            plan, _reason = topk._inquery_plan(collection, model_impl, tree)
        else:
            return None
        if plan is None:
            return None
        registry.counter("irs.shard.scatters").inc()
        name = collection.name
        union_version = collection.topk_version()
        pending: Dict[int, Optional[object]] = {}
        for shard_index in range(collection.shard_count):
            try:
                pending[shard_index] = self._dispatch(
                    collection, shard_index, union_version,
                    model_name, irs_query, k, 1, registry,
                )
            except Exception:
                pending[shard_index] = None
        entries: List[Tuple[int, float]] = []
        counters = dict.fromkeys(_COUNTER_KEYS, 0)
        failed: List[int] = []
        retried = 0
        tracer = obs.tracer()
        for shard_index in range(collection.shard_count):
            with tracer.span(
                "irs.shard.query", collection=name, shard=shard_index
            ) as shard_span:
                future = pending[shard_index]
                reply = self._await(future, registry) if future is not None else None
                if reply is None or reply.get("status") != "ok":
                    reply = None
                    for attempt in range(2, self._config.max_retries + 2):
                        self._discard_pool(name, shard_index)
                        retried += 1
                        registry.counter("irs.shard.retries").inc()
                        try:
                            future = self._dispatch(
                                collection, shard_index, union_version,
                                model_name, irs_query, k, attempt, registry,
                            )
                        except Exception:
                            continue
                        reply = self._await(future, registry)
                        if reply is not None and reply.get("status") == "ok":
                            break
                        reply = None
                if reply is None:
                    failed.append(shard_index)
                    shard_span.set_attribute("status", "failover")
                else:
                    shard_span.set_attribute("status", "ok")
                    shard_span.set_attribute("results", len(reply["ranked"]))
                    entries.extend(reply["ranked"])
                    for counter_key in _COUNTER_KEYS:
                        counters[counter_key] += reply["counters"][counter_key]
        entries.sort(key=lambda entry: (-entry[1], entry[0]))
        for shard_index in failed:
            registry.counter("irs.shard.failovers").inc()
            # The merged k-th value so far is a proven lower bound on the
            # global k-th score: seed the inline re-score's threshold with
            # it — exact, and the lost shard's work is not repeated from a
            # cold threshold.
            floor = entries[k - 1][1] if len(entries) >= k else None
            outcome = topk.topk_scores(
                collection.scoring_adapter(shard_index),
                model_name,
                model_impl,
                tree,
                k,
                floor_value=floor,
            )
            if outcome.values is None:
                # Can't happen for shapes that passed planning above, but
                # never risk a wrong ranking: decline the whole scatter.
                return None
            entries.extend(outcome.values.items())
            entries.sort(key=lambda entry: (-entry[1], entry[0]))
            for counter_key in _COUNTER_KEYS:
                counters[counter_key] += getattr(outcome, counter_key)
        span.set_attribute("sharded", True)
        span.set_attribute("shards", collection.shard_count)
        if retried:
            span.set_attribute("shard_retries", retried)
        if failed:
            span.set_attribute("shard_failovers", len(failed))
        return dict(entries[:k]), counters
