"""Shard replica workers: the functions a ProcessPoolExecutor runs.

Each shard gets its own single-worker pool (see
:class:`~repro.irs.shards.executor.ShardExecutor`), whose process holds a
**replica** of the shard: the shard's live postings wrapped in a
:class:`GlobalStatsIndex` that overrides every statistic scoring reads —
document/token counts, average document length, the per-term df table —
with the *union's* integer-exact values.  The replica's idf, average-dl
and per-document norms are therefore bit-identical to the parent's, and
:func:`repro.irs.topk.topk_scores` over the replica returns exactly the
shard-local top-k of the global ranking.

Sync protocol (single worker per pool, so the task queue is FIFO): the
parent ships a full sync (postings payload + analyzer + global stats)
when the shard's content changed, or a cheap stats-only sync when only
*other* shards changed; queries carry the union version they expect and
report ``stale`` on any mismatch, which the parent treats as a failure
(retry, then inline fallback) — never a wrong ranking.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.inverted_index import InvertedIndex
from repro.irs.models import MODELS
from repro.irs.queries import parse_irs_query

#: Replica registry of this worker process: (collection, shard) -> state.
_REPLICAS: Dict[Tuple[str, int], dict] = {}


class GlobalStatsIndex:
    """A shard's local postings under the union's global statistics.

    Per-document reads (postings, lengths, vectors) come from the local
    :class:`InvertedIndex`; every *global* statistic comes from the values
    the parent shipped.  ``epoch`` is a sync generation counter — each
    sync (full or stats-only) bumps it, so the statistics cache and the
    top-k impact caches keyed on it invalidate exactly when the global
    numbers can have moved.
    """

    def __init__(
        self,
        local: InvertedIndex,
        document_count: int,
        token_count: int,
        df: Dict[str, int],
        generation: int,
    ) -> None:
        self._local = local
        self._document_count = document_count
        self._token_count = token_count
        self._df = df
        self._generation = generation

    def update_stats(
        self, document_count: int, token_count: int, df: Dict[str, int]
    ) -> None:
        self._document_count = document_count
        self._token_count = token_count
        self._df = df
        self._generation += 1

    # -- versioning (drives cache invalidation in the replica) -------------

    @property
    def epoch(self) -> int:
        return self._generation

    # -- global statistics --------------------------------------------------

    @property
    def document_count(self) -> int:
        return self._document_count

    @property
    def token_count(self) -> int:
        return self._token_count

    @property
    def average_document_length(self) -> float:
        if not self._document_count:
            return 0.0
        return self._token_count / self._document_count

    def document_frequency(self, term: str) -> int:
        return self._df.get(term, 0)

    def collection_frequency(self, term: str) -> int:
        # Not consulted by the prunable models; local value for tooling.
        return self._local.collection_frequency(term)

    # -- local reads ---------------------------------------------------------

    @property
    def posting_count(self) -> int:
        return self._local.posting_count

    @property
    def term_count(self) -> int:
        return self._local.term_count

    def postings(self, term: str):
        return self._local.postings(term)

    def cursor(self, term: str):
        return self._local.cursor(term)

    def term_cursor(self, term: str):
        return self._local.cursor(term)

    def document_length(self, doc_id: int) -> int:
        return self._local.document_length(doc_id)

    def term_frequency(self, term: str, doc_id: int) -> int:
        return self._local.term_frequency(term, doc_id)

    def positions(self, term: str, doc_id: int) -> Optional[List[int]]:
        return self._local.positions(term, doc_id)

    def has_document(self, doc_id: int) -> bool:
        return self._local.has_document(doc_id)

    def document_ids(self) -> List[int]:
        return self._local.document_ids()

    def terms(self):
        return self._local.terms()

    def document_vector(self, doc_id: int) -> Dict[str, int]:
        return self._local.document_vector(doc_id)

    @property
    def _doc_lengths(self) -> Dict[int, int]:
        return self._local._doc_lengths


def sync_replica(
    collection_name: str,
    shard_index: int,
    shard_version: tuple,
    union_version: tuple,
    index_payload: Optional[dict],
    analyzer: Optional[Analyzer],
    global_stats: dict,
) -> dict:
    """Install or refresh this worker's replica of one shard.

    ``index_payload is None`` means stats-only: the shard's own content
    did not change (the parent verified the shard version), only the
    union statistics did.  Requests a full sync when the premise fails.
    """
    key = (collection_name, shard_index)
    entry = _REPLICAS.get(key)
    if index_payload is None:
        if entry is None or entry["shard_version"] != shard_version:
            return {"status": "need_full"}
        wrapper: GlobalStatsIndex = entry["collection"].index
        wrapper.update_stats(
            global_stats["document_count"],
            global_stats["token_count"],
            global_stats["df"],
        )
        entry["union_version"] = union_version
        return {"status": "synced", "mode": "stats"}
    generation = (entry["collection"].index.epoch + 1) if entry else 1
    local = InvertedIndex.from_payload(index_payload)
    replica = IRSCollection(f"{collection_name}#{shard_index}", analyzer)
    replica.index = GlobalStatsIndex(
        local,
        global_stats["document_count"],
        global_stats["token_count"],
        global_stats["df"],
        generation,
    )
    _REPLICAS[key] = {
        "shard_version": shard_version,
        "union_version": union_version,
        "collection": replica,
    }
    return {"status": "synced", "mode": "full"}


def replica_query(
    collection_name: str,
    shard_index: int,
    union_version: tuple,
    model_name: str,
    irs_query: str,
    k: int,
) -> dict:
    """Top-k score the replica; exact shard-local slice of the global ranking."""
    from repro.irs import topk

    entry = _REPLICAS.get((collection_name, shard_index))
    if entry is None or entry["union_version"] != union_version:
        return {"status": "stale"}
    collection = entry["collection"]
    model_impl = MODELS[model_name]()
    tree = parse_irs_query(irs_query, default_operator=model_impl.default_operator)
    outcome = topk.topk_scores(collection, model_name, model_impl, tree, k)
    if outcome.values is None:
        return {"status": "ineligible", "reason": outcome.reason}
    ranked = sorted(outcome.values.items(), key=lambda kv: (-kv[1], kv[0]))
    return {
        "status": "ok",
        "ranked": ranked,
        "counters": {
            "blocks_skipped": outcome.blocks_skipped,
            "blocks_decoded": outcome.blocks_decoded,
            "early_terminations": outcome.early_terminations,
            "candidates_scored": outcome.candidates_scored,
        },
    }


# -- fault-injection helpers (dispatched instead of a query by tests) -------

def crash_worker() -> None:
    """Die without cleanup, as a kill -9 would (BrokenProcessPool upstream)."""
    os._exit(1)


def hang_worker(seconds: float) -> bool:
    """Stall the single worker so the next query times out upstream."""
    time.sleep(seconds)
    return True
