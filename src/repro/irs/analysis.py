"""Text analysis: tokenization, stopword removal, stemming.

The paper treats an IRS document as "a flat text (a list of words)"
(Section 1.1).  The :class:`Analyzer` turns raw text into that list with a
configurable pipeline, used identically at indexing and at query time so
query terms match indexed terms.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set

from repro.irs import porter

#: A compact classic stopword list (van Rijsbergen-style subset).
DEFAULT_STOPWORDS = frozenset(
    """
    a about above after again against all am an and any are as at be because
    been before being below between both but by can did do does doing down
    during each few for from further had has have having he her here hers
    him his how i if in into is it its itself just me more most my no nor
    not now of off on once only or other our ours out over own same she so
    some such than that the their theirs them then there these they this
    those through to too under until up very was we were what when where
    which while who whom why will with you your yours
    """.split()
)

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


class Analyzer:
    """A configurable indexing/query analysis pipeline.

    Parameters
    ----------
    stopwords:
        Words dropped after tokenization; pass an empty set to keep all.
    stemming:
        When True (default), surviving tokens are Porter-stemmed.
    min_length:
        Tokens shorter than this are dropped (default 1: keep everything).
    """

    def __init__(
        self,
        stopwords: Optional[Set[str]] = None,
        stemming: bool = True,
        min_length: int = 1,
    ) -> None:
        self._stopwords = DEFAULT_STOPWORDS if stopwords is None else frozenset(stopwords)
        self._stemming = stemming
        self._min_length = min_length

    def tokens(self, text: str) -> List[str]:
        """Analyze ``text`` into the final term list."""
        result = []
        for match in _TOKEN_PATTERN.finditer(text.lower()):
            token = match.group()
            if len(token) < self._min_length or token in self._stopwords:
                continue
            if self._stemming:
                token = porter.stem(token)
            result.append(token)
        return result

    def term(self, word: str) -> Optional[str]:
        """Analyze a single query term; None when it is stopped out."""
        terms = self.tokens(word)
        return terms[0] if terms else None

    def config(self) -> dict:
        """A serializable description (stored with persisted collections)."""
        return {
            "stemming": self._stemming,
            "min_length": self._min_length,
            "stopword_count": len(self._stopwords),
        }

    def __repr__(self) -> str:
        return f"<Analyzer stemming={self._stemming} stopwords={len(self._stopwords)}>"
