"""Hierarchical scoring: one leaf-level index answers every element level.

Section 4.3.1, alternative (2): avoid redundant multi-level indexing by
"using compression techniques [SAZ94]".  [SAZ94]'s observation is that the
postings of an inner element are derivable from its leaves' postings plus
the document tree, so only one level needs physical storage.  This module
realizes that idea natively instead of via compression: given a collection
whose IRS documents are the *leaf* elements, :class:`HierarchicalScorer`
computes the exact INQUERY belief of any element at any level by
aggregating term frequencies and lengths over the element's leaf documents,
with per-level document-frequency statistics computed on demand and cached.

The resulting values are exactly what a (redundant) collection indexing
that level directly would produce — verified by the HIER benchmark — at
the storage cost of the leaf level alone.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.irs.collection import IRSCollection
from repro.irs.models import operators as ops
from repro.irs.models.probabilistic import DEFAULT_BELIEF
from repro.irs.queries import OperatorNode, QueryNode, TermNode, parse_irs_query
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID


class HierarchicalScorer:
    """Scores arbitrary elements against a leaf-level IRS collection.

    Parameters
    ----------
    db:
        The database holding the element tree.
    collection:
        An IRS collection whose documents are leaf elements carrying
        ``oid`` metadata (e.g. built by the ``leaf_level`` granularity
        policy).
    """

    def __init__(self, db: Database, collection: IRSCollection) -> None:
        self._db = db
        self._collection = collection
        self._leaf_docs: Optional[Dict[OID, List[int]]] = None
        self._level_stats: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._subtree_cache: Dict[OID, List[int]] = {}

    # -- leaf bookkeeping ---------------------------------------------------

    def _leaf_documents(self) -> Dict[OID, List[int]]:
        """OID -> IRS doc ids of the collection's leaf documents."""
        if self._leaf_docs is None:
            mapping: Dict[OID, List[int]] = {}
            for document in self._collection.documents():
                oid_str = document.metadata.get("oid")
                if oid_str is None:
                    continue
                mapping.setdefault(OID.parse(oid_str), []).append(document.doc_id)
            self._leaf_docs = mapping
        return self._leaf_docs

    def invalidate(self) -> None:
        """Drop caches after the collection or the tree changed."""
        self._leaf_docs = None
        self._level_stats.clear()
        self._subtree_cache.clear()

    def subtree_doc_ids(self, obj: DBObject) -> List[int]:
        """IRS doc ids of all leaf documents under ``obj`` (self included)."""
        cached = self._subtree_cache.get(obj.oid)
        if cached is not None:
            return cached
        leaf_docs = self._leaf_documents()
        doc_ids = list(leaf_docs.get(obj.oid, []))
        for descendant in obj.send("getDescendants"):
            doc_ids.extend(leaf_docs.get(descendant.oid, []))
        self._subtree_cache[obj.oid] = doc_ids
        return doc_ids

    # -- aggregated statistics ------------------------------------------------

    def subtree_tf(self, term: str, obj: DBObject) -> int:
        """Total term frequency of (analyzed) ``term`` in the subtree."""
        analyzed = self._collection.analyzer.term(term)
        if analyzed is None:
            return 0
        index = self._collection.index
        return sum(
            index.term_frequency(analyzed, doc_id)
            for doc_id in self.subtree_doc_ids(obj)
        )

    def subtree_length(self, obj: DBObject) -> int:
        """Total indexed token count of the subtree."""
        index = self._collection.index
        return sum(
            index.document_length(doc_id) for doc_id in self.subtree_doc_ids(obj)
        )

    def _stats_for_level(self, class_name: str, term: str) -> Tuple[int, int]:
        """(N, df) at the level of ``class_name`` for ``term``."""
        analyzed = self._collection.analyzer.term(term) or term
        key = (class_name, analyzed)
        cached = self._level_stats.get(key)
        if cached is not None:
            return cached
        instances = self._db.instances_of(class_name)
        n_docs = len(instances)
        df = sum(1 for obj in instances if self.subtree_tf(term, obj) > 0)
        self._level_stats[key] = (n_docs, df)
        return n_docs, df

    def average_length(self, class_name: str) -> float:
        """Mean subtree length over the level's instances."""
        instances = self._db.instances_of(class_name)
        if not instances:
            return 0.0
        return sum(self.subtree_length(obj) for obj in instances) / len(instances)

    # -- scoring ---------------------------------------------------------------

    def term_belief(self, term: str, obj: DBObject, class_name: Optional[str] = None) -> float:
        """Exact INQUERY belief of ``obj`` for ``term`` at its level.

        Identical formula to
        :class:`repro.irs.models.probabilistic.InferenceNetworkModel`, with
        tf/dl aggregated over the subtree and N/df computed at the level of
        ``class_name`` (default: the object's own class).
        """
        level = class_name or obj.class_name
        tf = self.subtree_tf(term, obj)
        if tf == 0:
            return DEFAULT_BELIEF
        n_docs, df = self._stats_for_level(level, term)
        if df == 0 or n_docs == 0:
            return DEFAULT_BELIEF
        dl = self.subtree_length(obj)
        avg_dl = self.average_length(level) or 1.0
        tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
        idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
        idf_part = max(0.0, min(1.0, idf_part))
        return DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_part * idf_part

    def belief(self, query: QueryNode, obj: DBObject, class_name: Optional[str] = None) -> float:
        """Belief of ``obj`` for a parsed query tree."""
        if isinstance(query, TermNode):
            return self.term_belief(query.term, obj, class_name)
        if isinstance(query, OperatorNode):
            children = [self.belief(c, obj, class_name) for c in query.children]
            if query.op == "and":
                return ops.op_and(children)
            if query.op == "or":
                return ops.op_or(children)
            if query.op == "not":
                return ops.op_not(children[0])
            if query.op == "sum":
                return ops.op_sum(children)
            if query.op == "wsum":
                return ops.op_wsum(query.weights, children)
            if query.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {query!r}")  # pragma: no cover

    def score_level(self, irs_query: str, class_name: str) -> Dict[OID, float]:
        """Score every instance of ``class_name`` against ``irs_query``.

        Returns the same shape as an IRS query against a collection that
        indexed this level directly: ``{OID: value}`` for values above the
        query's no-evidence baseline.
        """
        tree = parse_irs_query(irs_query)
        baseline = self._baseline(tree)
        result: Dict[OID, float] = {}
        for obj in self._db.instances_of(class_name):
            value = self.belief(tree, obj, class_name)
            if value > baseline:
                result[obj.oid] = value
        return result

    def _baseline(self, query: QueryNode) -> float:
        if isinstance(query, TermNode):
            return DEFAULT_BELIEF
        if isinstance(query, OperatorNode):
            children = [self._baseline(c) for c in query.children]
            if query.op == "and":
                return ops.op_and(children)
            if query.op == "or":
                return ops.op_or(children)
            if query.op == "not":
                return ops.op_not(children[0])
            if query.op == "sum":
                return ops.op_sum(children)
            if query.op == "wsum":
                return ops.op_wsum(query.weights, children)
            if query.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {query!r}")  # pragma: no cover

    # -- storage accounting -------------------------------------------------------

    def storage_bytes(self) -> int:
        """Index bytes of the single stored (leaf) level."""
        return self._collection.indexed_bytes()
