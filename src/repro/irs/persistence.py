"""IRS index persistence.

Section 1.1: the internal representations "are stored in a file system".
One JSON file per collection under the engine directory; a manifest lists
the collections.  :func:`save_engine` / :func:`load_engine` round-trip a
whole :class:`~repro.irs.engine.IRSEngine`.

Two collection payload formats exist (see ``IRSCollection.to_payload``):
the legacy monolithic ``"index"`` dump and the per-segment ``"segments"``
dump of the log-structured subsystem.  ``load_engine`` reads both; a
legacy payload loading into a segmented engine becomes a collection with
one sealed segment.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.engine import IRSEngine

_MANIFEST = "collections.json"


def save_engine(engine: IRSEngine, directory: str) -> None:
    """Write every collection of ``engine`` to ``directory``."""
    os.makedirs(directory, exist_ok=True)
    names = engine.collection_names()
    for name in names:
        collection = engine.collection(name)
        path = os.path.join(directory, _collection_file(name))
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(collection.to_payload(), fh)
        os.replace(tmp_path, path)
    manifest_path = os.path.join(directory, _MANIFEST)
    with open(manifest_path + ".tmp", "w", encoding="utf-8") as fh:
        json.dump({"collections": names}, fh)
    os.replace(manifest_path + ".tmp", manifest_path)


def load_engine(
    directory: str, default_model: str = "inquery", analyzer: Optional[Analyzer] = None
) -> IRSEngine:
    """Rebuild an engine previously written with :func:`save_engine`."""
    engine = IRSEngine(default_model=default_model, analyzer=analyzer)
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        return engine
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    for name in manifest["collections"]:
        path = os.path.join(directory, _collection_file(name))
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        collection = IRSCollection.from_payload(
            payload, analyzer, segment_config=engine.segment_config
        )
        engine._collections[name] = collection
    return engine


def _collection_file(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_" for ch in name)
    return f"collection_{safe}.json"
