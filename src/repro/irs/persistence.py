"""IRS index persistence.

Section 1.1: the internal representations "are stored in a file system".
One JSON file per collection under the engine directory; a manifest lists
the collections.  :func:`save_engine` / :func:`load_engine` round-trip a
whole :class:`~repro.irs.engine.IRSEngine`.

Three collection layouts exist on disk:

* the legacy monolithic ``"index"`` dump and the per-segment
  ``"segments"`` dump (see ``IRSCollection.to_payload``), both a single
  ``collection_<name>.json`` file;
* the sharded layout: a ``collection_<name>/`` *directory* holding
  ``meta.json`` (documents, analyzer config, shard count) plus one
  ``shard_NNNN.json`` per shard.

Every layout cross-loads into every target: a sharded directory loading
into an unsharded engine flattens the shards into segments; an unsharded
file loading into a sharded engine re-partitions by re-analyzing the
stored texts; a shard-count change does the same (see
``ShardedCollection.from_payload``).
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Optional

from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.engine import IRSEngine
from repro.irs.shards import ShardedCollection
from repro.store.file import fsync_directory

_MANIFEST = "collections.json"


def _atomic_write_json(path: str, content) -> None:
    """Write JSON durably: temp file, flush + fsync, rename, dir fsync.

    The rename alone only guarantees readers see old-or-new; without the
    file fsync a crash can leave the *new* name pointing at zero-length
    or partial data, and without the directory fsync the rename itself
    may not survive.  Both matter because ``load_engine`` trusts these
    files without checksums.
    """
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as fh:
        json.dump(content, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp_path, path)
    fsync_directory(path)


def save_engine(engine: IRSEngine, directory: str) -> None:
    """Write every collection of ``engine`` to ``directory``.

    Sharded collections get a per-shard payload directory; the other
    layout's leftovers (a previous run with a different shard setting)
    are removed so a reload sees exactly one representation.  Every file
    is written atomically (:func:`_atomic_write_json`); the manifest goes
    last, so a crash mid-save leaves the previous manifest pointing at
    files that still exist.
    """
    os.makedirs(directory, exist_ok=True)
    names = engine.collection_names()
    for name in names:
        collection = engine.collection(name)
        if getattr(collection, "shards", None):
            _save_sharded(collection, directory)
        else:
            _save_flat(collection, directory)
    _atomic_write_json(
        os.path.join(directory, _MANIFEST), {"collections": names}
    )


def _save_flat(collection: IRSCollection, directory: str) -> None:
    path = os.path.join(directory, _collection_file(collection.name))
    _atomic_write_json(path, collection.to_payload())
    stale_dir = os.path.join(directory, _collection_dir(collection.name))
    if os.path.isdir(stale_dir):
        shutil.rmtree(stale_dir)


def _save_sharded(collection, directory: str) -> None:
    shard_dir = os.path.join(directory, _collection_dir(collection.name))
    os.makedirs(shard_dir, exist_ok=True)
    payload = collection.to_payload()
    shard_entries = payload.pop("shards")
    for path, content in [
        (os.path.join(shard_dir, "meta.json"), payload),
        *(
            (os.path.join(shard_dir, f"shard_{i:04d}.json"), entry)
            for i, entry in enumerate(shard_entries)
        ),
    ]:
        _atomic_write_json(path, content)
    # Drop shard files beyond the current count and any stale flat dump.
    for entry in os.listdir(shard_dir):
        if entry.startswith("shard_") and entry.endswith(".json"):
            index = int(entry[6:-5])
            if index >= len(shard_entries):
                os.remove(os.path.join(shard_dir, entry))
    stale_file = os.path.join(directory, _collection_file(collection.name))
    if os.path.exists(stale_file):
        os.remove(stale_file)


def load_engine(
    directory: str,
    default_model: str = "inquery",
    analyzer: Optional[Analyzer] = None,
    shard_count: int = 0,
    shard_config=None,
) -> IRSEngine:
    """Rebuild an engine previously written with :func:`save_engine`.

    ``shard_count`` sets the engine default *and* the target layout:
    stored collections are re-partitioned (or flattened, when 0) to
    match it, whatever layout they were saved in.
    """
    engine = IRSEngine(
        default_model=default_model,
        analyzer=analyzer,
        shard_count=shard_count,
        shard_config=shard_config,
    )
    manifest_path = os.path.join(directory, _MANIFEST)
    if not os.path.exists(manifest_path):
        return engine
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    for name in manifest["collections"]:
        payload = _read_collection_payload(directory, name)
        if shard_count and shard_count >= 1:
            collection: IRSCollection = ShardedCollection.from_payload(
                payload,
                analyzer,
                segment_config=engine.segment_config,
                shard_count=shard_count,
            )
        else:
            collection = IRSCollection.from_payload(
                payload, analyzer, segment_config=engine.segment_config
            )
        engine._collections[name] = collection
    return engine


def _read_collection_payload(directory: str, name: str) -> dict:
    shard_dir = os.path.join(directory, _collection_dir(name))
    meta_path = os.path.join(shard_dir, "meta.json")
    if os.path.isdir(shard_dir) and os.path.exists(meta_path):
        with open(meta_path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        entries = []
        for i in range(payload["shard_count"]):
            with open(
                os.path.join(shard_dir, f"shard_{i:04d}.json"), "r",
                encoding="utf-8",
            ) as fh:
                entries.append(json.load(fh))
        payload["shards"] = entries
        return payload
    path = os.path.join(directory, _collection_file(name))
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _collection_file(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_" for ch in name)
    return f"collection_{safe}.json"


def _collection_dir(name: str) -> str:
    safe = "".join(ch if ch.isalnum() or ch in "-_" else "_" for ch in name)
    return f"collection_{safe}"
