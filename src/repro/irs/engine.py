"""The IRS engine facade.

Manages named collections and answers queries.  Two result channels exist,
mirroring Section 4.5 of the paper:

* **file exchange** — "Currently the IRS writes the result to a file which
  is parsed afterwards to extract the OID-relevance value pairs":
  :meth:`IRSEngine.query_to_file` writes ``<metadata>\\t<value>`` lines and
  :func:`parse_result_file` reads them back;
* **API exchange** — "This mechanism can be improved by using the API of an
  IRS": :meth:`IRSEngine.query` returns the result in-process.

The engine also keeps operation counters that the benchmark harness reads
(IRS invocations are the paper's main cost driver for buffering and update
propagation).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.obs.telemetry import active_profile
from repro.errors import (
    DuplicateCollectionError,
    UnknownCollectionError,
    UnknownModelError,
)
from repro.irs.analysis import Analyzer
from repro.irs.collection import IRSCollection
from repro.irs.models import MODELS, RetrievalModel
from repro.irs.queries import parse_irs_query
from repro.irs.segments import MergeScheduler, SegmentConfig
from repro.irs.shards import ShardConfig, ShardedCollection, ShardExecutor
from repro.sync import ReadWriteLock

logger = logging.getLogger(__name__)


@dataclass
class IRSResult:
    """The outcome of one IRS query against one collection."""

    collection: str
    query: str
    model: str
    values: Dict[int, float]  # doc_id -> IRS value

    def ranked(self) -> List[tuple]:
        """(doc_id, value) pairs, best first, doc id as tiebreaker."""
        return sorted(self.values.items(), key=lambda kv: (-kv[1], kv[0]))

    def by_metadata(self, collection: IRSCollection, key: str) -> Dict[str, float]:
        """Re-key values by a metadata field (e.g. ``oid``).

        When several IRS documents of the collection share the metadata
        value, the maximum IRS value wins (one object may own several IRS
        documents, Section 4.3).
        """
        out: Dict[str, float] = {}
        for doc_id, value in self.values.items():
            meta_value = collection.document(doc_id).metadata.get(key)
            if meta_value is None:
                continue
            if meta_value not in out or value > out[meta_value]:
                out[meta_value] = value
        return out


@dataclass
class EngineCounters:
    """Operation counters for the benchmark harness.

    Increments go through :meth:`inc` / :meth:`inc_collection_query`, which
    serialize on a private lock so the service layer's worker pool never
    loses an update to a read-modify-write race.
    """

    queries_executed: int = 0
    documents_indexed: int = 0
    documents_removed: int = 0
    result_files_written: int = 0
    result_cache_hits: int = 0
    per_collection_queries: Dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def inc(self, name: str, amount: int = 1) -> None:
        """Atomically add ``amount`` to the counter called ``name``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def inc_collection_query(self, collection_name: str) -> None:
        """Atomically bump the per-collection query counter."""
        with self._lock:
            self.per_collection_queries[collection_name] = (
                self.per_collection_queries.get(collection_name, 0) + 1
            )

    def reset(self) -> None:
        with self._lock:
            self.queries_executed = 0
            self.documents_indexed = 0
            self.documents_removed = 0
            self.result_files_written = 0
            self.result_cache_hits = 0
            self.per_collection_queries = {}


@dataclass
class ResultCacheStats:
    """Attributed accounting for the engine's in-process result LRU.

    A lookup failure is exactly one of: a plain *miss* (never cached), an
    *epoch invalidation* (cached, but the index mutated since), or follows
    an *eviction* (LRU pressure) or a *drop* (``drop_collection``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    epoch_invalidations: int = 0
    dropped: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "epoch_invalidations": self.epoch_invalidations,
            "dropped": self.dropped,
            "hit_rate": self.hit_rate,
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.epoch_invalidations = 0
        self.dropped = 0


class IRSEngine:
    """A multi-collection IRS with exchangeable retrieval models."""

    def __init__(
        self,
        default_model: str = "inquery",
        analyzer: Optional[Analyzer] = None,
        result_cache_size: int = 128,
        segment_config: Optional[SegmentConfig] = None,
        shard_count: int = 0,
        shard_config: Optional[ShardConfig] = None,
    ) -> None:
        if default_model not in MODELS:
            raise UnknownModelError(
                f"unknown retrieval model {default_model!r}; know {sorted(MODELS)}"
            )
        self._collections: Dict[str, IRSCollection] = {}
        #: Lazy restart (single-file store): collections whose payload has
        #: not been touched yet.  ``collection()`` materializes on first
        #: access; until then only the name exists in memory.  Iteration
        #: paths that sweep ``_collections`` (segment info, merge backlog,
        #: memtable info) deliberately skip unmaterialized collections —
        #: an untouched collection has no memtable and no merge pressure.
        self._lazy_loaders: Dict[str, "Callable[[], IRSCollection]"] = {}
        self._default_model = default_model
        self._analyzer = analyzer
        #: Engine-created collections are segmented by default; pass
        #: ``SegmentConfig(enabled=False)`` for monolithic (baseline) mode.
        self.segment_config = segment_config or SegmentConfig()
        #: Default shard count for new collections (0 = unsharded).  The
        #: scatter executor is attached separately (see
        #: :meth:`attach_shard_executor`) — sharded collections without one
        #: score inline through the union view, still bit-exact.
        self.shard_count = shard_count
        self.shard_config = shard_config
        self._shard_executor: Optional[ShardExecutor] = None
        self._merge_scheduler: Optional[MergeScheduler] = None
        self.counters = EngineCounters()
        self.cache_stats = ResultCacheStats()
        #: Guards the collection registry and the per-collection lock table.
        self._registry_lock = threading.RLock()
        #: Per-collection readers-writer locks: queries read, index mutations
        #: write.  Acquired *after* any database locks (see repro.sync).
        self._collection_locks: Dict[str, ReadWriteLock] = {}
        #: Guards ``_result_cache`` and ``cache_stats`` — scoring itself runs
        #: outside this lock so a slow query never blocks cache hits.
        self._cache_lock = threading.RLock()
        #: In-process bounded LRU keyed by (collection, model, query); the
        #: stored entry remembers the index epoch it was computed at, so a
        #: lookup that finds a stale entry can be attributed as an *epoch
        #: invalidation* rather than a plain miss.  Complements — does not
        #: replace — the paper's persistent COLLECTION buffer (Section 4.2):
        #: that one survives process restarts and is invalidated by update
        #: propagation; this one only short-circuits repeated identical
        #: queries against an unchanged index within the current process.
        #: ``result_cache_size=0`` disables it.
        self._result_cache: "OrderedDict[Tuple[str, str, str], Tuple[int, Dict[int, float]]]" = OrderedDict()
        self._result_cache_size = max(0, result_cache_size)

    # -- concurrency ---------------------------------------------------------

    def rwlock(self, name: str) -> ReadWriteLock:
        """The readers-writer lock serializing access to collection ``name``.

        One lock per collection name, created on demand and kept across
        drop/recreate so in-flight holders never race a registry swap.
        """
        with self._registry_lock:
            lock = self._collection_locks.get(name)
            if lock is None:
                lock = ReadWriteLock()
                self._collection_locks[name] = lock
            return lock

    @contextmanager
    def reading(self, name: str) -> Iterator[None]:
        """Hold collection ``name``'s read lock (concurrent queries)."""
        with self.rwlock(name).reading():
            yield

    @contextmanager
    def mutating(self, name: str) -> Iterator[None]:
        """Hold collection ``name``'s write lock (index mutations)."""
        with self.rwlock(name).writing():
            yield

    @contextmanager
    def bulk_mutating(self, name: str) -> Iterator[None]:
        """Write lock plus epoch batching for a grouped mutation window.

        Every add/remove inside the context defers its epoch bump; the
        epoch advances once on exit if anything mutated, so a propagation
        window of N pending updates evicts epoch-keyed caches (statistics,
        result LRU, proximity, ResultSets) once instead of N times.  The
        coalesced bump is attributed to ``irs.index.epoch_bumps`` here
        because the per-operation engine methods observe a zero delta
        inside the batch.
        """
        collection = self.collection(name)
        with self.rwlock(name).writing():
            epoch_before = collection.index.epoch
            try:
                with collection.batched_epoch():
                    yield
            finally:
                delta = collection.index.epoch - epoch_before
                if delta:
                    obs.metrics().counter("irs.index.epoch_bumps").inc(delta)

    # -- collection management ----------------------------------------------

    def create_collection(
        self,
        name: str,
        analyzer: Optional[Analyzer] = None,
        shards: Optional[int] = None,
    ) -> IRSCollection:
        """Create an empty collection called ``name``.

        ``shards`` overrides the engine's default shard count for this
        collection (``None``: use the default; ``0``: force unsharded;
        ``>= 1``: that many hash shards, each with its own segment
        lifecycle).
        """
        count = self.shard_count if shards is None else shards
        with self._registry_lock:
            if name in self._collections or name in self._lazy_loaders:
                raise DuplicateCollectionError(f"IRS collection {name!r} already exists")
            if count and count >= 1:
                collection: IRSCollection = ShardedCollection(
                    name,
                    analyzer or self._analyzer,
                    segment_config=self.segment_config,
                    shard_count=count,
                )
            else:
                collection = IRSCollection(
                    name, analyzer or self._analyzer, segment_config=self.segment_config
                )
            self._collections[name] = collection
            return collection

    def drop_collection(self, name: str) -> None:
        """Delete a collection, its index, and its cached results."""
        with self._registry_lock:
            if name not in self._collections and name not in self._lazy_loaders:
                raise UnknownCollectionError(f"no IRS collection {name!r}")
            self._collections.pop(name, None)
            self._lazy_loaders.pop(name, None)
        if self._shard_executor is not None:
            self._shard_executor.drop_collection(name)
        # A later collection with the same name starts its index epoch from
        # scratch, so stale entries would otherwise be indistinguishable.
        with self._cache_lock:
            stale = [k for k in self._result_cache if k[0] == name]
            for key in stale:
                del self._result_cache[key]
            self.cache_stats.dropped += len(stale)
        obs.metrics().counter("irs.result_cache.dropped").inc(len(stale))
        logger.debug(
            "dropped IRS collection %r (%d cached results discarded)", name, len(stale)
        )

    def collection(self, name: str) -> IRSCollection:
        """Look up a collection by name (materializing a lazy one)."""
        collection = self._collections.get(name)
        if collection is not None:
            return collection
        with self._registry_lock:
            collection = self._collections.get(name)
            if collection is None:
                loader = self._lazy_loaders.pop(name, None)
                if loader is None:
                    raise UnknownCollectionError(f"no IRS collection {name!r}")
                started = time.perf_counter()
                try:
                    collection = loader()
                except BaseException:
                    # Leave the loader registered so a transient failure
                    # (e.g. a mid-pack read) can be retried.
                    self._lazy_loaders[name] = loader
                    raise
                self._collections[name] = collection
                registry = obs.metrics()
                registry.counter("store.lazy.materializations").inc()
                registry.rolling("store.materialize.seconds").observe(
                    time.perf_counter() - started
                )
            return collection

    def register_lazy_collection(self, name: str, loader) -> None:
        """Register ``name`` to be built by ``loader()`` on first touch."""
        with self._registry_lock:
            if name in self._collections:
                raise DuplicateCollectionError(
                    f"IRS collection {name!r} already exists"
                )
            self._lazy_loaders[name] = loader

    def is_lazy(self, name: str) -> bool:
        """True while ``name`` is registered but not yet materialized."""
        with self._registry_lock:
            return name in self._lazy_loaders

    def lazy_collection_names(self) -> List[str]:
        """Names registered for lazy load and still untouched, sorted."""
        with self._registry_lock:
            return sorted(self._lazy_loaders)

    def has_collection(self, name: str) -> bool:
        """True when ``name`` exists (materialized or lazy)."""
        return name in self._collections or name in self._lazy_loaders

    def collection_names(self) -> List[str]:
        """All collection names (materialized or lazy), sorted."""
        with self._registry_lock:
            return sorted(set(self._collections) | set(self._lazy_loaders))

    # -- indexing -------------------------------------------------------------

    def index_document(
        self, collection_name: str, text: str, metadata: Optional[Dict[str, str]] = None
    ) -> int:
        """Add one document to a collection; returns its IRS doc id."""
        collection = self.collection(collection_name)
        with self.mutating(collection_name):
            epoch_before = collection.index.epoch
            doc_id = collection.add_document(text, metadata)
            epoch_after = collection.index.epoch
        self.counters.inc("documents_indexed")
        registry = obs.metrics()
        registry.counter("irs.index.additions").inc()
        registry.counter("irs.index.epoch_bumps").inc(epoch_after - epoch_before)
        return doc_id

    def remove_document(self, collection_name: str, doc_id: int) -> None:
        """Remove one document from a collection."""
        collection = self.collection(collection_name)
        with self.mutating(collection_name):
            epoch_before = collection.index.epoch
            collection.remove_document(doc_id)
            epoch_after = collection.index.epoch
        self.counters.inc("documents_removed")
        registry = obs.metrics()
        registry.counter("irs.index.removals").inc()
        registry.counter("irs.index.epoch_bumps").inc(epoch_after - epoch_before)

    def replace_document(self, collection_name: str, doc_id: int, text: str) -> None:
        """Re-index one document with new text."""
        collection = self.collection(collection_name)
        with self.mutating(collection_name):
            epoch_before = collection.index.epoch
            collection.replace_document(doc_id, text)
            epoch_after = collection.index.epoch
        self.counters.inc("documents_indexed")
        registry = obs.metrics()
        registry.counter("irs.index.replacements").inc()
        registry.counter("irs.index.epoch_bumps").inc(epoch_after - epoch_before)

    # -- querying ---------------------------------------------------------------

    def query(
        self,
        collection_name: str,
        irs_query: str,
        model: Optional[str] = None,
        top_k: Optional[int] = None,
    ) -> IRSResult:
        """Evaluate ``irs_query`` against a collection (API exchange).

        With ``top_k`` the result holds only the best ``top_k`` documents
        (rank order: value descending, doc id ascending) — scored through
        the MaxScore/block-max pruned path of :mod:`repro.irs.topk` when
        the query shape allows it, identical scores guaranteed; otherwise
        exhaustively, then truncated.  The pruning decision is recorded on
        the ``irs.query`` span (``pruned`` / ``prune_fallback``), so it
        shows up in ``explain()`` output.
        """
        collection = self.collection(collection_name)
        model_name = model or self._default_model
        try:
            model_impl: RetrievalModel = MODELS[model_name]()
        except KeyError:
            raise UnknownModelError(
                f"unknown retrieval model {model_name!r}"
            ) from None
        self.counters.inc("queries_executed")
        self.counters.inc_collection_query(collection_name)
        registry = obs.metrics()
        registry.counter("irs.query.executed").inc()
        profile = active_profile()
        stats_before = collection.stats.cache_info() if profile is not None else None
        started = time.perf_counter()
        with obs.tracer().span(
            "irs.query", collection=collection_name, model=model_name,
            query=obs.trim(irs_query),
        ) as span:
            if top_k is not None:
                span.set_attribute("top_k", top_k)
            with self.reading(collection_name):
                # Captured under the read lock: the segment/epoch state the
                # scores were computed against, so a slow entry or .explain
                # can attribute a stall to a rebuild or a wide segment stack.
                epoch = collection.index.epoch
                segment_count = collection.segment_count
                values = self._query_values(
                    collection, collection_name, model_name, model_impl,
                    irs_query, span, top_k,
                )
            span.set_attribute("results", len(values))
            span.set_attribute("epoch", epoch)
            span.set_attribute("segments", segment_count)
        elapsed = time.perf_counter() - started
        registry.rolling("irs.query.seconds." + model_name).observe(elapsed)
        attrs = getattr(span, "attributes", None) or {}
        if profile is not None:
            profile.queries += 1
            profile.scoring_seconds += elapsed
            profile.segments_touched += segment_count
            # Term-statistics cache traffic attributed by delta.  Concurrent
            # queries on the same collection can bleed into each other's
            # delta; exact per-thread accounting would need a per-posting
            # hook, which the ≤5% overhead budget rules out.
            stats_after = collection.stats.cache_info()
            profile.stats_cache_hits += stats_after["hits"] - stats_before["hits"]
            profile.stats_cache_misses += (
                stats_after["misses"] - stats_before["misses"]
            )
        # The slow log carries the same attribution PR 5 put on the span:
        # k, the pruning outcome, and how wide the segment stack was.
        info: Dict[str, object] = dict(
            collection=collection_name, model=model_name,
            segments=segment_count, epoch=epoch,
        )
        if top_k is not None:
            info["top_k"] = top_k
            if attrs.get("cached"):
                info["outcome"] = "cached"
            elif attrs.get("pruned"):
                info["outcome"] = "pruned"
            elif "prune_fallback" in attrs:
                info["outcome"] = "fallback:" + str(attrs["prune_fallback"])
        elif attrs.get("cached"):
            info["outcome"] = "cached"
        if obs.slow_log().record("irs", irs_query, elapsed, **info):
            registry.counter("irs.query.slow").inc()
        return IRSResult(collection_name, irs_query, model_name, values)

    def _query_values(
        self,
        collection: IRSCollection,
        collection_name: str,
        model_name: str,
        model_impl: RetrievalModel,
        irs_query: str,
        span,
        top_k: Optional[int] = None,
    ) -> Dict[int, float]:
        """Cache lookup + scoring for :meth:`query`, with hit attribution.

        Runs under the collection's read lock (the caller holds it), so the
        index epoch cannot move mid-call.  The result-LRU probe and the
        store each take ``_cache_lock`` briefly; scoring itself runs outside
        it so one slow query never blocks concurrent cache hits.
        """
        registry = obs.metrics()
        profile = active_profile()
        epoch = collection.index.epoch
        # Top-k results are a different value set than full results, so the
        # cache key grows a k dimension (classic keys stay 3-tuples).
        if top_k is None:
            base_key = (collection_name, model_name, irs_query)
        else:
            base_key = (collection_name, model_name, irs_query, top_k)
        with self._cache_lock:
            entry = self._result_cache.get(base_key)
            if entry is not None:
                cached_epoch, cached_values = entry
                if cached_epoch == epoch:
                    self._result_cache.move_to_end(base_key)
                    self.counters.inc("result_cache_hits")
                    self.cache_stats.hits += 1
                    registry.counter("irs.result_cache.hits").inc()
                    span.set_attribute("cached", True)
                    if profile is not None:
                        profile.result_cache_hits += 1
                    # Hand out a copy so callers cannot poison the cached values.
                    return dict(cached_values)
                # Same query, but the index mutated since it was cached.
                del self._result_cache[base_key]
                self.cache_stats.epoch_invalidations += 1
                registry.counter("irs.result_cache.epoch_invalidations").inc()
            self.cache_stats.misses += 1
        registry.counter("irs.result_cache.misses").inc()
        span.set_attribute("cached", False)
        if profile is not None:
            profile.result_cache_misses += 1
        tree = parse_irs_query(irs_query, default_operator=model_impl.default_operator)
        if top_k is None:
            values = model_impl.score(collection, tree)
            if profile is not None:
                profile.candidates_scored += len(values)
        else:
            values = self._score_top_k(
                collection, model_name, model_impl, tree, irs_query,
                top_k, span, registry,
            )
        if self._result_cache_size > 0:
            with self._cache_lock:
                self._result_cache[base_key] = (epoch, dict(values))
                while len(self._result_cache) > self._result_cache_size:
                    self._result_cache.popitem(last=False)
                    self.cache_stats.evictions += 1
                    registry.counter("irs.result_cache.evictions").inc()
        return values

    def _score_top_k(
        self,
        collection: IRSCollection,
        model_name: str,
        model_impl: RetrievalModel,
        tree,
        irs_query: str,
        top_k: int,
        span,
        registry,
    ) -> Dict[int, float]:
        """Pruned top-k scoring with exhaustive fallback (read lock held)."""
        from repro.irs import topk as topk_mod

        executor = self._shard_executor
        if executor is not None and getattr(collection, "shards", None):
            scattered = executor.scatter_topk(
                collection, model_name, model_impl, tree, irs_query,
                top_k, span, registry,
            )
            if scattered is not None:
                values, counters = scattered
                span.set_attribute("pruned", True)
                span.set_attribute("candidates", counters["candidates_scored"])
                registry.counter("irs.topk.pruned_queries").inc()
                registry.counter("irs.postings.blocks_skipped").inc(
                    counters["blocks_skipped"]
                )
                registry.counter("irs.postings.blocks_decoded").inc(
                    counters["blocks_decoded"]
                )
                registry.counter("irs.topk.early_terminations").inc(
                    counters["early_terminations"]
                )
                profile = active_profile()
                if profile is not None:
                    profile.pruned_queries += 1
                    profile.blocks_skipped += counters["blocks_skipped"]
                    profile.blocks_decoded += counters["blocks_decoded"]
                    profile.early_terminations += counters["early_terminations"]
                    profile.candidates_scored += counters["candidates_scored"]
                return values
            # Scatter declined (non-prunable shape): the inline union path
            # below is exact for every model and query shape.
        outcome = topk_mod.topk_scores(collection, model_name, model_impl, tree, top_k)
        profile = active_profile()
        if outcome.values is not None:
            span.set_attribute("pruned", True)
            span.set_attribute("candidates", outcome.candidates_scored)
            registry.counter("irs.topk.pruned_queries").inc()
            registry.counter("irs.postings.blocks_skipped").inc(
                outcome.blocks_skipped
            )
            registry.counter("irs.postings.blocks_decoded").inc(
                outcome.blocks_decoded
            )
            registry.counter("irs.topk.early_terminations").inc(
                outcome.early_terminations
            )
            if profile is not None:
                profile.pruned_queries += 1
                profile.blocks_skipped += outcome.blocks_skipped
                profile.blocks_decoded += outcome.blocks_decoded
                profile.early_terminations += outcome.early_terminations
                profile.candidates_scored += outcome.candidates_scored
            return outcome.values
        # Structured operators (#and/#or/#not/#max), proximity leaves and
        # non-positive weights keep their exhaustive semantics; record why.
        span.set_attribute("pruned", False)
        span.set_attribute("prune_fallback", outcome.reason)
        registry.counter("irs.topk.fallbacks").inc()
        values = model_impl.score(collection, tree)
        if profile is not None:
            profile.fallback_queries += 1
            profile.candidates_scored += len(values)
        return topk_mod.truncate_top_k(values, top_k)

    # -- shard scatter executor ------------------------------------------------

    def attach_shard_executor(
        self, config: Optional[ShardConfig] = None
    ) -> ShardExecutor:
        """Attach (or return) the scatter-gather executor.

        Without one, sharded collections score inline through the union
        view — same exact scores, one process.  With one, prunable top-k
        queries fan out to per-shard worker processes.
        """
        with self._registry_lock:
            executor = self._shard_executor
            if executor is None:
                executor = ShardExecutor(config or self.shard_config)
                self._shard_executor = executor
            return executor

    @property
    def shard_executor(self) -> Optional[ShardExecutor]:
        return self._shard_executor

    def shutdown_shards(self) -> None:
        """Close the scatter executor and all its worker pools."""
        with self._registry_lock:
            executor = self._shard_executor
            self._shard_executor = None
        if executor is not None:
            executor.close()

    def shard_info(self) -> Dict[str, Dict[str, object]]:
        """Per-collection shard layout and document skew, for ``health()``.

        ``skew`` is max/mean documents per shard (1.0 = perfectly even,
        0.0 for an empty collection); hash routing keeps it near 1.
        """
        info: Dict[str, Dict[str, object]] = {}
        for name, collection in sorted(self._collections.items()):
            if not getattr(collection, "shards", None):
                continue
            counts = collection.shard_document_counts()
            mean = sum(counts) / len(counts) if counts else 0.0
            info[name] = {
                "shards": collection.shard_count,
                "documents": counts,
                "skew": (max(counts) / mean) if mean else 0.0,
            }
        return info

    # -- segment maintenance ---------------------------------------------------

    def compact_collection(self, name: str) -> bool:
        """Fold all of ``name``'s segments into one, purging tombstones.

        Runs under the collection write lock; content-preserving, so the
        epoch (and every cache keyed on it) is untouched.  Returns True
        when a merge happened (False for monolithic collections or a
        single clean segment).
        """
        collection = self.collection(name)
        with self.mutating(name):
            return collection.compact()

    def start_merge_scheduler(self, interval: Optional[float] = None) -> MergeScheduler:
        """Start (or return) the background size-tiered merge scheduler."""
        scheduler = self._merge_scheduler
        if scheduler is None:
            scheduler = MergeScheduler(self, interval)
            self._merge_scheduler = scheduler
        scheduler.start()
        return scheduler

    def stop_merge_scheduler(self) -> None:
        """Stop the background merge scheduler if it is running."""
        if self._merge_scheduler is not None:
            self._merge_scheduler.stop()

    @property
    def merge_scheduler_running(self) -> bool:
        """True while the background merge scheduler thread is alive."""
        scheduler = self._merge_scheduler
        return bool(scheduler is not None and scheduler.running)

    def merge_backlog(self) -> int:
        """Sealed segments the size-tiered policy would merge right now.

        A health signal: a persistently non-zero backlog means sealing is
        outpacing the scheduler and reads are fanning out over ever more
        segments.  Racy by design — a point-in-time read without locks.
        """
        from repro.irs.segments.merge import select_candidates

        backlog = 0
        for collection in list(self._collections.values()):
            for manager in collection.segment_managers():
                backlog += len(select_candidates(manager))
        return backlog

    def total_segments(self) -> int:
        """Segments across all collections (monolithic collections count 1)."""
        return sum(
            collection.segment_count
            for collection in list(self._collections.values())
        )

    def memtable_info(self) -> Dict[str, int]:
        """Unsealed (memtable) volume across collections, for health reports."""
        documents = tokens = approx_bytes = 0
        for collection in list(self._collections.values()):
            for manager in collection.segment_managers():
                memtable = manager.memtable
                documents += memtable.document_count
                tokens += memtable.token_count
                approx_bytes += memtable.approx_bytes()
        return {"documents": documents, "tokens": tokens, "bytes": approx_bytes}

    def segment_info(self) -> Dict[str, Dict[str, object]]:
        """Per-manager segment snapshots (shards appear as ``name#i``)."""
        info: Dict[str, Dict[str, object]] = {}
        for _name, collection in sorted(self._collections.items()):
            for manager in collection.segment_managers():
                info[manager.name] = manager.info()
        return info

    def statistics_cache_info(self) -> Dict[str, Dict[str, int]]:
        """Per-collection :meth:`StatisticsCache.cache_info` snapshots."""
        return {
            name: collection.stats.cache_info()
            for name, collection in sorted(self._collections.items())
        }

    def reset_cache_stats(self) -> None:
        """Zero the result-LRU stats and every statistics cache's counters."""
        self.cache_stats.reset()
        for collection in self._collections.values():
            collection.stats.reset_cache_info()

    def query_to_file(
        self,
        collection_name: str,
        irs_query: str,
        path: str,
        metadata_key: str = "oid",
        model: Optional[str] = None,
    ) -> str:
        """Evaluate a query and write the paper's result-file format.

        Each line is ``<metadata-value>\\t<IRS value>``; documents without
        the metadata key fall back to ``doc:<id>``.  Returns ``path``.
        """
        result = self.query(collection_name, irs_query, model)
        collection = self.collection(collection_name)
        lines = []
        for doc_id, value in result.ranked():
            key = collection.document(doc_id).metadata.get(metadata_key, f"doc:{doc_id}")
            lines.append(f"{key}\t{value:.6f}")
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
            if lines:
                fh.write("\n")
        os.replace(tmp_path, path)
        self.counters.inc("result_files_written")
        return path


def parse_result_file(path: str) -> Dict[str, float]:
    """Parse a result file written by :meth:`IRSEngine.query_to_file`.

    This is the "parsed afterwards to extract the OID-relevance value pairs"
    step of Section 4.5.
    """
    values: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            key, _sep, value = line.partition("\t")
            values[key] = float(value)
    return values
