"""MaxScore/block-max top-k early termination over the cursor protocol.

The exhaustive engine walks every posting of every query term; this module
answers "give me the best ``k``" while *provably* returning the same top-k
ranking and the same scores (the safe-up-to-k contract):

* terms are ordered by their maximum possible score contribution and split
  into **essential** and **non-essential** lists against the running top-k
  threshold (Turtle & Flood's MaxScore) — documents appearing only in
  non-essential lists can never enter the heap and are never visited;
* candidates surface document-at-a-time from the essential cursors, with
  per-block upper bounds checked *before* a block is decoded (Block-Max);
  a whole block whose bound cannot reach the threshold is skipped through
  the skip entries (``irs.postings.blocks_skipped``);
* when even the sum of all remaining bounds cannot reach the threshold the
  segment's evaluation stops outright (``irs.topk.early_terminations``).

Impacts are exact, not estimated.  One decode sweep per (model, term,
index version) computes the per-document score contribution per unit of
query weight ("impact") of the current epoch, kept as per-block arrays
aligned with the cursor's physical positions and memoized in an impact
cache.  Candidate screening then needs one array lookup and one float
compare per posting — and upper bounds built from *actual* impacts (not
block maxima) make the non-essential probes nearly tight.

Exactness.  Screening compares bounds against a threshold deflated by one
part in 10^7 (:data:`CUT_SCALE`): a candidate is skipped only when its
bound is *clearly* below the k-th score, so float re-association between
the bound sum and the real accumulation can never skip a qualifying
document, while ties at the k-th score are always evaluated.  Survivors
are scored with bit-identical arithmetic to the exhaustive models (same
expressions, same accumulation order), and ties resolve by the same
``(-value, doc_id)`` order :meth:`IRSResult.ranked` uses — so the pruned
top-k equals ``exhaustive.ranked()[:k]`` exactly, not just approximately.

Eligibility.  Only flat ``#sum``/``#wsum`` shapes over plain positive-
weight terms qualify (vector additionally accepts any operator nesting it
would flatten anyway, except ``#not``); structured operators, proximity
leaves, and negative weights fall back to exhaustive scoring + truncation,
with the decision recorded on the query span (visible in ``explain()``).
"""

from __future__ import annotations

import heapq
import math
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.irs.inverted_index import InvertedIndex
from repro.irs.models.base import (
    CompiledOperator,
    CompiledProximity,
    compile_query,
)
from repro.irs.postings import BLOCK_SIZE, CompactIndex
from repro.irs.queries import OperatorNode, ProximityNode, QueryNode
from repro.irs.segments.segment import MemtableSegment, SealedSegment

#: Relative deflation applied to the pruning threshold.  A candidate is
#: skipped only when its upper bound falls below ``theta * CUT_SCALE`` (in
#: the model's contribution space); one part in 10^7 dwarfs any float
#: re-association error between a bound sum and the exhaustive
#: accumulation while costing nothing measurable in pruning power.
CUT_SCALE = 1.0 - 1e-7

#: Impact-cache entries per collection before a wholesale reset (a simple
#: bound on memory for adversarial query streams, not an LRU).  Entries
#: hold per-posting float arrays, so the cap is deliberately modest.
_IMPACT_CACHE_LIMIT = 512


@dataclass
class TopKOutcome:
    """What the pruned path produced (or why it declined)."""

    values: Optional[Dict[int, float]]  #: None => caller must fall back
    reason: Optional[str] = None  #: fallback reason when values is None
    blocks_skipped: int = 0
    blocks_decoded: int = 0  #: blocks whose positions were actually screened
    early_terminations: int = 0
    candidates_scored: int = 0


# ---------------------------------------------------------------------------
# Eligibility
# ---------------------------------------------------------------------------

def _vector_plan(collection, model_impl, tree) -> Tuple[Optional[list], Optional[str]]:
    """Ordered ``(term, query_weight)`` pairs for a prunable vector query."""

    def reject(node) -> Optional[str]:
        if isinstance(node, ProximityNode):
            return "proximity"
        if isinstance(node, OperatorNode):
            if node.op == "not":
                return "operator:not"
            for child in node.children:
                reason = reject(child)
                if reason:
                    return reason
        return None

    reason = reject(tree)
    if reason:
        return None, reason
    # Same flattening the exhaustive path performs (shared code path, so
    # term order — and hence accumulation order — is identical).
    query_vector = model_impl._query_vector(collection, tree)
    if any(weight <= 0 for weight in query_vector.values()):
        return None, "weights"
    return list(query_vector.items()), None


def _inquery_plan(collection, model_impl, tree) -> Tuple[Optional[list], Optional[str]]:
    """Ordered ``(weight, analyzed-term-or-None)`` leaves for inquery."""
    compiled = compile_query(collection, tree)
    flat = model_impl._flat_linear(compiled)
    if flat is None:
        if isinstance(compiled, CompiledOperator) and compiled.op not in (
            "sum",
            "wsum",
        ):
            return None, "operator:" + compiled.op
        return None, "structure"
    if any(isinstance(leaf, CompiledProximity) for _w, leaf in flat):
        return None, "proximity"
    if any(weight <= 0 for weight, _leaf in flat):
        return None, "weights"
    return [(weight, leaf.term) for weight, leaf in flat], None


# ---------------------------------------------------------------------------
# Impact cache: exact per-posting impacts, one sweep per index version
# ---------------------------------------------------------------------------

def _sources(collection) -> list:
    """The scoring units: sealed segments + memtable, or the one index.

    Collections with their own physical layout (the sharded union) expose
    a ``topk_sources`` hook returning their flattened scoring units; each
    shard's segments then share the one global heap, so the MaxScore
    threshold raises across shard boundaries exactly as it does across
    segments.
    """
    provider = getattr(collection, "topk_sources", None)
    if provider is not None:
        return provider()
    manager = collection.segments
    if manager is not None:
        return [*manager.sealed_segments(), manager.memtable]
    return [collection.index]


def _source_cursor(source, term):
    if isinstance(source, InvertedIndex):
        return source.cursor(term)
    return source.term_cursor(term)


def _block_raw(source, term):
    """Per-block ``(doc_ids, tfs, live_or_None)`` in cursor alignment.

    Alignment matters: block ``b``, offset ``i`` here is exactly
    ``(cursor.block, cursor.position_in_block)`` of the cursor
    :func:`_source_cursor` returns for the same source — the compact
    form's physical blocks (tombstoned positions kept; the third element
    is the live-doc filter to apply), the dict form's virtual
    :data:`BLOCK_SIZE` runs (pre-filtered, so the filter is None).
    """
    if isinstance(source, SealedSegment):
        index = source.index
        if isinstance(index, CompactIndex):
            compact = index.compact_postings(term)
            if compact is None:
                return
            live = source.forward if source._dead_df.get(term) else None
            for block in range(compact.block_count):
                ids, tfs = compact.decode_block(block)
                yield ids, tfs, live
            return
        postings = source.live_postings(term)
    elif isinstance(source, MemtableSegment):
        postings = source.index.postings(term)
    else:
        postings = source.postings(term)
    for start in range(0, len(postings), BLOCK_SIZE):
        run = postings[start : start + BLOCK_SIZE]
        yield [p.doc_id for p in run], [p.tf for p in run], None


def _impact_cache(collection) -> dict:
    cache = getattr(collection, "_topk_impact_cache", None)
    if cache is None:
        cache = {"lock": threading.Lock(), "entries": {}}
        collection._topk_impact_cache = cache
    return cache


def _index_version(collection) -> tuple:
    provider = getattr(collection, "topk_version", None)
    if provider is not None:
        return provider()
    manager = collection.segments
    if manager is not None:
        return manager.version
    return (collection.index.epoch,)


def _term_impacts(
    collection,
    cache_key: tuple,
    term: str,
    unit_impact: Callable[[int, int], float],
) -> Dict[int, tuple]:
    """``id(source) -> (max_u, block_maxes, block_us, block_ids,
    block_tfs, probe)`` for one term.

    ``unit_impact(doc_id, tf)`` is the model's per-occurrence impact (the
    score contribution per unit of query weight).  The sweep decodes each
    live posting once per index version and derives two aligned views:
    per-block arrays — impacts, doc ids, tfs, position-aligned so list
    scans never touch the encoded bytes again (tombstoned positions carry
    impact 0.0) — and the ``probe`` map ``doc_id -> (u, tf)`` for O(1)
    membership probes against the other query terms.  Results are
    memoized until any content or structure change moves the version.
    """
    cache = _impact_cache(collection)
    version = _index_version(collection)
    with cache["lock"]:
        entry = cache["entries"].get(cache_key)
        if entry is not None and entry[0] == version:
            return entry[1]
    per_source: Dict[int, tuple] = {}
    for source in _sources(collection):
        block_us: List[List[float]] = []
        block_maxes: List[float] = []
        block_ids: List[List[int]] = []
        block_tfs: List[List[int]] = []
        probe: Dict[int, tuple] = {}
        for ids, tfs, live in _block_raw(source, term):
            us: List[float] = []
            for doc_id, tf in zip(ids, tfs):
                if live is not None and doc_id not in live:
                    us.append(0.0)
                    continue
                u = unit_impact(doc_id, tf)
                us.append(u)
                probe[doc_id] = (u, tf)
            block_us.append(us)
            block_maxes.append(max(us) if us else 0.0)
            block_ids.append(ids)
            block_tfs.append(tfs)
        if block_maxes:
            max_u = max(block_maxes)
            if max_u > 0.0:
                per_source[id(source)] = (
                    max_u,
                    block_maxes,
                    block_us,
                    block_ids,
                    block_tfs,
                    probe,
                )
    with cache["lock"]:
        entries = cache["entries"]
        if len(entries) >= _IMPACT_CACHE_LIMIT:
            entries.clear()
        entries[cache_key] = (version, per_source)
    return per_source


# ---------------------------------------------------------------------------
# The MaxScore / block-max DAAT core
# ---------------------------------------------------------------------------

@dataclass
class _TermList:
    """One term's cursor within one segment, with its exact impact arrays."""

    term: str
    cursor: object
    weight: float  #: combined query weight
    ub: float  #: weight * max impact over the whole list
    block_maxes: List[float]  #: per-block max impact (unweighted)
    block_us: List[List[float]]  #: per-block impact per physical position
    block_ids: List[List[int]]  #: per-block doc ids (cursor-aligned)
    block_tfs: List[List[int]]  #: per-block tfs (cursor-aligned)
    probe: Dict[int, tuple]  #: live doc_id -> (impact, tf) membership map
    live: Optional[dict]  #: live-doc filter for batch scans (None: all live)


_NEG_INF = float("-inf")


def _score_segment(
    lists: List[_TermList],
    k: int,
    heap: List[Tuple[float, int]],
    score_candidate: Callable[[int, Dict[str, int]], Optional[float]],
    cut_of: Callable[[float], float],
    outcome: TopKOutcome,
    floor_cut: float = _NEG_INF,
) -> None:
    """Run MaxScore over one segment, sharing the global top-k heap.

    Lists are scanned strongest (highest upper bound) first.  A document
    is *considered* exactly once — in the strongest query-term list that
    contains it; weaker lists skip it via an O(1) probe into the stronger
    lists' impact maps.  Scanning stops at the classic MaxScore boundary:
    once the summed upper bounds of the unscanned lists fall below the
    threshold, no unseen document can qualify (every document they would
    surface is either already considered or bounded out).

    A scan walks the cursor-aligned impact arrays block by block (the
    impact cache decoded them once per index version, so the encoded
    bytes are never touched here): a block whose max impact cannot reach
    the threshold is hopped over through its skip entry — that is the
    block-max skip ``irs.postings.blocks_skipped`` counts — and each
    position of a visited block is screened with one compare against the
    threshold translated into the list's impact space.  Survivors probe
    the other lists for their exact impacts, tightening the bound term
    by term (the one- and two-probe shapes, which dominate real query
    mixes, are unrolled straight-line), and only candidates whose bound
    still reaches the threshold are scored exactly.

    All bound arithmetic happens in the model's *contribution space* (the
    raw weighted-impact sum, before any final transform); ``cut_of`` maps
    the k-th heap value into that space, deflated by :data:`CUT_SCALE`.
    Until the heap holds ``k`` entries the cut is ``floor_cut`` (``-inf``
    unless a caller seeds one); a candidate is skipped only when its bound
    falls *clearly* below the k-th score, so ties at the threshold are
    always evaluated.  ``floor_cut`` is the sharded scatter path's seed: a
    failed shard re-scored inline starts from the already-merged k-th
    value (deflated by :data:`CUT_SCALE`), never below it — exact, because
    anything bounded under the global k-th cannot enter the global top-k.
    """
    lists.sort(key=lambda tl: tl.ub, reverse=True)
    m = len(lists)
    total_ub = sum(tl.ub for tl in lists)
    if len(heap) >= k:
        cut = cut_of(heap[0][0])
        if cut < floor_cut:
            cut = floor_cut
    else:
        cut = floor_cut
    heap_len = len(heap)
    heappush = heapq.heappush
    heapreplace = heapq.heapreplace
    remaining = total_ub  # summed ubs of lists[li:], the unscanned tail
    for li, lead in enumerate(lists):
        if remaining < cut:
            # MaxScore boundary: the unscanned lists are non-essential —
            # every document they hold is already considered or bounded out.
            outcome.early_terminations += 1
            break
        wl = lead.weight
        lead_term = lead.term
        block_maxes = lead.block_maxes
        block_us = lead.block_us
        block_ids = lead.block_ids
        block_tfs = lead.block_tfs
        live = lead.live
        # Probe order is ub-descending with the already-scanned (stronger)
        # lists first: a hit in one of those means the document was
        # already considered during that list's scan, and a miss removes
        # the largest remaining slack from the bound fastest.
        probes = [
            (tl.probe.get, tl.ub, tl.weight, tl.term, j < li)
            for j, tl in enumerate(lists)
            if j != li
        ]
        n_probes = m - 1
        if n_probes >= 1:
            get_1, ub_1, w_1, term_1, scanned_1 = probes[0]
        if n_probes >= 2:
            get_2, ub_2, w_2, term_2, scanned_2 = probes[1]
        rest = total_ub - lead.ub
        t = (cut - rest) / wl
        skipped = 0
        for b in range(len(block_us)):
            if block_maxes[b] < t:
                skipped += 1
                continue
            us = block_us[b]
            ids = block_ids[b]
            tfs = block_tfs[b]
            for i, u in enumerate(us):
                if u < t:
                    continue
                doc = ids[i]
                if live is not None and doc not in live:
                    continue
                if n_probes == 0:
                    # u >= t already proves wl*u reaches the cut.
                    tf_map = {lead_term: tfs[i]}
                elif n_probes == 1:
                    hit = get_1(doc)
                    if hit is None:
                        # rest == ub_1 here, so the bound collapses to wl*u.
                        if wl * u < cut:
                            continue
                        tf_map = {lead_term: tfs[i]}
                    else:
                        if scanned_1:
                            continue
                        if wl * u + w_1 * hit[0] < cut:
                            continue
                        tf_map = {lead_term: tfs[i], term_1: hit[1]}
                elif n_probes == 2:
                    bound = rest + wl * u - ub_1
                    hit_1 = get_1(doc)
                    if hit_1 is not None:
                        if scanned_1:
                            continue
                        bound += w_1 * hit_1[0]
                    if bound < cut:
                        continue
                    bound -= ub_2
                    hit_2 = get_2(doc)
                    if hit_2 is not None:
                        if scanned_2:
                            continue
                        bound += w_2 * hit_2[0]
                    if bound < cut:
                        continue
                    tf_map = {lead_term: tfs[i]}
                    if hit_1 is not None:
                        tf_map[term_1] = hit_1[1]
                    if hit_2 is not None:
                        tf_map[term_2] = hit_2[1]
                else:
                    bound = rest + wl * u
                    viable = True
                    matched = None
                    for probe_get, ub_o, w_o, term_o, scanned in probes:
                        bound -= ub_o
                        hit = probe_get(doc)
                        if hit is not None:
                            if scanned:
                                # Already considered in that list's scan.
                                viable = False
                                break
                            bound += w_o * hit[0]
                            if matched is None:
                                matched = []
                            matched.append((term_o, hit[1]))
                        if bound < cut:
                            viable = False
                            break
                    if not viable:
                        continue
                    tf_map = {lead_term: tfs[i]}
                    if matched:
                        tf_map.update(matched)
                value = score_candidate(doc, tf_map)
                outcome.candidates_scored += 1
                if value is None:
                    continue
                entry = (value, -doc)
                if heap_len < k:
                    heappush(heap, entry)
                    heap_len += 1
                    if heap_len < k:
                        continue
                elif entry > heap[0]:
                    heapreplace(heap, entry)
                else:
                    continue
                cut = cut_of(heap[0][0])
                if cut < floor_cut:
                    cut = floor_cut
                t = (cut - rest) / wl
        outcome.blocks_skipped += skipped
        outcome.blocks_decoded += len(block_us) - skipped
        remaining -= lead.ub


# ---------------------------------------------------------------------------
# Model adapters
# ---------------------------------------------------------------------------

def _run(
    collection,
    k: int,
    weighted_terms: List[Tuple[str, float]],
    impacts_of: Callable[[str], Dict[int, tuple]],
    score_candidate,
    cut_of,
    floor_cut: float = _NEG_INF,
) -> TopKOutcome:
    """Shared driver: build per-segment term lists, score segment by segment.

    Documents are unique across live segments, so running the segments
    sequentially against one shared heap scores every live document at
    most once — and segments after the first start with a warm threshold.
    """
    outcome = TopKOutcome(values={})
    heap: List[Tuple[float, int]] = []
    sources = _sources(collection)
    impact_maps = {term: impacts_of(term) for term, _w in weighted_terms}
    for source in sources:
        lists: List[_TermList] = []
        for term, weight in weighted_terms:
            per_source = impact_maps[term].get(id(source))
            if per_source is None:
                continue
            max_u, block_maxes, block_us, block_ids, block_tfs, probe = per_source
            cursor = _source_cursor(source, term)
            if cursor is None:
                continue
            lists.append(
                _TermList(
                    term=term,
                    cursor=cursor,
                    weight=weight,
                    ub=weight * max_u,
                    block_maxes=block_maxes,
                    block_us=block_us,
                    block_ids=block_ids,
                    block_tfs=block_tfs,
                    probe=probe,
                    live=getattr(cursor, "_live", None),
                )
            )
        if lists:
            _score_segment(
                lists, k, heap, score_candidate, cut_of, outcome, floor_cut
            )
    outcome.values = {-neg_doc: value for value, neg_doc in heap}
    return outcome


def _vector_outcome(
    collection, model_impl, tree, k: int, floor_value: Optional[float] = None
) -> TopKOutcome:
    entries, reason = _vector_plan(collection, model_impl, tree)
    if entries is None:
        return TopKOutcome(values=None, reason=reason)
    stats = collection.stats
    scored = [
        (term, weight, stats.idf(term))
        for term, weight in entries
        if stats.idf(term) != 0.0
    ]
    if not scored:
        return TopKOutcome(values={})
    query_norm = math.sqrt(sum(w * w for _t, w in entries))
    idf_by_term = {term: idf for term, _w, idf in scored}

    def impacts_of(term: str) -> Dict[int, tuple]:
        idf = idf_by_term[term]
        document_norm = stats.document_norm
        log = math.log

        def unit_impact(doc_id: int, tf: int) -> float:
            norm = document_norm(doc_id)
            if norm <= 0.0:
                return 0.0
            return (1.0 + log(tf)) * idf / norm

        return _term_impacts(collection, ("vector", term), term, unit_impact)

    def score_candidate(doc_id: int, tf_map: Dict[str, int]) -> Optional[float]:
        # Bit-identical to VectorSpaceModel.score: same expressions, same
        # per-document accumulation order (query-vector term order).
        dot = 0.0
        for term, weight, idf in scored:
            tf = tf_map.get(term)
            if tf:
                dot += weight * (1.0 + math.log(tf)) * idf
        if dot <= 0.0:
            return None
        doc_norm = stats.document_norm(doc_id)
        if doc_norm <= 0.0:
            return None
        value = dot / (doc_norm * query_norm)
        return min(1.0, value)

    # Contribution space is value space: impacts carry 1/doc_norm, the
    # weights below carry 1/query_norm, and the min(1, .) cap only ever
    # lowers a score further below its bound.
    weighted = [(term, weight / query_norm) for term, weight, _idf in scored]

    def cut_of(theta: float) -> float:
        return theta * CUT_SCALE

    floor_cut = cut_of(floor_value) if floor_value is not None else _NEG_INF
    return _run(
        collection, k, weighted, impacts_of, score_candidate, cut_of, floor_cut
    )


def _inquery_outcome(
    collection, model_impl, tree, k: int, floor_value: Optional[float] = None
) -> TopKOutcome:
    leaves, reason = _inquery_plan(collection, model_impl, tree)
    if leaves is None:
        return TopKOutcome(values=None, reason=reason)
    stats = collection.stats
    index = collection.index
    db = model_impl._db
    one_minus_db = 1.0 - db
    total_weight = sum(weight for weight, _term in leaves)
    avg_dl = stats.average_document_length or 1.0
    # Leaves kept for scoring: real terms with evidence capacity.  Stopped
    # and zero-idf leaves contribute exactly 0.0 excess (their belief is
    # the default belief bit-for-bit), so dropping them from the loop
    # cannot change any accumulated float — but their weight stays in W.
    idf_parts: Dict[str, float] = {}
    scoring_leaves: List[Tuple[float, str]] = []
    for weight, term in leaves:
        if term is None:
            continue
        idf_part = idf_parts.get(term)
        if idf_part is None:
            idf_part = idf_parts[term] = stats.inquery_idf(term)
        if idf_part > 0.0:
            scoring_leaves.append((weight, term))
    if not scoring_leaves:
        return TopKOutcome(values={})
    combined_weight: Dict[str, float] = {}
    for weight, term in scoring_leaves:
        combined_weight[term] = combined_weight.get(term, 0.0) + weight
    document_length = index.document_length

    def impacts_of(term: str) -> Dict[int, tuple]:
        idf_part = idf_parts[term]

        def unit_impact(doc_id: int, tf: int) -> float:
            dl = document_length(doc_id)
            tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
            return one_minus_db * tf_part * idf_part

        return _term_impacts(collection, ("inquery", db, term), term, unit_impact)

    def score_candidate(doc_id: int, tf_map: Dict[str, int]) -> Optional[float]:
        # Bit-identical to _score_term_at_a_time + _term_belief_map: same
        # belief expression, same leaf-order accumulation.
        acc = 0.0
        for weight, term in scoring_leaves:
            tf = tf_map.get(term)
            if not tf:
                continue
            dl = document_length(doc_id)
            tf_part = tf / (tf + 0.5 + 1.5 * dl / avg_dl)
            belief = db + one_minus_db * tf_part * idf_parts[term]
            acc += weight * (belief - db)
        if acc <= 0.0:
            return None
        return db + acc / total_weight

    # Contribution space is the weighted-excess sum (the accumulator of
    # the exhaustive TAAT loop); the k-th *value* maps back through the
    # final ``db + acc / W`` transform.
    def cut_of(theta: float) -> float:
        return (theta - db) * total_weight * CUT_SCALE

    weighted = list(combined_weight.items())
    floor_cut = cut_of(floor_value) if floor_value is not None else _NEG_INF
    return _run(
        collection, k, weighted, impacts_of, score_candidate, cut_of, floor_cut
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def topk_scores(
    collection,
    model_name: str,
    model_impl,
    tree: QueryNode,
    k: int,
    floor_value: Optional[float] = None,
) -> TopKOutcome:
    """Score the best ``k`` documents with early termination when possible.

    Returns an outcome whose ``values`` is the exact top-k score dict (the
    safe-up-to-k contract versus the exhaustive engine), or ``None`` with a
    ``reason`` when the query shape or model is not prunable — the caller
    then runs the exhaustive path and truncates.  Must be called under the
    collection's read lock (same contract as model scoring).

    ``floor_value`` seeds the pruning threshold with an externally known
    lower bound on the global k-th *score* (the sharded scatter-gather
    merge uses this when re-scoring a failed shard inline).  Documents
    bounded strictly below it are skipped even before the local heap holds
    ``k`` entries, so the outcome may carry fewer than ``k`` values — every
    omitted document is provably below the seeded k-th score.
    """
    if k <= 0:
        return TopKOutcome(values={})
    if model_name == "vector":
        return _vector_outcome(collection, model_impl, tree, k, floor_value)
    if model_name == "inquery":
        return _inquery_outcome(collection, model_impl, tree, k, floor_value)
    return TopKOutcome(values=None, reason="model:" + model_name)


def truncate_top_k(values: Dict[int, float], k: int) -> Dict[int, float]:
    """The exhaustive fallback's tail: keep the best ``k`` by rank order."""
    if len(values) <= k:
        return values
    ranked = sorted(values.items(), key=lambda kv: (-kv[1], kv[0]))
    return dict(ranked[:k])
