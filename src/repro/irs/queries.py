"""The IRS query language.

INQUERY-style structured queries: bare terms and ``#operator(...)`` nodes::

    WWW
    telnet protocol
    #and(WWW NII)
    #or(#and(www nii) telnet)
    #wsum(2 www 1 nii)
    #not(telnet)

Bare multi-term queries combine with a model-dependent default operator
(``#sum`` for the weighted models, ``#and`` for the boolean model).  Terms
are analyzed with the *collection's* analyzer at evaluation time so query
terms meet indexed terms in the same form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import re

from repro.errors import IRSQuerySyntaxError, UnknownOperatorError

KNOWN_OPERATORS = ("and", "or", "not", "sum", "wsum", "max")

#: ``#od3`` / ``#uw5`` — ordered/unordered window with width N.
_PROXIMITY_PATTERN = re.compile(r"(od|uw)(\d+)")


@dataclass(frozen=True)
class TermNode:
    """A single query term (raw; analysis happens at evaluation)."""

    term: str

    def terms(self) -> List[str]:
        return [self.term]


@dataclass(frozen=True)
class OperatorNode:
    """An ``#op(children)`` node.  ``weights`` is only used by #wsum."""

    op: str
    children: Tuple[object, ...]
    weights: Tuple[float, ...] = field(default=())

    def terms(self) -> List[str]:
        result: List[str] = []
        for child in self.children:
            result.extend(child.terms())
        return result


@dataclass(frozen=True)
class ProximityNode:
    """``#odN(t1 t2 ...)`` / ``#uwN(t1 t2 ...)`` — window operators.

    ``ordered`` selects the ordered (#od) vs unordered (#uw) semantics;
    ``window`` is the N from the operator name; operands must be terms.
    """

    ordered: bool
    window: int
    term_nodes: Tuple["TermNode", ...]

    def terms(self) -> List[str]:
        return [node.term for node in self.term_nodes]


QueryNode = object  # TermNode | OperatorNode


def parse_irs_query(text: str, default_operator: str = "sum") -> QueryNode:
    """Parse ``text`` into a query tree.

    Raises :class:`IRSQuerySyntaxError` on malformed input and
    :class:`UnknownOperatorError` for an unrecognized ``#op``.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise IRSQuerySyntaxError("empty IRS query")
    parser = _Parser(tokens)
    nodes = []
    while not parser.at_end():
        nodes.append(parser.parse_node())
    if len(nodes) == 1:
        return nodes[0]
    if default_operator not in KNOWN_OPERATORS:
        raise UnknownOperatorError(f"unknown default operator {default_operator!r}")
    return OperatorNode(default_operator, tuple(nodes))


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace() or ch == ",":
            i += 1
            continue
        if ch in "()":
            tokens.append(ch)
            i += 1
            continue
        j = i
        while j < n and not text[j].isspace() and text[j] not in "(),":
            j += 1
        tokens.append(text[i:j])
        i = j
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    def _peek(self) -> Optional[str]:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else None

    def _next(self) -> str:
        token = self._peek()
        if token is None:
            raise IRSQuerySyntaxError("unexpected end of IRS query")
        self._pos += 1
        return token

    def parse_node(self) -> QueryNode:
        token = self._next()
        if token.startswith("#"):
            op = token[1:].lower()
            proximity = _PROXIMITY_PATTERN.fullmatch(op)
            if proximity is not None:
                return self._parse_proximity(
                    ordered=proximity.group(1) == "od",
                    window=int(proximity.group(2)),
                )
            if op not in KNOWN_OPERATORS:
                raise UnknownOperatorError(f"unknown IRS operator #{op}")
            if self._next() != "(":
                raise IRSQuerySyntaxError(f"expected '(' after #{op}")
            if op == "wsum":
                return self._parse_wsum()
            children: List[QueryNode] = []
            while self._peek() != ")":
                if self._peek() is None:
                    raise IRSQuerySyntaxError(f"unterminated #{op}(...)")
                children.append(self.parse_node())
            self._next()  # consume ")"
            if not children:
                raise IRSQuerySyntaxError(f"#{op}() needs at least one operand")
            if op == "not" and len(children) != 1:
                raise IRSQuerySyntaxError("#not takes exactly one operand")
            return OperatorNode(op, tuple(children))
        if token in ("(", ")"):
            raise IRSQuerySyntaxError(f"unexpected {token!r} in IRS query")
        return TermNode(token)

    def _parse_proximity(self, ordered: bool, window: int) -> "ProximityNode":
        if window < 1:
            raise IRSQuerySyntaxError("proximity window must be >= 1")
        kind = "od" if ordered else "uw"
        if self._next() != "(":
            raise IRSQuerySyntaxError(f"expected '(' after #{kind}{window}")
        term_nodes = []
        while self._peek() != ")":
            if self._peek() is None:
                raise IRSQuerySyntaxError(f"unterminated #{kind}{window}(...)")
            child = self.parse_node()
            if not isinstance(child, TermNode):
                raise IRSQuerySyntaxError(
                    f"#{kind}{window} operands must be plain terms"
                )
            term_nodes.append(child)
        self._next()  # consume ")"
        if len(term_nodes) < 2:
            raise IRSQuerySyntaxError(f"#{kind}{window} needs at least two terms")
        return ProximityNode(ordered, window, tuple(term_nodes))

    def _parse_wsum(self) -> OperatorNode:
        weights: List[float] = []
        children: List[QueryNode] = []
        while self._peek() != ")":
            if self._peek() is None:
                raise IRSQuerySyntaxError("unterminated #wsum(...)")
            weight_token = self._next()
            try:
                weight = float(weight_token)
            except ValueError:
                raise IRSQuerySyntaxError(
                    f"#wsum expects weight-operand pairs; {weight_token!r} is not a number"
                ) from None
            if self._peek() == ")" or self._peek() is None:
                raise IRSQuerySyntaxError("#wsum weight without an operand")
            weights.append(weight)
            children.append(self.parse_node())
        self._next()  # consume ")"
        if not children:
            raise IRSQuerySyntaxError("#wsum() needs at least one pair")
        return OperatorNode("wsum", tuple(children), tuple(weights))


def subqueries(node: QueryNode) -> List[QueryNode]:
    """The top-level subqueries of a query (Section 4.5.2's decomposition).

    For an operator node these are its children; for a bare term, the term
    itself.  The subquery-aware derivation scheme evaluates each subquery
    separately against component objects.
    """
    if isinstance(node, OperatorNode):
        return list(node.children)
    return [node]


def format_query(node: QueryNode) -> str:
    """Render a query tree back to query-language text."""
    if isinstance(node, TermNode):
        return node.term
    if isinstance(node, ProximityNode):
        kind = "od" if node.ordered else "uw"
        inner = " ".join(t.term for t in node.term_nodes)
        return f"#{kind}{node.window}({inner})"
    if isinstance(node, OperatorNode):
        if node.op == "wsum":
            parts = []
            for weight, child in zip(node.weights, node.children):
                parts.append(f"{weight:g} {format_query(child)}")
            return f"#wsum({' '.join(parts)})"
        inner = " ".join(format_query(child) for child in node.children)
        return f"#{node.op}({inner})"
    raise IRSQuerySyntaxError(f"not a query node: {node!r}")  # pragma: no cover
