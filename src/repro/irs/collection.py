"""IRS collections.

"Each document set is called 'collection'" (Section 1.1).  A collection owns
an inverted index plus per-document metadata.  The crucial metadata item is
the OID of the database object an IRS document represents: "the mapping of
the IRS result to objects ... can be implemented efficiently by storing the
according object identifier (OID) with each IRS document.  This is possible
as most IRSs allow to administer some meta data with each IRS document"
(Section 4.3).

Two index representations exist behind the same ``self.index`` attribute:

* monolithic — one :class:`InvertedIndex` (the default for directly
  constructed collections, and the benchmark baseline);
* segmented — a :class:`~repro.irs.segments.manager.SegmentManager` behind
  a :class:`~repro.irs.segments.view.MergedIndexView` (what the engine
  creates by default; see DESIGN.md §"Segmented indexing").

Scoring code never needs to know which one it got: the view mirrors the
index interface exactly, and :attr:`stats` hands back the matching
statistics cache implementation.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import DocumentMissingError
from repro.irs.analysis import Analyzer
from repro.irs.inverted_index import InvertedIndex
from repro.irs.segments import (
    MergedIndexView,
    SealedSegment,
    SegmentConfig,
    SegmentedStatistics,
    SegmentManager,
)
from repro.irs.statistics import StatisticsCache


@dataclass
class IRSDocument:
    """One flat document inside a collection."""

    doc_id: int
    text: str
    metadata: Dict[str, str] = field(default_factory=dict)
    #: Bumped on every re-index of this document (``replace_document``).
    #: The single-file store uses ``(doc_id, revision)`` to find which
    #: documents changed since the last checkpoint, so an incremental
    #: checkpoint appends only the delta batch instead of the corpus.
    revision: int = 0


class IRSCollection:
    """A named set of IRS documents with an inverted index over them."""

    def __init__(
        self,
        name: str,
        analyzer: Optional[Analyzer] = None,
        segment_config: Optional[SegmentConfig] = None,
    ) -> None:
        self.name = name
        self.analyzer = analyzer or Analyzer()
        self.segments: Optional[SegmentManager]
        self.index: Union[InvertedIndex, MergedIndexView]
        if segment_config is not None and segment_config.enabled:
            self.segments = SegmentManager(name, segment_config)
            self.index = MergedIndexView(self.segments)
        else:
            self.segments = None
            self.index = InvertedIndex()
        self._documents: Dict[int, IRSDocument] = {}
        self._next_doc_id = 1
        self._stats: Optional[StatisticsCache] = None
        self._stats_lock = threading.Lock()

    @property
    def stats(self) -> StatisticsCache:
        """The collection's statistics cache (rebuilt if the index is swapped).

        Validity against index mutations is handled inside the cache via the
        index epoch; this property only guards against the index *object*
        being replaced (e.g. by :meth:`from_payload`).  Creation is locked so
        concurrent scorers share one cache instead of racing to build two.
        """
        with self._stats_lock:
            cache = self._stats
            if cache is None or cache.index is not self.index:
                if self.segments is not None:
                    cache = SegmentedStatistics(self.index, self.segments)
                else:
                    cache = StatisticsCache(self.index)
                self._stats = cache
            return cache

    @property
    def segment_count(self) -> int:
        """Number of live index segments (1 for a monolithic collection)."""
        if self.segments is not None:
            return self.segments.segment_count
        return 1

    def segment_managers(self) -> List[SegmentManager]:
        """All segment managers behind this collection (0 or 1 here).

        The maintenance paths (merge scheduler, health reports) iterate
        this instead of touching :attr:`segments` directly, so a sharded
        collection — which owns one manager *per shard* — plugs in by
        overriding it.
        """
        return [self.segments] if self.segments is not None else []

    @contextmanager
    def batched_epoch(self) -> Iterator[None]:
        """Coalesce the epoch bumps of a write batch into one (see engine)."""
        if self.segments is not None:
            with self.segments.batched_epoch():
                yield
        else:
            with self.index.batched_epoch():
                yield

    def compact(self) -> bool:
        """Fold all segments into one, purging tombstones (write lock held).

        No-op (False) on monolithic collections and when there is nothing
        to fold.  Content-preserving: the epoch does not move, so caches
        keyed on it stay warm.
        """
        if self.segments is None:
            return False
        return self.segments.compact()

    # -- document management ---------------------------------------------------

    def add_document(self, text: str, metadata: Optional[Dict[str, str]] = None) -> int:
        """Index ``text``; returns the new IRS document id."""
        doc_id = self._next_doc_id
        self._next_doc_id += 1
        document = IRSDocument(doc_id, text, dict(metadata or {}))
        self._documents[doc_id] = document
        self.index.add_document(doc_id, self.analyzer.tokens(text))
        return doc_id

    def remove_document(self, doc_id: int) -> None:
        """Delete a document and its postings."""
        if doc_id not in self._documents:
            raise DocumentMissingError(
                f"document {doc_id} not in collection {self.name!r}"
            )
        del self._documents[doc_id]
        self.index.remove_document(doc_id)

    def replace_document(self, doc_id: int, text: str) -> None:
        """Re-index a document with new text, keeping id and metadata."""
        if doc_id not in self._documents:
            raise DocumentMissingError(
                f"document {doc_id} not in collection {self.name!r}"
            )
        document = self._documents[doc_id]
        self.index.remove_document(doc_id)
        document.text = text
        document.revision += 1
        self.index.add_document(doc_id, self.analyzer.tokens(text))

    def document(self, doc_id: int) -> IRSDocument:
        """The stored document (text + metadata)."""
        try:
            return self._documents[doc_id]
        except KeyError:
            raise DocumentMissingError(
                f"document {doc_id} not in collection {self.name!r}"
            ) from None

    def documents(self) -> List[IRSDocument]:
        """All documents, ascending doc id."""
        return [self._documents[d] for d in sorted(self._documents)]

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    # -- metadata lookups ---------------------------------------------------------

    def find_by_metadata(self, key: str, value: str) -> List[int]:
        """Doc ids whose metadata maps ``key`` to ``value``."""
        return [
            doc_id
            for doc_id in sorted(self._documents)
            if self._documents[doc_id].metadata.get(key) == value
        ]

    # -- size accounting (for the granularity experiments) --------------------------

    def indexed_bytes(self) -> int:
        """Approximate index size: bytes of all stored postings.

        Counted as term bytes plus 8 bytes per position entry — a stable,
        implementation-independent proxy used by the redundancy experiments
        (Section 4.3 / [SAZ94]).
        """
        total = 0
        for term in self.index.terms():
            postings = self.index.postings(term)
            total += len(term.encode("utf-8"))
            for posting in postings:
                total += 8 + 8 * len(posting.positions)
        return total

    def text_bytes(self) -> int:
        """Total bytes of raw document text stored in the collection."""
        return sum(len(d.text.encode("utf-8")) for d in self._documents.values())

    # -- persistence ---------------------------------------------------------------

    def to_payload(self) -> dict:
        """JSON-encodable dump (documents + index + analyzer config).

        Monolithic collections keep the original ``"index"`` format;
        segmented ones dump per-segment payloads under ``"segments"``
        (physical postings plus the tombstone list, replayed on load), the
        memtable last.
        """
        payload = {
            "name": self.name,
            "next_doc_id": self._next_doc_id,
            "analyzer": self.analyzer.config(),
            "documents": [
                {
                    "doc_id": d.doc_id,
                    "text": d.text,
                    "metadata": d.metadata,
                    "revision": d.revision,
                }
                for d in self.documents()
            ],
        }
        if self.segments is None:
            payload["index"] = self.index.to_payload()
        else:
            entries = [s.to_payload() for s in self.segments.sealed_segments()]
            memtable = self.segments.memtable
            if memtable.document_count:
                entries.append(
                    {"index": memtable.index.to_payload(), "tombstones": []}
                )
            payload["segments"] = entries
        return payload

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        analyzer: Optional[Analyzer] = None,
        segment_config: Optional[SegmentConfig] = None,
    ) -> "IRSCollection":
        """Rebuild a collection dumped by :meth:`to_payload`.

        Either payload format loads into either representation:
        ``segment_config`` (or a ``"segments"`` payload) selects segmented;
        a legacy ``"index"`` payload under a segmented target becomes one
        sealed segment.  A *sharded* dump (see
        ``ShardedCollection.to_payload``) cross-loads too: each shard's
        entries flatten into the segment list — shards partition the
        document space, so the concatenation is the exact logical index.
        """
        if "shards" in payload:
            entries = []
            for shard_entry in payload["shards"]:
                if "segments" in shard_entry:
                    entries.extend(shard_entry["segments"])
                else:
                    entries.append({"index": shard_entry["index"], "tombstones": []})
            payload = {**payload, "segments": entries}
        if segment_config is None and "segments" in payload:
            segment_config = SegmentConfig()
        collection = cls(payload["name"], analyzer, segment_config=segment_config)
        collection._next_doc_id = payload["next_doc_id"]
        for entry in payload["documents"]:
            collection._documents[entry["doc_id"]] = IRSDocument(
                entry["doc_id"],
                entry["text"],
                dict(entry["metadata"]),
                int(entry.get("revision", 0)),
            )
        if collection.segments is not None:
            entries = payload.get("segments")
            if entries is None:
                entries = [{"index": payload["index"], "tombstones": []}]
            for entry in entries:
                collection.segments.load_sealed(entry)
        elif "segments" in payload:
            # Segmented dump into a monolithic target: fold the segments
            # (minus their tombstoned documents) into one index.
            segments = [
                SealedSegment.from_payload(position, entry)
                for position, entry in enumerate(payload["segments"])
            ]
            merged = SealedSegment.merged(
                0, segments, [segment.tombstones for segment in segments]
            )
            # The merge emits the immutable compact form; a monolithic
            # collection stays mutable, so decode into an InvertedIndex.
            collection.index = InvertedIndex.from_payload(merged.index.to_payload())
        else:
            collection.index = InvertedIndex.from_payload(payload["index"])
        return collection
