"""Postings compression: variable-byte encoded, gap-compressed indexes.

[SAZ94] "optimize full text indexing by compression.  The objective is to
reduce the overhead for multiple indexes on the same data, but different
document levels, to about 30%."  This module supplies the classic machinery
they relied on: document ids and positions are delta-encoded (gaps) and the
gaps written as variable-byte integers — small gaps, which dominate in
redundant multi-level indexes because the same text repeats, cost one byte.

:func:`encode_index` / :func:`decode_index` round-trip a whole
:class:`~repro.irs.inverted_index.InvertedIndex` through the compressed
binary form; :func:`compressed_size` measures it.  The persistence layer
can store either form; the GRAN/HIER benchmarks use the measurements.
"""

from __future__ import annotations

from typing import Dict, List

from repro.irs.inverted_index import InvertedIndex

# ---------------------------------------------------------------------------
# Variable-byte primitives
#
# Convention: big-endian 7-bit groups with the **stop bit (MSB) set on the
# final byte** of each integer.  This is the classic stop-bit scheme of the
# [SAZ94]-era literature (Scholer et al. call it the same), *not* the
# LEB128/protobuf varint convention (little-endian groups, MSB set on every
# non-final byte).  The two are incompatible on the wire; everything in this
# repository — whole-index compression below, the block postings of
# :mod:`repro.irs.postings`, persistence payloads — uses this one scheme.
# Property-based round-trip tests in ``tests/irs/test_compression.py`` pin
# the convention down, including empty-positions and 2**60-sized gaps.
# ---------------------------------------------------------------------------

def vbyte_encode(number: int) -> bytes:
    """Encode one non-negative integer (big-endian 7-bit groups, MSB = stop)."""
    if number < 0:
        raise ValueError("vbyte encodes non-negative integers only")
    pieces = []
    while True:
        pieces.append(number & 0x7F)
        number >>= 7
        if number == 0:
            break
    pieces.reverse()
    encoded = bytearray(pieces)
    encoded[-1] |= 0x80  # stop bit on the final byte
    return bytes(encoded)


def vbyte_encode_sequence(numbers: List[int]) -> bytes:
    """Concatenated encoding of a sequence."""
    return b"".join(vbyte_encode(n) for n in numbers)


def vbyte_decode(data: bytes) -> List[int]:
    """Decode a concatenated vbyte stream back into integers.

    Raises :class:`ValueError` on any trailing partial integer — including
    one whose accumulated continuation bytes are all zero (``b"\\x00"``),
    which the pre-fix implementation silently swallowed.
    """
    numbers = []
    current = 0
    pending = False
    for byte in data:
        if byte & 0x80:
            numbers.append((current << 7) | (byte & 0x7F))
            current = 0
            pending = False
        else:
            current = (current << 7) | byte
            pending = True
    if pending:
        raise ValueError("truncated vbyte stream")
    return numbers


def vbyte_decode_stream(
    data: bytes, offset: int, count: int
) -> "tuple[List[int], int]":
    """Decode exactly ``count`` integers starting at ``offset``.

    Returns ``(values, next_offset)``.  This is the random-access primitive
    the block postings use: a block's varint stream can be decoded without
    touching (or even validating) the bytes of any other block.
    """
    values: List[int] = []
    append = values.append
    current = 0
    position = offset
    end = len(data)
    while len(values) < count:
        if position >= end:
            raise ValueError("truncated vbyte stream")
        byte = data[position]
        position += 1
        if byte & 0x80:
            append((current << 7) | (byte & 0x7F))
            current = 0
        else:
            current = (current << 7) | byte
    return values, position


def gaps(sorted_values: List[int]) -> List[int]:
    """First value, then successive differences (all >= 0)."""
    result = []
    previous = 0
    for value in sorted_values:
        result.append(value - previous)
        previous = value
    return result


def ungaps(gap_values: List[int]) -> List[int]:
    """Inverse of :func:`gaps`."""
    result = []
    total = 0
    for gap in gap_values:
        total += gap
        result.append(total)
    return result


# ---------------------------------------------------------------------------
# Whole-index encoding
# ---------------------------------------------------------------------------

def encode_postings(doc_positions: Dict[int, List[int]]) -> bytes:
    """Encode one term's postings: doc-id gaps, position counts, position gaps."""
    doc_ids = sorted(doc_positions)
    stream: List[int] = [len(doc_ids)]
    stream.extend(gaps(doc_ids))
    for doc_id in doc_ids:
        positions = sorted(doc_positions[doc_id])
        stream.append(len(positions))
        stream.extend(gaps(positions))
    return vbyte_encode_sequence(stream)


def decode_postings(data: bytes) -> Dict[int, List[int]]:
    """Inverse of :func:`encode_postings`."""
    numbers = vbyte_decode(data)
    cursor = 0
    n_docs = numbers[cursor]
    cursor += 1
    doc_ids = ungaps(numbers[cursor : cursor + n_docs])
    cursor += n_docs
    result: Dict[int, List[int]] = {}
    for doc_id in doc_ids:
        n_positions = numbers[cursor]
        cursor += 1
        result[doc_id] = ungaps(numbers[cursor : cursor + n_positions])
        cursor += n_positions
    if cursor != len(numbers):
        raise ValueError("trailing data in postings stream")
    return result


def encode_index(index: InvertedIndex) -> Dict[str, bytes]:
    """term -> compressed postings for a whole index."""
    encoded = {}
    for term in index.terms():
        encoded[term] = encode_postings(
            {p.doc_id: p.positions for p in index.postings(term)}
        )
    return encoded


def decode_index(encoded: Dict[str, bytes], doc_lengths: Dict[int, int]) -> InvertedIndex:
    """Rebuild an :class:`InvertedIndex` from its compressed form.

    ``doc_lengths`` must be supplied separately (they are collection
    metadata, not postings).
    """
    index = InvertedIndex()
    index._doc_lengths = dict(doc_lengths)
    from repro.irs.inverted_index import Posting

    index._postings = {
        term: {
            doc_id: Posting(doc_id, positions)
            for doc_id, positions in decode_postings(data).items()
        }
        for term, data in encoded.items()
    }
    return index


def compressed_size(index: InvertedIndex) -> int:
    """Bytes of the compressed form (terms + postings streams)."""
    total = 0
    for term, data in encode_index(index).items():
        total += len(term.encode("utf-8")) + len(data)
    return total


def raw_size(index: InvertedIndex) -> int:
    """Bytes of the uncompressed proxy measure (8 bytes per id/position),
    consistent with :meth:`repro.irs.collection.IRSCollection.indexed_bytes`."""
    total = 0
    for term in index.terms():
        total += len(term.encode("utf-8"))
        for posting in index.postings(term):
            total += 8 + 8 * len(posting.positions)
    return total
