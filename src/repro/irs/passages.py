"""Passage retrieval ([SAB93], [Cal94]).

Section 6: "An unsolved problem is calculating the IRS values for objects
using the values for their subobjects. ... It seems that such an approach
depends on the retrieval paradigm the IRS-component is based on (passage
retrieval as introduced in [SAB93] seems to be an interesting candidate)."

This module provides that candidate: sliding fixed-width windows over a
token stream, each scored with the INQUERY belief formula against
collection-level statistics, returning the best passage and its score.
The coupling's ``passage`` derivation scheme (registered in
:mod:`repro.core.derivation` consumers) scores a composite object by its
best passage — rewarding *local* co-occurrence of query terms the way
[SAB93] argues full-document scores cannot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.irs.collection import IRSCollection
from repro.irs.models import operators as ops
from repro.irs.models.probabilistic import DEFAULT_BELIEF
from repro.irs.queries import OperatorNode, QueryNode, TermNode, parse_irs_query

#: Default window geometry per [HeP93]/[Cal94]: ~30-word pieces, half overlap.
DEFAULT_WINDOW = 30
DEFAULT_STRIDE = 15


@dataclass(frozen=True)
class Passage:
    """One scored window of a token stream."""

    start: int
    end: int       # exclusive token index
    score: float

    def __len__(self) -> int:
        return self.end - self.start


class PassageScorer:
    """Scores passages of raw text against a collection's statistics.

    The collection supplies the analyzer (so passage terms meet index terms
    in the same form) and the df/N statistics for the idf component; the
    window itself plays the role of the "document" in the belief formula,
    normalized against the window size.
    """

    def __init__(
        self,
        collection: IRSCollection,
        window: int = DEFAULT_WINDOW,
        stride: int = DEFAULT_STRIDE,
    ) -> None:
        if window < 1 or stride < 1:
            raise ValueError("window and stride must be positive")
        self._collection = collection
        self.window = window
        self.stride = stride

    # -- scoring --------------------------------------------------------------

    def passages(self, text: str, irs_query: str) -> List[Passage]:
        """All windows of ``text`` with their scores, in position order."""
        tree = parse_irs_query(irs_query)
        tokens = self._collection.analyzer.tokens(text)
        if not tokens:
            return []
        result = []
        start = 0
        while True:
            end = min(start + self.window, len(tokens))
            result.append(Passage(start, end, self._score_window(tokens[start:end], tree)))
            if end == len(tokens):
                break
            start += self.stride
        return result

    def best_passage(self, text: str, irs_query: str) -> Optional[Passage]:
        """The highest-scoring window (ties: earliest), or None for empty text."""
        scored = self.passages(text, irs_query)
        if not scored:
            return None
        return max(scored, key=lambda p: (p.score, -p.start))

    def best_score(self, text: str, irs_query: str) -> float:
        """Best passage score; 0.0 for empty text."""
        best = self.best_passage(text, irs_query)
        return best.score if best is not None else 0.0

    # -- internals ---------------------------------------------------------------

    def _score_window(self, window_tokens: List[str], tree: QueryNode) -> float:
        counts: Dict[str, int] = {}
        for token in window_tokens:
            counts[token] = counts.get(token, 0) + 1
        return self._belief(tree, counts, len(window_tokens))

    def _term_belief(self, raw_term: str, counts: Dict[str, int], window_len: int) -> float:
        term = self._collection.analyzer.term(raw_term)
        if term is None:
            return DEFAULT_BELIEF
        tf = counts.get(term, 0)
        if tf == 0:
            return DEFAULT_BELIEF
        index = self._collection.index
        n_docs = index.document_count
        df = index.document_frequency(term)
        if n_docs == 0 or df == 0:
            # Term unknown to the collection: treat as maximally discriminative.
            idf_part = 1.0
        else:
            idf_part = math.log((n_docs + 0.5) / df) / math.log(n_docs + 1.0)
            idf_part = max(0.0, min(1.0, idf_part))
        tf_part = tf / (tf + 0.5 + 1.5 * window_len / self.window)
        return DEFAULT_BELIEF + (1.0 - DEFAULT_BELIEF) * tf_part * idf_part

    def _belief(self, node: QueryNode, counts: Dict[str, int], window_len: int) -> float:
        if isinstance(node, TermNode):
            return self._term_belief(node.term, counts, window_len)
        if isinstance(node, OperatorNode):
            children = [self._belief(c, counts, window_len) for c in node.children]
            if node.op == "and":
                return ops.op_and(children)
            if node.op == "or":
                return ops.op_or(children)
            if node.op == "not":
                return ops.op_not(children[0])
            if node.op == "sum":
                return ops.op_sum(children)
            if node.op == "wsum":
                return ops.op_wsum(node.weights, children)
            if node.op == "max":
                return ops.op_max(children)
        raise ValueError(f"cannot score query node {node!r}")  # pragma: no cover
