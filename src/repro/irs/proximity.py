"""Proximity matching: INQUERY's ordered/unordered window operators.

``#odN(t1 t2 ...)`` matches where the terms occur *in order* with at most
``N`` positions between consecutive terms; ``#uwN(t1 t2 ...)`` matches
where all terms occur (any order) inside a window of ``N`` positions.
Each match counts like an occurrence of a pseudo-term, so proximity nodes
receive beliefs through the same tf/idf machinery as plain terms.

These operators exercise the positional postings the inverted index stores
(Section 1.1's "internal representation") and give mixed queries phrase
power: ``#od1(information retrieval)`` is the classic adjacency phrase.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.irs.collection import IRSCollection


def ordered_window_matches(position_lists: Sequence[List[int]], window: int) -> int:
    """Count ordered-window matches.

    A match is a choice of one position per term, strictly increasing, with
    each consecutive gap ``0 < gap <= window``.  Counting uses dynamic
    programming over positions (matches ending at each position of the last
    term), which counts every distinct combination exactly once.
    """
    if not position_lists or any(not positions for positions in position_lists):
        return 0
    # ways[i] = number of valid prefixes ending at position_lists[0][i]
    ways = {position: 1 for position in position_lists[0]}
    for positions in position_lists[1:]:
        next_ways: Dict[int, int] = {}
        for position in positions:
            total = 0
            for previous, count in ways.items():
                gap = position - previous
                if 0 < gap <= window:
                    total += count
            if total:
                next_ways[position] = total
        ways = next_ways
        if not ways:
            return 0
    return sum(ways.values())


def unordered_window_matches(position_lists: Sequence[List[int]], window: int) -> int:
    """Count unordered-window matches.

    A match is a set of one position per term whose span (max - min + 1)
    is at most ``window``.  Counted with a sweep: for every choice of the
    *minimum* position, count combinations of the other terms falling in
    ``[min, min + window)`` and strictly greater than it... to stay
    tractable and deterministic we count *minimal* matches the way INQUERY
    did: slide a window over the union of positions and count windows whose
    leftmost element starts a set containing all terms.
    """
    if not position_lists or any(not positions for positions in position_lists):
        return 0
    matches = 0
    # Candidate window starts: every position of every term.
    starts = sorted({p for positions in position_lists for p in positions})
    for start in starts:
        end = start + window  # exclusive
        covered = True
        anchored = False
        for positions in position_lists:
            in_window = [p for p in positions if start <= p < end]
            if not in_window:
                covered = False
                break
            if start in in_window:
                anchored = True
        if covered and anchored:
            matches += 1
    return matches


def proximity_tf(
    collection: IRSCollection,
    doc_id: int,
    terms: Sequence[str],
    window: int,
    ordered: bool,
) -> int:
    """Match count of a proximity expression within one document.

    ``terms`` are raw query terms; analysis is applied here so they meet
    indexed positions in the same form.  Terms that analyze away (stopwords)
    make the expression unmatchable — INQUERY behaved the same.
    """
    position_lists: List[List[int]] = []
    for raw in terms:
        term = collection.analyzer.term(raw)
        if term is None:
            return 0
        posting = next(
            (p for p in collection.index.postings(term) if p.doc_id == doc_id), None
        )
        if posting is None:
            return 0
        position_lists.append(posting.positions)
    if ordered:
        return ordered_window_matches(position_lists, window)
    return unordered_window_matches(position_lists, window)


def proximity_document_frequency(
    collection: IRSCollection, terms: Sequence[str], window: int, ordered: bool
) -> int:
    """Number of documents with at least one proximity match."""
    candidate_ids = candidate_documents(collection, terms)
    return sum(
        1
        for doc_id in candidate_ids
        if proximity_tf(collection, doc_id, terms, window, ordered) > 0
    )


def proximity_df_cached(collection: IRSCollection, node) -> int:
    """df of a proximity node, memoized per collection state.

    The cache key includes a cheap fingerprint of the index (document and
    token counts) so additions/removals invalidate stale entries without a
    version counter on the collection.
    """
    cache = getattr(collection, "_proximity_df_cache", None)
    if cache is None:
        cache = {}
        collection._proximity_df_cache = cache
    fingerprint = (collection.index.document_count, collection.index.token_count)
    key = (node.ordered, node.window, tuple(node.terms()), fingerprint)
    if key not in cache:
        cache[key] = proximity_document_frequency(
            collection, node.terms(), node.window, node.ordered
        )
    return cache[key]


def candidate_documents(collection: IRSCollection, terms: Sequence[str]) -> List[int]:
    """Documents containing *all* the (analyzed) terms — the only possible
    proximity matches."""
    doc_sets = []
    for raw in terms:
        term = collection.analyzer.term(raw)
        if term is None:
            return []
        doc_sets.append({p.doc_id for p in collection.index.postings(term)})
    if not doc_sets:
        return []
    shared = set.intersection(*doc_sets)
    return sorted(shared)
