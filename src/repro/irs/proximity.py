"""Proximity matching: INQUERY's ordered/unordered window operators.

``#odN(t1 t2 ...)`` matches where the terms occur *in order* with at most
``N`` positions between consecutive terms; ``#uwN(t1 t2 ...)`` matches
where all terms occur (any order) inside a window of ``N`` positions.
Each match counts like an occurrence of a pseudo-term, so proximity nodes
receive beliefs through the same tf/idf machinery as plain terms.

These operators exercise the positional postings the inverted index stores
(Section 1.1's "internal representation") and give mixed queries phrase
power: ``#od1(information retrieval)`` is the classic adjacency phrase.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.irs.collection import IRSCollection


def ordered_window_matches(position_lists: Sequence[List[int]], window: int) -> int:
    """Count ordered-window matches.

    A match is a choice of one position per term, strictly increasing, with
    each consecutive gap ``0 < gap <= window``.  Counting uses dynamic
    programming over positions (matches ending at each position of the last
    term), which counts every distinct combination exactly once.
    """
    if not position_lists or any(not positions for positions in position_lists):
        return 0
    # ways[i] = number of valid prefixes ending at position_lists[0][i]
    ways = {position: 1 for position in position_lists[0]}
    for positions in position_lists[1:]:
        next_ways: Dict[int, int] = {}
        for position in positions:
            total = 0
            for previous, count in ways.items():
                gap = position - previous
                if 0 < gap <= window:
                    total += count
            if total:
                next_ways[position] = total
        ways = next_ways
        if not ways:
            return 0
    return sum(ways.values())


def unordered_window_matches(position_lists: Sequence[List[int]], window: int) -> int:
    """Count unordered-window matches.

    A match is a set of one position per term whose span (max - min + 1)
    is at most ``window``.  Counted with a sweep: for every choice of the
    *minimum* position, count combinations of the other terms falling in
    ``[min, min + window)`` and strictly greater than it... to stay
    tractable and deterministic we count *minimal* matches the way INQUERY
    did: slide a window over the union of positions and count windows whose
    leftmost element starts a set containing all terms.
    """
    if not position_lists or any(not positions for positions in position_lists):
        return 0
    matches = 0
    # Candidate window starts: every position of every term.
    starts = sorted({p for positions in position_lists for p in positions})
    for start in starts:
        end = start + window  # exclusive
        covered = True
        anchored = False
        for positions in position_lists:
            in_window = [p for p in positions if start <= p < end]
            if not in_window:
                covered = False
                break
            if start in in_window:
                anchored = True
        if covered and anchored:
            matches += 1
    return matches


def proximity_tf(
    collection: IRSCollection,
    doc_id: int,
    terms: Sequence[str],
    window: int,
    ordered: bool,
) -> int:
    """Match count of a proximity expression within one document.

    ``terms`` are raw query terms; analysis is applied here so they meet
    indexed positions in the same form.  Terms that analyze away (stopwords)
    make the expression unmatchable — INQUERY behaved the same.
    """
    index = collection.index
    position_lists: List[List[int]] = []
    for raw in terms:
        term = collection.analyzer.term(raw)
        if term is None:
            return 0
        positions = index.positions(term, doc_id)
        if positions is None:
            return 0
        position_lists.append(positions)
    if ordered:
        return ordered_window_matches(position_lists, window)
    return unordered_window_matches(position_lists, window)


def proximity_document_frequency(
    collection: IRSCollection, terms: Sequence[str], window: int, ordered: bool
) -> int:
    """Number of documents with at least one proximity match."""
    candidate_ids = candidate_documents(collection, terms)
    return sum(
        1
        for doc_id in candidate_ids
        if proximity_tf(collection, doc_id, terms, window, ordered) > 0
    )


def _proximity_cache(collection: IRSCollection) -> Dict:
    """Per-collection proximity memo, dropped whenever the index mutates.

    Keyed on the index *epoch* (not a document/token-count fingerprint, which
    a same-length replace_document would leave unchanged); only the current
    epoch's entries are retained, bounding the cache's size.
    """
    cache = getattr(collection, "_proximity_cache", None)
    epoch = collection.index.epoch
    if cache is None or cache["epoch"] != epoch:
        cache = {"epoch": epoch, "tf_maps": {}}
        collection._proximity_cache = cache
    return cache


def proximity_tf_map(collection: IRSCollection, node) -> Dict[int, int]:
    """``{doc_id: match count}`` of one proximity node, matches only.

    Memoized per index epoch, so a query tree (or a stream of repeated
    queries) evaluates each distinct window exactly once per index state.
    """
    cache = _proximity_cache(collection)
    key = (node.ordered, node.window, tuple(node.terms()))
    tf_map = cache["tf_maps"].get(key)
    if tf_map is None:
        tf_map = {}
        for doc_id in candidate_documents(collection, node.terms()):
            tf = proximity_tf(
                collection, doc_id, node.terms(), node.window, node.ordered
            )
            if tf > 0:
                tf_map[doc_id] = tf
        cache["tf_maps"][key] = tf_map
    return tf_map


def proximity_df_cached(collection: IRSCollection, node) -> int:
    """df of a proximity node, memoized per collection state."""
    return len(proximity_tf_map(collection, node))


def candidate_documents(collection: IRSCollection, terms: Sequence[str]) -> List[int]:
    """Documents containing *all* the (analyzed) terms — the only possible
    proximity matches."""
    doc_sets = []
    for raw in terms:
        term = collection.analyzer.term(raw)
        if term is None:
            return []
        doc_sets.append(collection.stats.doc_id_set(term))
    if not doc_sets:
        return []
    shared = doc_sets[0].intersection(*doc_sets[1:])
    return sorted(shared)
