"""Compact block postings: the sealed segments' native representation.

The paper's IRS transforms documents "to an internal representation (e.g.,
inverted lists)" (Section 1.1); Papadakos et al. (PAPERS.md) show that the
*choice* of that internal representation — not just the scoring algorithm —
drives an order of magnitude in throughput.  This module replaces the
dict-of-:class:`~repro.irs.inverted_index.Posting` hot path for immutable
(sealed) segments with the classic compact layout:

* per term, document ids are delta-encoded (gaps) and written as stop-bit
  varints (:mod:`repro.irs.compression`, the [SAZ94] lineage) in fixed-size
  **blocks** of :data:`BLOCK_SIZE` documents, each block followed by the
  varint term frequencies of its documents;
* per block, the metadata arrays keep the **last document id** (the skip
  entry — ``next_geq`` binary-searches these without touching the bytes)
  and the **maximum term frequency** (the representation-level impact
  bound; the epoch-exact per-model bounds of :mod:`repro.irs.topk` are
  derived from one decode sweep and cached);
* positions live in a *separate* varint stream with per-block offsets, so
  the scoring path never decodes a position — only proximity windows,
  passages and merges pay for them.

A block decodes independently of every other block: the first gap of block
``b`` is relative to block ``b-1``'s last document id.  The mutable
memtable keeps the dict form; both forms (and
:class:`~repro.irs.segments.view.MergedIndexView`) expose the same
:class:`PostingsCursor` surface, so scoring is representation-agnostic.
"""

from __future__ import annotations

from bisect import bisect_left
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.irs.compression import vbyte_decode_stream, vbyte_encode
from repro.irs.inverted_index import Posting

#: Documents per block.  128 keeps skip granularity fine enough for top-k
#: pruning while the metadata overhead stays at ~3 ints per 128 postings.
BLOCK_SIZE = 128

#: Cursor exhaustion sentinel: larger than any real document id, so
#: ``min(cursor.current_doc() ...)`` needs no special casing.
CURSOR_DONE = 1 << 62


class CompactPostings:
    """One term's postings in compact block form (immutable).

    Build through :class:`CompactPostingsBuilder`; read through
    :meth:`cursor`, :meth:`iter_entries`, or the point lookups.
    """

    __slots__ = (
        "doc_count",
        "collection_frequency",
        "_data",
        "_offsets",
        "_last_docs",
        "_max_tfs",
        "_pos_data",
        "_pos_offsets",
    )

    def __init__(
        self,
        doc_count: int,
        collection_frequency: int,
        data: bytes,
        offsets: array,
        last_docs: array,
        max_tfs: array,
        pos_data: bytes,
        pos_offsets: array,
    ) -> None:
        self.doc_count = doc_count
        self.collection_frequency = collection_frequency
        self._data = data
        self._offsets = offsets
        self._last_docs = last_docs
        self._max_tfs = max_tfs
        self._pos_data = pos_data
        self._pos_offsets = pos_offsets

    # -- block metadata (no decoding) --------------------------------------

    @property
    def block_count(self) -> int:
        return len(self._last_docs)

    def block_doc_count(self, block: int) -> int:
        if block < self.block_count - 1:
            return BLOCK_SIZE
        return self.doc_count - block * BLOCK_SIZE

    def block_last_doc(self, block: int) -> int:
        """The skip entry: largest doc id inside ``block``."""
        return self._last_docs[block]

    def block_max_tf(self, block: int) -> int:
        """Largest term frequency inside ``block`` (impact upper bound)."""
        return self._max_tfs[block]

    @property
    def max_tf(self) -> int:
        return max(self._max_tfs) if self._max_tfs else 0

    @property
    def postings_bytes(self) -> int:
        """Bytes of the representation (streams + block metadata)."""
        return (
            len(self._data)
            + len(self._pos_data)
            + self._offsets.itemsize * len(self._offsets)
            + self._last_docs.itemsize * len(self._last_docs)
            + self._max_tfs.itemsize * len(self._max_tfs)
            + self._pos_offsets.itemsize * len(self._pos_offsets)
        )

    # -- decoding ----------------------------------------------------------

    def decode_block(self, block: int) -> Tuple[List[int], List[int]]:
        """``(doc_ids, tfs)`` of one block; independent of other blocks."""
        count = self.block_doc_count(block)
        gaps, offset = vbyte_decode_stream(self._data, self._offsets[block], count)
        tfs, _ = vbyte_decode_stream(self._data, offset, count)
        base = self._last_docs[block - 1] if block else 0
        ids = []
        append = ids.append
        for gap in gaps:
            base += gap
            append(base)
        return ids, tfs

    def decode_block_positions(self, block: int, tfs: List[int]) -> List[List[int]]:
        """Positions of one block's documents, aligned with ``tfs``."""
        offset = self._pos_offsets[block]
        out: List[List[int]] = []
        for tf in tfs:
            pos_gaps, offset = vbyte_decode_stream(self._pos_data, offset, tf)
            total = 0
            positions = []
            for gap in pos_gaps:
                total += gap
                positions.append(total)
            out.append(positions)
        return out

    def iter_entries(self, with_positions: bool = True) -> Iterator[tuple]:
        """Yield ``(doc_id, tf, positions-or-None)`` in doc-id order."""
        for block in range(self.block_count):
            ids, tfs = self.decode_block(block)
            if with_positions:
                positions = self.decode_block_positions(block, tfs)
                yield from zip(ids, tfs, positions)
            else:
                for doc_id, tf in zip(ids, tfs):
                    yield doc_id, tf, None

    def to_postings(self) -> List[Posting]:
        """Full-fidelity :class:`Posting` list (doc-id order)."""
        return [
            Posting(doc_id, positions)
            for doc_id, _tf, positions in self.iter_entries()
        ]

    def _find_block(self, doc_id: int) -> int:
        """Index of the block that could contain ``doc_id`` (or block_count)."""
        return bisect_left(self._last_docs, doc_id)

    def term_frequency(self, doc_id: int) -> int:
        """tf of ``doc_id`` (0 when absent); decodes at most one block."""
        block = self._find_block(doc_id)
        if block >= self.block_count:
            return 0
        ids, tfs = self.decode_block(block)
        i = bisect_left(ids, doc_id)
        if i < len(ids) and ids[i] == doc_id:
            return tfs[i]
        return 0

    def positions(self, doc_id: int) -> Optional[List[int]]:
        """Positions of ``doc_id`` (None when absent); one-block decode."""
        block = self._find_block(doc_id)
        if block >= self.block_count:
            return None
        ids, tfs = self.decode_block(block)
        i = bisect_left(ids, doc_id)
        if i >= len(ids) or ids[i] != doc_id:
            return None
        return self.decode_block_positions(block, tfs[: i + 1])[i]

    def cursor(self, live: Optional[Dict[int, object]] = None) -> "CompactCursor":
        """A :class:`PostingsCursor` over this term.

        ``live`` (a membership-testable container, typically the owning
        segment's forward map) restricts iteration to live documents —
        pass it only when the segment actually has tombstones for the
        term, mirroring ``SealedSegment.live_postings``.
        """
        return CompactCursor(self, live)


class CompactPostingsBuilder:
    """Accumulates one term's entries (ascending doc id) into compact form."""

    __slots__ = (
        "_ids",
        "_tfs",
        "_positions",
        "_chunks",
        "_pos_chunks",
        "_offsets",
        "_last_docs",
        "_max_tfs",
        "_pos_offsets",
        "_doc_count",
        "_cf",
        "_last_doc",
        "_data_len",
        "_pos_len",
    )

    def __init__(self) -> None:
        self._ids: List[int] = []
        self._tfs: List[int] = []
        self._positions: List[List[int]] = []
        self._chunks: List[bytes] = []
        self._pos_chunks: List[bytes] = []
        self._offsets = array("q", [0])
        self._last_docs = array("q")
        self._max_tfs = array("q")
        self._pos_offsets = array("q")
        self._doc_count = 0
        self._cf = 0
        self._last_doc = 0
        self._data_len = 0
        self._pos_len = 0

    def add(self, doc_id: int, positions: List[int]) -> None:
        """Append one document's occurrences; doc ids must be ascending."""
        if doc_id <= self._last_doc and self._doc_count + len(self._ids):
            raise ValueError("doc ids must be strictly ascending")
        if not positions:
            raise ValueError("a posting needs at least one position")
        self._ids.append(doc_id)
        self._tfs.append(len(positions))
        self._positions.append(positions)
        self._last_doc = doc_id
        self._cf += len(positions)
        if len(self._ids) == BLOCK_SIZE:
            self._flush()

    def _flush(self) -> None:
        if not self._ids:
            return
        base = self._last_docs[-1] if self._last_docs else 0
        encoded = bytearray()
        previous = base
        for doc_id in self._ids:
            encoded += vbyte_encode(doc_id - previous)
            previous = doc_id
        for tf in self._tfs:
            encoded += vbyte_encode(tf)
        pos_encoded = bytearray()
        for positions in self._positions:
            total = 0
            for position in positions:
                pos_encoded += vbyte_encode(position - total)
                total = position
        self._chunks.append(bytes(encoded))
        self._pos_chunks.append(bytes(pos_encoded))
        self._pos_offsets.append(self._pos_len)
        self._data_len += len(encoded)
        self._pos_len += len(pos_encoded)
        self._offsets.append(self._data_len)
        self._last_docs.append(self._ids[-1])
        self._max_tfs.append(max(self._tfs))
        self._doc_count += len(self._ids)
        self._ids = []
        self._tfs = []
        self._positions = []

    def build(self) -> CompactPostings:
        self._flush()
        return CompactPostings(
            self._doc_count,
            self._cf,
            b"".join(self._chunks),
            self._offsets,
            self._last_docs,
            self._max_tfs,
            b"".join(self._pos_chunks),
            self._pos_offsets,
        )


# ---------------------------------------------------------------------------
# Cursors
# ---------------------------------------------------------------------------

class PostingsCursor:
    """The representation-agnostic traversal protocol of one postings list.

    Implemented by :class:`CompactCursor` (block form), :class:`ListCursor`
    (the memtable's dict form) and :class:`MergedCursor` (a segment stack
    through :class:`~repro.irs.segments.view.MergedIndexView`).  Contract:

    * ``current_doc()`` — the current live doc id, or :data:`CURSOR_DONE`;
    * ``current_tf()`` — its term frequency (undefined once exhausted);
    * ``advance()`` — move to the next live doc, returning its id;
    * ``next_geq(target)`` — move to the first live doc ``>= target``
      (skip-entry search first, block decode only on a hit);
    * ``block`` / ``block_last_doc()`` / ``block_max_tf()`` — the current
      block's index, skip boundary and impact bound, readable *without*
      decoding the block;
    * ``advance_block()`` — jump past the current block without decoding
      it (the block-max skip; counted in ``blocks_skipped``).

    ``score_upper_bound`` lives one layer up: :mod:`repro.irs.topk` maps
    ``block`` through its per-model, epoch-exact bound arrays.
    """

    __slots__ = ()

    def current_doc(self) -> int:
        raise NotImplementedError

    def current_tf(self) -> int:
        raise NotImplementedError

    def advance(self) -> int:
        raise NotImplementedError

    def next_geq(self, target: int) -> int:
        raise NotImplementedError


class CompactCursor(PostingsCursor):
    """Cursor over :class:`CompactPostings`, decoding blocks lazily."""

    __slots__ = (
        "_postings",
        "_live",
        "block",
        "_i",
        "_ids",
        "_tfs",
        "_doc",
        "_touched",
        "blocks_skipped",
    )

    def __init__(
        self, postings: CompactPostings, live: Optional[Dict[int, object]]
    ) -> None:
        self._postings = postings
        self._live = live
        self.block = 0
        self._i = -1
        self._ids: Optional[List[int]] = None
        self._tfs: Optional[List[int]] = None
        self._doc = -1  # -1: not positioned yet
        self._touched = False
        self.blocks_skipped = 0

    # -- block metadata (no decode) ----------------------------------------

    @property
    def at_end(self) -> bool:
        return self.block >= self._postings.block_count

    def block_last_doc(self) -> int:
        return self._postings.block_last_doc(self.block)

    def block_max_tf(self) -> int:
        return self._postings.block_max_tf(self.block)

    @property
    def position_in_block(self) -> int:
        """Offset of the current document inside its decoded block."""
        return self._i if self._i >= 0 else 0

    def block_arrays(self) -> "tuple[List[int], List[int], int]":
        """``(doc_ids, tfs, start)`` of the current block, decoded.

        ``start`` is the cursor's offset into the arrays.  The batch
        traversal primitive of the top-k scorer: one decode, then plain
        list indexing instead of per-document cursor calls.  Live
        filtering stays the caller's job (positions are physical).
        """
        if self._ids is None:
            self._decode()
        return self._ids, self._tfs, self._i if self._i >= 0 else 0

    def mark_block_read(self) -> None:
        """Record that the current block was consumed out of band.

        The top-k scorer reads block contents from its impact cache
        instead of decoding; this keeps ``blocks_skipped`` honest (only
        blocks truly hopped over through the skip entries count).
        """
        self._touched = True

    def advance_block(self) -> bool:
        """Skip past the current block without decoding it."""
        if self.at_end:
            return False
        if self._ids is None and not self._touched:
            self.blocks_skipped += 1
        self.block += 1
        self._ids = None
        self._tfs = None
        self._i = -1
        self._doc = -1
        self._touched = False
        return not self.at_end

    # -- positioning -------------------------------------------------------

    def _decode(self) -> None:
        self._ids, self._tfs = self._postings.decode_block(self.block)

    def _settle(self) -> int:
        """From (block, i) move forward to the next live entry."""
        live = self._live
        while not self.at_end:
            if self._ids is None:
                self._decode()
            ids = self._ids
            i = self._i
            n = len(ids)
            while i < n:
                if i >= 0:
                    doc = ids[i]
                    if live is None or doc in live:
                        self._i = i
                        self._doc = doc
                        return doc
                i += 1
            self.block += 1
            self._ids = None
            self._tfs = None
            self._i = 0
        self._doc = CURSOR_DONE
        return CURSOR_DONE

    def current_doc(self) -> int:
        if self._doc == -1:
            self._i = 0 if self._i < 0 else self._i
            return self._settle()
        return self._doc

    def current_tf(self) -> int:
        if self._doc == -1:
            self.current_doc()
        return self._tfs[self._i]

    def advance(self) -> int:
        if self._doc == -1:
            self.current_doc()
        if self._doc == CURSOR_DONE:
            return CURSOR_DONE
        self._i += 1
        self._doc = -1
        return self._settle()

    def next_geq(self, target: int) -> int:
        doc = self.current_doc()
        if doc >= target:
            return doc
        postings = self._postings
        # Skip whole blocks through the metadata — no decoding.
        while not self.at_end and postings.block_last_doc(self.block) < target:
            if self._ids is None:
                self.blocks_skipped += 1
            self.block += 1
            self._ids = None
            self._tfs = None
        if self.at_end:
            self._doc = CURSOR_DONE
            return CURSOR_DONE
        if self._ids is None:
            self._decode()
            self._i = 0
        self._i = bisect_left(self._ids, target, max(self._i, 0))
        self._doc = -1
        return self._settle()


class ListCursor(PostingsCursor):
    """Cursor over a doc-id-ordered :class:`Posting` list (dict form).

    Serves the memtable and monolithic indexes.  Blocks are virtual —
    consecutive :data:`BLOCK_SIZE` runs — so the top-k scorer's block
    bookkeeping works identically over both representations.
    """

    __slots__ = ("_postings", "_i", "_touched", "blocks_skipped")

    def __init__(self, postings: List[Posting]) -> None:
        self._postings = postings
        self._i = 0
        self._touched = False
        self.blocks_skipped = 0

    @property
    def block(self) -> int:
        return self._i // BLOCK_SIZE

    @property
    def at_end(self) -> bool:
        return self._i >= len(self._postings)

    def block_last_doc(self) -> int:
        end = min((self.block + 1) * BLOCK_SIZE, len(self._postings))
        return self._postings[end - 1].doc_id

    def block_max_tf(self) -> int:
        start = self.block * BLOCK_SIZE
        end = min(start + BLOCK_SIZE, len(self._postings))
        return max(p.tf for p in self._postings[start:end])

    @property
    def position_in_block(self) -> int:
        return self._i - self.block * BLOCK_SIZE

    def block_arrays(self) -> "tuple[List[int], List[int], int]":
        """``(doc_ids, tfs, start)`` of the current (virtual) block."""
        begin = self.block * BLOCK_SIZE
        end = min(begin + BLOCK_SIZE, len(self._postings))
        run = self._postings[begin:end]
        self._touched = True
        return [p.doc_id for p in run], [p.tf for p in run], self._i - begin

    def mark_block_read(self) -> None:
        """See :meth:`CompactCursor.mark_block_read`."""
        self._touched = True

    def advance_block(self) -> bool:
        if not self._touched:
            self.blocks_skipped += 1
        self._touched = False
        self._i = (self.block + 1) * BLOCK_SIZE
        return not self.at_end

    def current_doc(self) -> int:
        if self.at_end:
            return CURSOR_DONE
        return self._postings[self._i].doc_id

    def current_tf(self) -> int:
        return self._postings[self._i].tf

    def advance(self) -> int:
        self._i += 1
        return self.current_doc()

    def next_geq(self, target: int) -> int:
        postings = self._postings
        i = self._i
        n = len(postings)
        if i < n and postings[i].doc_id >= target:
            return postings[i].doc_id
        lo, hi = i, n
        while lo < hi:
            mid = (lo + hi) // 2
            if postings[mid].doc_id < target:
                lo = mid + 1
            else:
                hi = mid
        self._i = lo
        return self.current_doc()


class MergedCursor(PostingsCursor):
    """Doc-id-ordered union of several cursors (one per segment).

    Completes the :class:`PostingsCursor` surface for
    :class:`~repro.irs.segments.view.MergedIndexView`; the top-k scorer
    prefers per-segment traversal (tighter bounds), but callers that want
    one logical stream get it here.  Block metadata delegates to the
    sub-cursor currently holding the smallest document, which keeps
    ``block_max_tf`` an exact bound for the current block.
    """

    __slots__ = ("_cursors",)

    def __init__(self, cursors: List[PostingsCursor]) -> None:
        self._cursors = cursors

    def _leader(self) -> Optional[PostingsCursor]:
        leader = None
        best = CURSOR_DONE
        for cursor in self._cursors:
            doc = cursor.current_doc()
            if doc < best:
                best = doc
                leader = cursor
        return leader

    def current_doc(self) -> int:
        leader = self._leader()
        return CURSOR_DONE if leader is None else leader.current_doc()

    def current_tf(self) -> int:
        leader = self._leader()
        if leader is None:
            raise ValueError("cursor exhausted")
        return leader.current_tf()

    def advance(self) -> int:
        leader = self._leader()
        if leader is not None:
            leader.advance()
        return self.current_doc()

    def next_geq(self, target: int) -> int:
        for cursor in self._cursors:
            cursor.next_geq(target)
        return self.current_doc()

    def block_last_doc(self) -> int:
        leader = self._leader()
        if leader is None:
            return CURSOR_DONE
        return leader.block_last_doc()

    def block_max_tf(self) -> int:
        leader = self._leader()
        if leader is None:
            return 0
        return leader.block_max_tf()


# ---------------------------------------------------------------------------
# CompactIndex: the sealed segment's whole-index container
# ---------------------------------------------------------------------------

class CompactIndex:
    """Read-only index over compact per-term postings.

    Mirrors the read surface of
    :class:`~repro.irs.inverted_index.InvertedIndex` (statistics, postings,
    point lookups, payload round-trip), so sealed segments can swap the
    dict representation out from under every existing consumer.  Mutation
    methods are absent by design: sealed segments never change content —
    deletion is the segment's tombstone bookkeeping, not the index's.
    """

    __slots__ = ("_terms", "_doc_lengths", "_token_count", "_posting_count")

    def __init__(
        self,
        terms: Dict[str, CompactPostings],
        doc_lengths: Dict[int, int],
    ) -> None:
        self._terms = terms
        self._doc_lengths = doc_lengths
        self._token_count = sum(doc_lengths.values())
        self._posting_count = sum(p.doc_count for p in terms.values())

    # -- construction ------------------------------------------------------

    @classmethod
    def from_inverted(cls, index) -> "CompactIndex":
        """Convert a (memtable) :class:`InvertedIndex` at seal time."""
        terms: Dict[str, CompactPostings] = {}
        for term in index.terms():
            builder = CompactPostingsBuilder()
            for posting in index.postings(term):
                builder.add(posting.doc_id, posting.positions)
            terms[term] = builder.build()
        return cls(terms, dict(index._doc_lengths))

    @classmethod
    def from_entry_streams(
        cls,
        streams: Iterable[Tuple[str, Iterable[tuple]]],
        doc_lengths: Dict[int, int],
    ) -> "CompactIndex":
        """Build from ``(term, [(doc_id, tf, positions), ...])`` streams.

        The merge path: entries arrive in doc-id order per term and are
        encoded straight into blocks — no dict-of-Posting intermediate.
        """
        terms: Dict[str, CompactPostings] = {}
        for term, entries in streams:
            builder = CompactPostingsBuilder()
            for doc_id, _tf, positions in entries:
                builder.add(doc_id, positions)
            built = builder.build()
            if built.doc_count:
                terms[term] = built
        return cls(terms, doc_lengths)

    # -- statistics --------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Immutable content: the epoch never moves after construction."""
        return 1

    @property
    def document_count(self) -> int:
        return len(self._doc_lengths)

    @property
    def term_count(self) -> int:
        return len(self._terms)

    @property
    def posting_count(self) -> int:
        return self._posting_count

    @property
    def token_count(self) -> int:
        return self._token_count

    def document_length(self, doc_id: int) -> int:
        return self._doc_lengths[doc_id]

    @property
    def average_document_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self._token_count / len(self._doc_lengths)

    def document_frequency(self, term: str) -> int:
        postings = self._terms.get(term)
        return postings.doc_count if postings is not None else 0

    def collection_frequency(self, term: str) -> int:
        postings = self._terms.get(term)
        return postings.collection_frequency if postings is not None else 0

    # -- access ------------------------------------------------------------

    def compact_postings(self, term: str) -> Optional[CompactPostings]:
        """The raw block representation of one term (None when absent)."""
        return self._terms.get(term)

    def postings(self, term: str) -> List[Posting]:
        """Full-fidelity decode of one term (doc-id order, not memoized).

        Per-version memoization happens one layer up, in
        :meth:`MergedIndexView.postings` — memoizing here too would grow a
        second copy of every hot term per segment.
        """
        postings = self._terms.get(term)
        if postings is None:
            return []
        return postings.to_postings()

    def term_frequency(self, term: str, doc_id: int) -> int:
        postings = self._terms.get(term)
        if postings is None:
            return 0
        return postings.term_frequency(doc_id)

    def positions(self, term: str, doc_id: int) -> Optional[List[int]]:
        postings = self._terms.get(term)
        if postings is None:
            return None
        return postings.positions(doc_id)

    def has_document(self, doc_id: int) -> bool:
        return doc_id in self._doc_lengths

    def document_ids(self) -> List[int]:
        return sorted(self._doc_lengths)

    def terms(self) -> Iterator[str]:
        return iter(self._terms)

    def document_vector(self, doc_id: int) -> Dict[str, int]:
        """term -> tf of one document (O(vocabulary); segments prefer
        their forward maps — this exists for interface completeness)."""
        vector: Dict[str, int] = {}
        for term, postings in self._terms.items():
            tf = postings.term_frequency(doc_id)
            if tf:
                vector[term] = tf
        return vector

    def forward_map(self) -> Dict[int, Dict[str, int]]:
        """doc id -> {term: tf} for every document (one decode sweep)."""
        forward: Dict[int, Dict[str, int]] = {
            doc_id: {} for doc_id in self._doc_lengths
        }
        for term, postings in self._terms.items():
            for doc_id, tf, _positions in postings.iter_entries(with_positions=False):
                forward[doc_id][term] = tf
        return forward

    # -- size accounting ---------------------------------------------------

    def postings_bytes(self) -> int:
        """Bytes of the compact representation (terms + streams + metadata)."""
        total = 0
        for term, postings in self._terms.items():
            total += len(term.encode("utf-8")) + postings.postings_bytes
        return total

    # -- persistence -------------------------------------------------------

    def to_payload(self) -> dict:
        """The same logical JSON schema as ``InvertedIndex.to_payload``.

        Persistence stays representation-neutral: old payloads load into
        compact segments and compact dumps load into old code.
        """
        return {
            "doc_lengths": {str(d): l for d, l in self._doc_lengths.items()},
            "postings": {
                term: {
                    str(doc_id): positions
                    for doc_id, _tf, positions in self._terms[term].iter_entries()
                }
                for term in self._terms
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompactIndex":
        """Build compact form straight from a logical payload."""
        terms: Dict[str, CompactPostings] = {}
        for term, by_doc in payload["postings"].items():
            builder = CompactPostingsBuilder()
            for doc_id in sorted(int(d) for d in by_doc):
                positions = by_doc.get(doc_id, by_doc.get(str(doc_id)))
                builder.add(doc_id, list(positions))
            built = builder.build()
            if built.doc_count:
                terms[term] = built
        doc_lengths = {int(d): l for d, l in payload["doc_lengths"].items()}
        return cls(terms, doc_lengths)
