"""Shared synchronization primitives for the concurrent service layer.

The stdlib offers no reader-writer lock; the service layer needs one so
that IRS scoring (many concurrent readers) never observes an inverted
index mid-mutation (one writer: update propagation or an index rebuild).

:class:`ReadWriteLock` is writer-preferring — once a writer is waiting, new
readers queue behind it, so a steady query stream cannot starve update
propagation — and re-entrant per thread in both modes (a thread holding the
write lock may take it again, and may also take the read lock, which is
what lets ``propagateUpdates`` call back into engine methods that lock the
same collection).

Lock-ordering discipline (documented here because it is global): code may
acquire database locks and *then* a collection's :class:`ReadWriteLock`,
never the reverse.  Nothing running under the write lock is allowed to
block on a database lock — update propagation precomputes every database
read before entering its engine phase — so a waiting reader can never be
part of a cross-system deadlock cycle.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator


class ReadWriteLock:
    """A writer-preferring, per-thread re-entrant readers-writer lock."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers: Dict[int, int] = {}  # thread ident -> hold count
        self._writer: int = 0  # thread ident of the writer, 0 when free
        self._writer_depth = 0
        self._writers_waiting = 0

    # -- read side --------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # Re-entrant read, or read under our own write lock.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            count = self._readers.get(me, 0)
            if count <= 0:
                raise RuntimeError("release_read without a matching acquire_read")
            if count == 1:
                del self._readers[me]
            else:
                self._readers[me] = count - 1
            if not self._readers:
                self._cond.notify_all()

    # -- write side -------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                # Upgrades deadlock two upgrading readers against each other;
                # callers must take the write lock before any read hold.
                raise RuntimeError("cannot upgrade a read hold to a write hold")
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def acquire_write_nowait(self) -> bool:
        """Take the write lock only if it is free right now.

        Never blocks and never queues: contended (readers active, another
        writer holding, or this thread holding a read lock it would have to
        upgrade) means False.  This is what lets the background merge
        scheduler *yield* to foreground writers instead of stalling them —
        a waiting ``acquire_write`` would block every new reader behind it
        (writer preference) for the whole commit wait.
        """
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return True
            if me in self._readers or self._writer or self._readers:
                return False
            self._writer = me
            self._writer_depth = 1
            return True

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a thread not holding the lock")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = 0
                self._cond.notify_all()

    # -- context managers -------------------------------------------------

    @contextmanager
    def reading(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def writing(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    @contextmanager
    def try_writing(self) -> Iterator[bool]:
        """Non-blocking write attempt; yields whether the lock was taken."""
        acquired = self.acquire_write_nowait()
        try:
            yield acquired
        finally:
            if acquired:
                self.release_write()

    # -- introspection (tests) -------------------------------------------

    def write_held(self) -> bool:
        """True when some thread currently holds the write lock."""
        with self._cond:
            return bool(self._writer)

    def reader_count(self) -> int:
        """Number of threads currently holding the read lock."""
        with self._cond:
            return len(self._readers)
