"""The concurrent session service layer (PR 3).

``Session`` is the supported public entry point; ``DocumentService`` is the
embedded executor behind pooled sessions (admission queue, batching windows,
worker pool, deadlock retry); ``ResultSet``/``ScoredHit`` are the typed query
results; ``ServiceConfig`` tunes the pool.
"""

from repro.service.config import ServiceConfig
from repro.service.executor import DocumentService
from repro.service.results import ResultSet, ScoredHit
from repro.service.session import Session

__all__ = [
    "DocumentService",
    "ResultSet",
    "ScoredHit",
    "ServiceConfig",
    "Session",
]
