"""Typed query results: :class:`ScoredHit` rows inside a :class:`ResultSet`.

The pre-Session API returned raw ``Dict[OID, float]`` mappings; callers
re-sorted them by hand and lost the context (collection, query, model, the
index epoch the scores were computed at).  :class:`ResultSet` keeps all of
that, ranks once, and still round-trips to the old shape via
:meth:`ResultSet.to_dict` for back-compatibility.

The ``epoch`` field is the inverted-index epoch the scores were computed
under (one snapshot — the whole set was scored at a single epoch).  The
concurrency tests replay workloads serially per epoch and assert every
concurrent :class:`ResultSet` equals the serial result at *its* epoch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.oodb.oid import OID

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import Database
    from repro.oodb.objects import DBObject


class ScoredHit:
    """One ranked row: an object, its IRS value, and (lazily) its handle.

    ``element`` resolves against the database on access, not at result
    construction — a batch of hundreds of hits costs nothing until a caller
    actually dereferences a row (and a hit whose object has died since
    scoring resolves to None instead of erroring).
    """

    __slots__ = ("oid", "score", "_db")

    def __init__(self, oid: OID, score: float, db: Optional["Database"] = None) -> None:
        self.oid = oid
        self.score = score
        self._db = db

    @property
    def element(self) -> Optional["DBObject"]:
        db = self._db
        if db is not None and db.object_exists(self.oid):
            return db.get_object(self.oid)
        return None

    def __iter__(self):
        # Tuple-style unpacking: ``for oid, score, element in result_set``.
        yield self.oid
        yield self.score
        yield self.element

    def __eq__(self, other) -> bool:
        if isinstance(other, ScoredHit):
            return (self.oid, self.score) == (other.oid, other.score)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.oid, self.score))

    def __repr__(self) -> str:
        return f"ScoredHit({self.oid}, {self.score:.4f})"


class ResultSet:
    """Ranked hits of one IRS (or mixed) query, best first.

    Ordering is deterministic: descending score, ascending OID as the
    tiebreaker — the same rule the engine's ``IRSResult.ranked`` uses.
    """

    __slots__ = ("hits", "collection", "query", "model", "epoch", "telemetry")

    def __init__(
        self,
        hits: List[ScoredHit],
        collection: str = "",
        query: str = "",
        model: Optional[str] = None,
        epoch: Optional[int] = None,
    ) -> None:
        self.hits = hits
        self.collection = collection
        self.query = query
        self.model = model
        self.epoch = epoch
        #: :class:`~repro.obs.telemetry.RequestTelemetry` of the request that
        #: produced this set (set by the session/service layer; None when
        #: instrumentation is disabled or for derived/sliced sets).
        self.telemetry = None

    @classmethod
    def from_values(
        cls,
        values: Dict[OID, float],
        db: Optional["Database"] = None,
        collection: str = "",
        query: str = "",
        model: Optional[str] = None,
        epoch: Optional[int] = None,
    ) -> "ResultSet":
        """Rank a raw ``{OID: value}`` mapping into a result set.

        When ``db`` is given, each hit lazily resolves a live object handle
        through :attr:`ScoredHit.element`.
        """
        hits = [
            ScoredHit(oid, score, db)
            for oid, score in sorted(values.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        return cls(hits, collection=collection, query=query, model=model, epoch=epoch)

    # -- sequence protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self.hits)

    def __iter__(self) -> Iterator[ScoredHit]:
        return iter(self.hits)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(
                self.hits[index],
                collection=self.collection,
                query=self.query,
                model=self.model,
                epoch=self.epoch,
            )
        return self.hits[index]

    def __bool__(self) -> bool:
        return bool(self.hits)

    def __eq__(self, other) -> bool:
        if isinstance(other, ResultSet):
            return [(h.oid, h.score) for h in self.hits] == [
                (h.oid, h.score) for h in other.hits
            ]
        return NotImplemented

    # -- accessors ----------------------------------------------------------

    def top(self, n: int) -> "ResultSet":
        """The best ``n`` hits as a new result set."""
        return self[: max(0, n)]

    def oids(self) -> List[OID]:
        """Hit OIDs in rank order."""
        return [hit.oid for hit in self.hits]

    def scores(self) -> List[float]:
        """Scores in rank order."""
        return [hit.score for hit in self.hits]

    def to_dict(self) -> Dict[OID, float]:
        """The old API's shape: an unordered ``{OID: value}`` mapping."""
        return {hit.oid: hit.score for hit in self.hits}

    def __repr__(self) -> str:
        head = ", ".join(f"{h.oid}={h.score:.3f}" for h in self.hits[:3])
        more = f", …+{len(self.hits) - 3}" if len(self.hits) > 3 else ""
        return (
            f"<ResultSet {self.collection!r} query={self.query!r} "
            f"epoch={self.epoch} [{head}{more}]>"
        )
