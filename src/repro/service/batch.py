"""Batched IRS query execution: one snapshot, many requests.

The service's throughput win on concurrent IRS traffic comes from here,
not from thread parallelism (scoring is pure Python): a batching window's
requests against the same collection are

* **deduplicated** — each distinct ``(model, query, top_k)`` triple is
  scored once per window, however many clients asked for it;
* **snapshot-shared** — all distinct queries of a group are scored under a
  single read hold of the collection's lock, against one index epoch and
  one :class:`~repro.irs.statistics.StatisticsCache` state, so a group is
  never split across an update;
* **propagation-amortized** — pending deferred updates are propagated once
  per group instead of once per request.

Semantic difference from the classic inline path, by design: the pooled
path does **not** write the COLLECTION object's persistent result buffer
(Section 4.2).  Under concurrency every buffer write would X-lock the
collection object and serialize all readers; the engine's in-process
result LRU plus the per-group snapshot provide the equivalent intra- and
inter-query reuse.  ``Session(workers=0)`` (the default, inline mode)
keeps the paper's persistent-buffer semantics exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.obs.telemetry import CostProfile, collecting
from repro.core import updates
from repro.core.context import CouplingContext
from repro.errors import (
    CouplingError,
    QueryError,
    ReproError,
)
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID
from repro.service.results import ResultSet


def map_query_error(exc: BaseException) -> BaseException:
    """Route an arbitrary query-path failure into the ReproError hierarchy.

    :class:`ReproError` subclasses pass through untouched; anything else
    (bare ``KeyError`` / ``ValueError`` / …) is wrapped as
    :class:`QueryError` with the original attached as ``__cause__`` —
    callers of the public API never need bare ``except Exception``.
    """
    if isinstance(exc, ReproError):
        return exc
    wrapped = QueryError(f"query failed: {exc!r}")
    wrapped.__cause__ = exc
    return wrapped


def map_coupling_error(exc: BaseException) -> BaseException:
    """Like :func:`map_query_error` but for indexing/maintenance paths."""
    if isinstance(exc, ReproError):
        return exc
    wrapped = CouplingError(f"coupling operation failed: {exc!r}")
    wrapped.__cause__ = exc
    return wrapped


@dataclass
class GroupOutcome:
    """Per-distinct-query results (or failures) of one executed group."""

    epoch: Optional[int] = None
    #: (model, query, top_k) -> ranked {OID: value}
    values: Dict[Tuple[Optional[str], str, Optional[int]], Dict[OID, float]] = field(
        default_factory=dict
    )
    #: (model, query, top_k) -> mapped exception for queries that failed
    errors: Dict[Tuple[Optional[str], str, Optional[int]], BaseException] = field(
        default_factory=dict
    )
    #: (model, query, top_k) -> the ResultSet built for the first request of
    #: that key; duplicates share its ranked hits list (built once per group).
    built: Dict[Tuple[Optional[str], str, Optional[int]], ResultSet] = field(
        default_factory=dict
    )
    deduplicated: int = 0
    # -- telemetry (populated only while instrumentation is enabled) --------
    #: requests in the group and distinct keys scored, for attribution.
    requested_count: int = 0
    #: (model, query, top_k) -> how many of the group's requests asked for it.
    riders: Dict[Tuple[Optional[str], str, Optional[int]], int] = field(
        default_factory=dict
    )
    #: per-distinct-query cost, measured around the one scoring pass.
    costs: Optional[Dict[Tuple[Optional[str], str, Optional[int]], CostProfile]] = None
    #: group-shared cost (propagation before the snapshot) — split evenly
    #: across ALL requests of the group during attribution.
    shared: Optional[CostProfile] = None
    #: (model, query, top_k) -> the finished ``service.query`` span, whose
    #: children hold the ``irs.query`` subtree for that key's scoring pass.
    query_spans: Dict[Tuple[Optional[str], str, Optional[int]], object] = field(
        default_factory=dict
    )

    def group_totals(self) -> Optional[Dict[str, float]]:
        """The unsplit group aggregate: sum of distinct costs plus shared.

        Per-request attributed profiles sum back to exactly this (the
        conservation invariant); riders of a failed key are the one
        exception — their share dies with the error.
        """
        if self.costs is None:
            return None
        total = CostProfile()
        for profile in self.costs.values():
            total.merge(profile)
        if self.shared is not None:
            total.merge(self.shared)
        aggregate = total.as_dict()
        aggregate["requests"] = self.requested_count
        aggregate["distinct"] = len(self.costs)
        aggregate["deduplicated"] = self.deduplicated
        return aggregate


def execute_group(
    db: Database,
    context: CouplingContext,
    collection_obj: DBObject,
    requested: List[Tuple[Optional[str], str, Optional[int]]],
) -> GroupOutcome:
    """Execute one collection's batched IRS queries against one snapshot.

    ``requested`` lists each request's ``(model_override, irs_query,
    top_k)``; duplicates are welcome — that is the point.  Failures are
    per query: one malformed expression poisons only its own requests,
    the rest of the group still gets results.
    """
    engine = context.engine
    registry = obs.metrics()
    started = time.perf_counter()
    outcome = GroupOutcome()
    outcome.requested_count = len(requested)
    collect = obs.is_enabled()
    if collect:
        outcome.costs = {}
        outcome.shared = CostProfile()

    with obs.tracer().span(
        "service.group", requests=len(requested)
    ) as span:
        # One propagation per group, before the read snapshot is taken.
        # Shared work: it benefits every request of the group equally, so
        # its cost lands in ``outcome.shared`` (split evenly at attribution).
        if updates.has_pending(collection_obj):
            propagation_started = time.perf_counter()
            applied = updates.propagate(collection_obj, forced=True)
            if collect:
                outcome.shared.propagations += 1
                outcome.shared.propagated_updates += applied
                outcome.shared.propagation_seconds += (
                    time.perf_counter() - propagation_started
                )

        default_model = collection_obj.get("model")
        irs_name = collection_obj.get("irs_name")
        span.set_attribute("collection", irs_name)

        distinct: List[Tuple[Optional[str], str, Optional[int]]] = []
        for model, irs_query, top_k in requested:
            key = (model or default_model, irs_query, top_k)
            if key not in outcome.riders:
                distinct.append(key)
            outcome.riders[key] = outcome.riders.get(key, 0) + 1
        outcome.deduplicated = len(requested) - len(distinct)
        span.set_attribute("distinct", len(distinct))

        # All distinct queries scored under ONE read hold: a single epoch,
        # a single statistics snapshot, no update in between.  Each pass
        # runs inside its own ``service.query`` span and cost profile —
        # that is the per-key artifact attribution hands to rider requests.
        with engine.reading(irs_name):
            collection = engine.collection(irs_name)
            outcome.epoch = collection.index.epoch
            for key in distinct:
                model, irs_query, top_k = key
                profile = CostProfile() if collect else None
                query_span = None
                try:
                    with collecting(profile):
                        with obs.tracer().span(
                            "service.query", query=obs.trim(irs_query),
                            model=model or "", riders=outcome.riders[key],
                        ) as query_span:
                            if top_k is not None:
                                query_span.set_attribute("top_k", top_k)
                            result = engine.query(
                                irs_name, irs_query, model=model, top_k=top_k
                            )
                    values = result.by_metadata(collection, "oid")
                    outcome.values[key] = {
                        OID.parse(oid_str): value for oid_str, value in values.items()
                    }
                except BaseException as exc:  # mapped + contained per query
                    outcome.errors[key] = map_query_error(exc)
                if collect:
                    outcome.costs[key] = profile
                if query_span is not None:
                    outcome.query_spans[key] = query_span

    elapsed = time.perf_counter() - started
    registry.rolling("service.batch.group_seconds").observe(elapsed)
    registry.histogram("service.batch.group_size").observe(len(requested))
    registry.counter("service.batch.dedup_saved").inc(outcome.deduplicated)
    return outcome


def query_outcome(query_span) -> Tuple[str, Optional[int], Optional[int]]:
    """Classify a finished ``service.query`` span: (outcome, epoch, segments).

    Reads the nested ``irs.query`` span's attributes (PR 5 records the
    pruning decision there).  Outcomes: ``cached`` (result LRU hit),
    ``pruned`` (block-max path), ``fallback:<reason>``, or ``exhaustive``.
    """
    attrs = {}
    stack = list(getattr(query_span, "children", None) or ())
    while stack:
        child = stack.pop()
        if getattr(child, "name", "") == "irs.query":
            attrs = getattr(child, "attributes", None) or {}
            break
        stack.extend(getattr(child, "children", None) or ())
    if attrs.get("cached"):
        outcome = "cached"
    elif attrs.get("pruned"):
        outcome = "pruned"
    elif "prune_fallback" in attrs:
        outcome = "fallback:" + str(attrs["prune_fallback"])
    else:
        outcome = "exhaustive"
    return outcome, attrs.get("epoch"), attrs.get("segments")


def result_for(
    outcome: GroupOutcome,
    db: Database,
    collection_obj: DBObject,
    irs_name: str,
    model: Optional[str],
    default_model: Optional[str],
    irs_query: str,
    top_k: Optional[int] = None,
) -> ResultSet:
    """Build one request's :class:`ResultSet` from its group's outcome.

    Ranking and hit construction happen once per distinct query; duplicate
    requests get their own lightweight :class:`ResultSet` sharing the same
    ranked hits list.
    """
    key = (model or default_model, irs_query, top_k)
    error = outcome.errors.get(key)
    if error is not None:
        raise error
    built = outcome.built.get(key)
    if built is None:
        built = ResultSet.from_values(
            outcome.values[key],
            db=db,
            collection=irs_name,
            query=irs_query,
            model=key[0],
            epoch=outcome.epoch,
        )
        outcome.built[key] = built
        return built
    return ResultSet(
        built.hits,
        collection=irs_name,
        query=irs_query,
        model=key[0],
        epoch=outcome.epoch,
    )
