"""Batched IRS query execution: one snapshot, many requests.

The service's throughput win on concurrent IRS traffic comes from here,
not from thread parallelism (scoring is pure Python): a batching window's
requests against the same collection are

* **deduplicated** — each distinct ``(model, query, top_k)`` triple is
  scored once per window, however many clients asked for it;
* **snapshot-shared** — all distinct queries of a group are scored under a
  single read hold of the collection's lock, against one index epoch and
  one :class:`~repro.irs.statistics.StatisticsCache` state, so a group is
  never split across an update;
* **propagation-amortized** — pending deferred updates are propagated once
  per group instead of once per request.

Semantic difference from the classic inline path, by design: the pooled
path does **not** write the COLLECTION object's persistent result buffer
(Section 4.2).  Under concurrency every buffer write would X-lock the
collection object and serialize all readers; the engine's in-process
result LRU plus the per-group snapshot provide the equivalent intra- and
inter-query reuse.  ``Session(workers=0)`` (the default, inline mode)
keeps the paper's persistent-buffer semantics exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core import updates
from repro.core.context import CouplingContext
from repro.errors import (
    CouplingError,
    QueryError,
    ReproError,
)
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID
from repro.service.results import ResultSet


def map_query_error(exc: BaseException) -> BaseException:
    """Route an arbitrary query-path failure into the ReproError hierarchy.

    :class:`ReproError` subclasses pass through untouched; anything else
    (bare ``KeyError`` / ``ValueError`` / …) is wrapped as
    :class:`QueryError` with the original attached as ``__cause__`` —
    callers of the public API never need bare ``except Exception``.
    """
    if isinstance(exc, ReproError):
        return exc
    wrapped = QueryError(f"query failed: {exc!r}")
    wrapped.__cause__ = exc
    return wrapped


def map_coupling_error(exc: BaseException) -> BaseException:
    """Like :func:`map_query_error` but for indexing/maintenance paths."""
    if isinstance(exc, ReproError):
        return exc
    wrapped = CouplingError(f"coupling operation failed: {exc!r}")
    wrapped.__cause__ = exc
    return wrapped


@dataclass
class GroupOutcome:
    """Per-distinct-query results (or failures) of one executed group."""

    epoch: Optional[int] = None
    #: (model, query, top_k) -> ranked {OID: value}
    values: Dict[Tuple[Optional[str], str, Optional[int]], Dict[OID, float]] = field(
        default_factory=dict
    )
    #: (model, query, top_k) -> mapped exception for queries that failed
    errors: Dict[Tuple[Optional[str], str, Optional[int]], BaseException] = field(
        default_factory=dict
    )
    #: (model, query, top_k) -> the ResultSet built for the first request of
    #: that key; duplicates share its ranked hits list (built once per group).
    built: Dict[Tuple[Optional[str], str, Optional[int]], ResultSet] = field(
        default_factory=dict
    )
    deduplicated: int = 0


def execute_group(
    db: Database,
    context: CouplingContext,
    collection_obj: DBObject,
    requested: List[Tuple[Optional[str], str, Optional[int]]],
) -> GroupOutcome:
    """Execute one collection's batched IRS queries against one snapshot.

    ``requested`` lists each request's ``(model_override, irs_query,
    top_k)``; duplicates are welcome — that is the point.  Failures are
    per query: one malformed expression poisons only its own requests,
    the rest of the group still gets results.
    """
    engine = context.engine
    registry = obs.metrics()
    started = time.perf_counter()
    outcome = GroupOutcome()

    with obs.tracer().span(
        "service.group", requests=len(requested)
    ) as span:
        # One propagation per group, before the read snapshot is taken.
        if updates.has_pending(collection_obj):
            updates.propagate(collection_obj, forced=True)

        default_model = collection_obj.get("model")
        irs_name = collection_obj.get("irs_name")
        span.set_attribute("collection", irs_name)

        distinct: List[Tuple[Optional[str], str, Optional[int]]] = []
        seen = set()
        for model, irs_query, top_k in requested:
            key = (model or default_model, irs_query, top_k)
            if key not in seen:
                seen.add(key)
                distinct.append(key)
        outcome.deduplicated = len(requested) - len(distinct)
        span.set_attribute("distinct", len(distinct))

        # All distinct queries scored under ONE read hold: a single epoch,
        # a single statistics snapshot, no update in between.
        with engine.reading(irs_name):
            collection = engine.collection(irs_name)
            outcome.epoch = collection.index.epoch
            for key in distinct:
                model, irs_query, top_k = key
                try:
                    result = engine.query(irs_name, irs_query, model=model, top_k=top_k)
                    values = result.by_metadata(collection, "oid")
                    outcome.values[key] = {
                        OID.parse(oid_str): value for oid_str, value in values.items()
                    }
                except BaseException as exc:  # mapped + contained per query
                    outcome.errors[key] = map_query_error(exc)

    elapsed = time.perf_counter() - started
    registry.histogram("service.batch.group_seconds").observe(elapsed)
    registry.histogram("service.batch.group_size").observe(len(requested))
    registry.counter("service.batch.dedup_saved").inc(outcome.deduplicated)
    return outcome


def result_for(
    outcome: GroupOutcome,
    db: Database,
    collection_obj: DBObject,
    irs_name: str,
    model: Optional[str],
    default_model: Optional[str],
    irs_query: str,
    top_k: Optional[int] = None,
) -> ResultSet:
    """Build one request's :class:`ResultSet` from its group's outcome.

    Ranking and hit construction happen once per distinct query; duplicate
    requests get their own lightweight :class:`ResultSet` sharing the same
    ranked hits list.
    """
    key = (model or default_model, irs_query, top_k)
    error = outcome.errors.get(key)
    if error is not None:
        raise error
    built = outcome.built.get(key)
    if built is None:
        built = ResultSet.from_values(
            outcome.values[key],
            db=db,
            collection=irs_name,
            query=irs_query,
            model=key[0],
            epoch=outcome.epoch,
        )
        outcome.built[key] = built
        return built
    return ResultSet(
        built.hits,
        collection=irs_name,
        query=irs_query,
        model=key[0],
        epoch=outcome.epoch,
    )
