"""``repro.Session`` — the supported entry point of the coupling API.

A session binds a database (usually through a :class:`repro.DocumentSystem`)
to a query surface that returns typed :class:`~repro.service.results.ResultSet`
objects and routes every failure through the :class:`~repro.errors.ReproError`
hierarchy.

Two execution modes, chosen at construction:

``workers=0`` (**inline**, the default)
    Calls run on the caller's thread with the classic coupling semantics of
    the paper — including persistent result-buffer writes on the COLLECTION
    object (Section 4.2).  No service threads exist.

``workers>=1`` (**pooled**)
    Calls are admitted to an embedded
    :class:`~repro.service.executor.DocumentService`: bounded queue,
    cross-request batching with shared snapshots, automatic deadlock retry,
    per-request timeouts.  Built for many concurrent client threads sharing
    one session.  The pooled IRS path relies on the engine's result LRU
    instead of the persistent buffer (see :mod:`repro.service.batch`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro import obs
from repro.obs.telemetry import CostProfile, RequestTelemetry, collecting, sampler
from repro.core import collection as collection_module
from repro.core import updates
from repro.core.context import CouplingContext, coupling_context
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.service import batch as batch_module
from repro.service.config import ServiceConfig
from repro.service.executor import BatchItem, DocumentService, _UNSET
from repro.service.results import ResultSet
from repro.errors import ReproError


@contextmanager
def _mapped_errors(mapper: Callable[[BaseException], BaseException]):
    """Route non-Repro failures through ``mapper`` (ReproErrors pass through)."""
    try:
        yield
    except ReproError:
        raise
    except BaseException as exc:
        raise mapper(exc) from exc


class Session:
    """A client's handle onto the coupled document system.

    Construct from a :class:`repro.DocumentSystem` (which owns a default
    inline session as ``system.session``) or directly from a
    :class:`~repro.oodb.database.Database` that has the coupling installed.
    """

    def __init__(
        self,
        source: Union[Database, Any],
        workers: int = 0,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.db: Database = source if isinstance(source, Database) else source.db
        self.context: CouplingContext = coupling_context(self.db)
        if config is None and workers > 0:
            config = ServiceConfig(workers=workers)
        self._service: Optional[DocumentService] = (
            DocumentService(self.db, config) if config is not None else None
        )
        self._collections_by_name: Dict[str, DBObject] = {}

    # -- introspection ------------------------------------------------------

    @property
    def pooled(self) -> bool:
        """True when this session executes through a worker pool."""
        return self._service is not None

    @property
    def service(self) -> Optional[DocumentService]:
        """The embedded service (None for inline sessions)."""
        return self._service

    # -- collection addressing ----------------------------------------------

    def _resolve(self, collection_obj: Union[DBObject, str]) -> DBObject:
        """Accept a COLLECTION object or its name.

        Name addressing is what makes the Session contract
        transport-agnostic — a remote session can only name collections,
        so the local one accepts names too and the same workload code
        runs over either.  Names never rebind (collections are not
        renamed), so the cache needs no invalidation; a miss rescans.
        """
        if not isinstance(collection_obj, str):
            return collection_obj
        cached = self._collections_by_name.get(collection_obj)
        if cached is not None and self.db.object_exists(cached.oid):
            return cached
        for obj in self.db.instances_of(collection_module.COLLECTION_CLASS):
            if obj.get("irs_name") == collection_obj:
                self._collections_by_name[collection_obj] = obj
                return obj
        from repro.errors import UnknownCollectionError

        raise UnknownCollectionError(f"no collection named {collection_obj!r}")

    def _resolve_object(self, obj: Any) -> DBObject:
        """Accept a DBObject, an OID, or an ``"OID<n>"`` string."""
        if isinstance(obj, DBObject):
            return obj
        from repro.oodb.oid import OID

        if isinstance(obj, str):
            obj = OID.parse(obj)
        if isinstance(obj, OID):
            return self.db.get_object(obj)
        oid = getattr(obj, "oid", None)  # e.g. a RemoteElement snapshot
        if isinstance(oid, OID):
            return self.db.get_object(oid)
        raise TypeError(f"cannot resolve {obj!r} to a database object")

    # -- collection management ---------------------------------------------

    def create_collection(
        self, name: str, spec_query: str = "", **options: Any
    ) -> DBObject:
        """Create a COLLECTION object and its encapsulated IRS collection."""
        with _mapped_errors(batch_module.map_coupling_error):
            created = collection_module._create_collection(
                self.db, name, spec_query, **options
            )
        self._collections_by_name[name] = created
        return created

    def collection(self, name: str) -> DBObject:
        """The COLLECTION object for ``name`` (UnknownCollectionError if absent)."""
        return self._resolve(name)

    def collections(self) -> List[str]:
        """Names of every collection in this database, sorted."""
        return sorted(
            obj.get("irs_name")
            for obj in self.db.instances_of(collection_module.COLLECTION_CLASS)
            if obj.get("irs_name")
        )

    def index(self, collection_obj: Union[DBObject, str], **options: Any) -> bool:
        """Run ``indexObjects``: (re)populate the IRS collection."""
        collection_obj = self._resolve(collection_obj)
        if self._service is not None:
            return self._service.call(
                lambda: collection_module.index_objects(collection_obj, **options),
                label="index",
            )
        with _mapped_errors(batch_module.map_coupling_error):
            return collection_module.index_objects(collection_obj, **options)

    def propagate(self, collection_obj: Union[DBObject, str]) -> int:
        """Apply pending deferred updates now."""
        collection_obj = self._resolve(collection_obj)
        if self._service is not None:
            return self._service.call(
                lambda: updates.propagate(collection_obj), label="propagate"
            )
        with _mapped_errors(batch_module.map_coupling_error):
            return updates.propagate(collection_obj)

    def remove(self, collection_obj: Union[DBObject, str], obj: Any) -> None:
        """Remove ``obj``'s documents from the collection (``deleteObject``).

        Records a DELETE update on the COLLECTION object: under the eager
        policy the object's IRS documents are dropped immediately (a
        tombstone on a segmented index); under the deferred policy the
        removal waits in ``pending_ops`` until the next propagation — a
        query issued with removals pending forces it, exactly like the
        other update kinds (Section 4.6).
        """
        collection_obj = self._resolve(collection_obj)
        obj = self._resolve_object(obj)
        if self._service is not None:
            self._service.call(
                lambda: collection_module.delete_object(collection_obj, obj),
                label="remove",
            )
            return
        with _mapped_errors(batch_module.map_coupling_error):
            collection_module.delete_object(collection_obj, obj)

    # -- querying -----------------------------------------------------------

    def query(
        self,
        collection_obj: Union[DBObject, str],
        irs_query: str,
        model: Optional[str] = None,
        timeout: Any = _UNSET,
        top_k: Optional[int] = None,
    ) -> ResultSet:
        """``getIRSResult`` as a typed result: ranked hits, best first.

        ``top_k`` asks for only the k best hits; eligible ranked queries
        are scored with block-max early termination (same k-prefix as the
        exhaustive ranking), others fall back to exhaustive scoring and
        truncate.
        """
        collection_obj = self._resolve(collection_obj)
        if self._service is not None:
            return self._service.query(collection_obj, irs_query, model, timeout, top_k)
        return self._query_inline(collection_obj, irs_query, model, top_k)

    def query_batch(
        self, items: Sequence[BatchItem], timeout: Any = _UNSET
    ) -> List[ResultSet]:
        """Run many IRS queries; one :class:`ResultSet` per item, in order.

        Items are ``(collection_obj, irs_query)``,
        ``(collection_obj, irs_query, model)`` or
        ``(collection_obj, irs_query, model, top_k)`` tuples.  Pooled
        sessions execute the batch through one batching window (shared
        snapshots, deduplicated scoring); inline sessions run the items
        sequentially.
        """
        items = [
            (self._resolve(item[0]),) + tuple(item[1:]) for item in items
        ]
        if self._service is not None:
            return self._service.query_batch(items, timeout)
        results = []
        for item in items:
            collection_obj, irs_query = item[0], item[1]
            model = item[2] if len(item) > 2 else None
            top_k = item[3] if len(item) > 3 else None
            results.append(
                self._query_inline(collection_obj, irs_query, model, top_k)
            )
        return results

    def _query_inline(
        self,
        collection_obj: DBObject,
        irs_query: str,
        model: Optional[str],
        top_k: Optional[int] = None,
    ) -> ResultSet:
        default_model = collection_obj.get("model")
        irs_name = collection_obj.get("irs_name")
        profile = CostProfile() if obs.is_enabled() else None
        started = time.perf_counter()
        request_span = None
        with _mapped_errors(batch_module.map_query_error), collecting(profile):
            with obs.tracer().span(
                "service.request", query=obs.trim(irs_query), mode="inline",
            ) as request_span:
                if top_k is None and (model is None or model == default_model):
                    # The classic path: persistent buffer, default model.
                    values = collection_module._get_irs_result(
                        collection_obj, irs_query
                    )
                else:
                    # Model override or top-k request: score directly (the
                    # persistent buffer stores full rankings for the collection
                    # default model only; both cases bypass it).
                    engine = self.context.engine
                    if updates.has_pending(collection_obj):
                        propagation_started = time.perf_counter()
                        applied = updates.propagate(collection_obj, forced=True)
                        if profile is not None:
                            profile.propagations += 1
                            profile.propagated_updates += applied
                            profile.propagation_seconds += (
                                time.perf_counter() - propagation_started
                            )
                    from repro.oodb.oid import OID

                    with engine.reading(irs_name):
                        result = engine.query(
                            irs_name, irs_query, model=model, top_k=top_k
                        )
                        raw = result.by_metadata(engine.collection(irs_name), "oid")
                    values = {
                        OID.parse(oid_str): value for oid_str, value in raw.items()
                    }
                epoch = self.context.engine.collection(irs_name).index.epoch
        result_set = ResultSet.from_values(
            values,
            db=self.db,
            collection=irs_name,
            query=irs_query,
            model=model or default_model,
            epoch=epoch,
        )
        if profile is not None:
            result_set.telemetry = self._inline_telemetry(
                irs_name, irs_query, model or default_model, top_k,
                epoch, profile, started, request_span,
            )
        return result_set

    def _inline_telemetry(
        self,
        irs_name: str,
        irs_query: str,
        model: Optional[str],
        top_k: Optional[int],
        epoch: Optional[int],
        profile: CostProfile,
        started: float,
        request_span,
    ) -> RequestTelemetry:
        """Package an inline query's cost profile (no batch — all its own)."""
        telemetry = RequestTelemetry(
            collection=irs_name,
            query=irs_query,
            model=model or "",
            top_k=top_k,
            mode="inline",
        )
        telemetry.epoch = epoch
        telemetry.cost = profile
        telemetry.run_seconds = time.perf_counter() - started
        telemetry.total_seconds = telemetry.run_seconds
        telemetry.outcome, _epoch, _segments = batch_module.query_outcome(request_span)
        if profile.queries == 0:
            # The classic path answered from the COLLECTION's persistent
            # result buffer without ever reaching the engine (Section 4.2).
            telemetry.outcome = "buffered"
        telemetry.sampled = sampler().keep(telemetry.total_seconds)
        if telemetry.sampled and request_span is not None:
            telemetry.trace = request_span
        return telemetry

    def find_value(
        self, collection_obj: Union[DBObject, str], irs_query: str, obj: Any
    ) -> float:
        """``findIRSValue``: the IRS value of one object (derived if needed)."""
        collection_obj = self._resolve(collection_obj)
        obj = self._resolve_object(obj)
        if self._service is not None:
            return self._service.call(
                lambda: collection_module._find_irs_value(
                    collection_obj, irs_query, obj
                ),
                label="find_value",
                error_mapper=batch_module.map_query_error,
            )
        with _mapped_errors(batch_module.map_query_error):
            return collection_module._find_irs_value(collection_obj, irs_query, obj)

    def execute(
        self,
        text: str,
        bindings: Optional[Dict[str, Any]] = None,
        timeout: Any = _UNSET,
    ) -> List[tuple]:
        """Run a mixed OODBMS query (content predicates via ``getIRSValue``)."""
        if self._service is not None:
            return self._service.call(
                lambda: self.db.query(text, bindings),
                label="mixed",
                error_mapper=batch_module.map_query_error,
                timeout=timeout,
            )
        with _mapped_errors(batch_module.map_query_error):
            return self.db.query(text, bindings)

    def explain(self, text: str, bindings: Optional[Dict[str, Any]] = None):
        """Execute a mixed query under the tracer; returns an ExplainResult.

        Always runs inline — the explain tree belongs to the calling thread.
        """
        from repro.obs import explain as obs_explain

        with _mapped_errors(batch_module.map_query_error):
            return obs_explain(self.db, text, bindings)

    # -- operations ---------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe, shaped like the remote one (transport: local)."""
        import repro

        return {
            "pong": True,
            "protocol": None,
            "server_version": repro.__version__,
        }

    def health(self, slo_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Overload health seen from this session (see repro.obs.health)."""
        from repro.obs.health import DEFAULT_SLO_SECONDS, build_health

        storage = None
        store = getattr(self.context, "storage", None)
        if store is not None:
            storage = dict(store.stats())
            storage["dirty"] = store.dirty_info(self.context.engine)
        return build_health(
            engine=self.context.engine,
            services=[self._service] if self._service is not None else [],
            slo_seconds=(
                DEFAULT_SLO_SECONDS if slo_seconds is None else slo_seconds
            ),
            storage=storage,
        )

    def checkpoint(self) -> Dict[str, Any]:
        """Checkpoint the durable store + database; returns commit stats.

        Appends one incremental checkpoint to the single-file store (see
        docs/storage-format.md) and then checkpoints the OODB.  Raises
        :class:`~repro.errors.StoreError` on systems without a store.
        Pooled sessions run it through the worker service so it
        serializes with in-flight index/update work.
        """
        from repro.core.system import checkpoint_coupling

        if self._service is not None:
            return self._service.call(
                lambda: checkpoint_coupling(self.db), label="checkpoint"
            )
        return checkpoint_coupling(self.db)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop the worker pool (inline sessions: no-op).

        The database stays open — it belongs to the system, not the session.
        """
        if self._service is not None:
            self._service.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        mode = (
            f"pooled workers={self._service.config.workers}"
            if self._service is not None
            else "inline"
        )
        return f"<Session {mode} db={self.db!r}>"
