"""The embedded multi-client service: admission, batching, workers, retry.

Request lifecycle::

    submit ──> bounded admission queue ──> dispatcher drains a window
                   │ (Full → ServiceOverloadedError)
                   v
          window partitioned: IRS requests grouped per collection,
          everything else solo
                   │
                   v
          worker pool executes groups (one snapshot per group, distinct
          queries deduplicated — see repro.service.batch) and solos, each
          wrapped in retry-with-jittered-backoff on DeadlockError /
          LockTimeoutError
                   │
                   v
          per-request futures resolve; the dispatcher waits for the
          window to finish (the cycle barrier) — meanwhile the next
          window's requests accumulate in the queue, which is what makes
          cross-request batching effective

Everything is instrumented through :mod:`repro.obs`: ``service.queue.depth``
gauge (plus the ``depth_peak`` high watermark), per-stage rolling latency
histograms with live percentiles (``service.request.queue_seconds`` /
``run_seconds`` / ``total_seconds``), ``service.retries`` counters, batch
shape histograms.  Since PR 7 every successful IRS result also carries
``ResultSet.telemetry`` — the request's attributed share of its batch
window's cost (see :mod:`repro.obs.telemetry`).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures import wait as _wait_futures
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.obs.telemetry import CostProfile, RequestTelemetry, sampler
from repro.core.context import coupling_context
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    RequestTimeoutError,
    RetryExhaustedError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.oodb.database import Database
from repro.oodb.objects import DBObject
from repro.service import batch as batch_module
from repro.service.config import ServiceConfig
from repro.service.results import ResultSet

_UNSET = object()

#: A query_batch item: (collection_obj, irs_query) or (collection_obj,
#: irs_query, model) or (collection_obj, irs_query, model, top_k).
BatchItem = Union[
    Tuple[DBObject, str],
    Tuple[DBObject, str, Optional[str]],
    Tuple[DBObject, str, Optional[str], Optional[int]],
]


@dataclass
class _Request:
    """One admitted unit of work, resolved through its future."""

    kind: str  # "irs" or "call"
    future: "Future[Any]"
    enqueued_at: float
    collection_obj: Optional[DBObject] = None
    irs_query: str = ""
    model: Optional[str] = None
    top_k: Optional[int] = None
    fn: Optional[Callable[[], Any]] = None
    error_mapper: Callable[[BaseException], BaseException] = field(
        default=batch_module.map_query_error
    )
    label: str = ""


class DocumentService:
    """Executes coupling requests for many concurrent clients.

    Embedded (in-process, thread-based); one instance per database.  Most
    callers never touch this class directly — :class:`repro.Session` with
    ``workers >= 1`` owns one.
    """

    def __init__(self, db: Database, config: Optional[ServiceConfig] = None) -> None:
        self.db = db
        self.config = config or ServiceConfig()
        self.context = coupling_context(db)
        self._queue: "queue.Queue[_Request]" = queue.Queue(maxsize=self.config.max_queue)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._closed = False
        self._rng = random.Random(self.config.retry_seed)
        self._rng_lock = threading.Lock()
        self._owns_merge_scheduler = False
        if self.config.auto_start:
            self.start()

    # -- lifecycle ----------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._dispatcher is not None and self._dispatcher.is_alive()

    def start(self) -> None:
        """Start the worker pool and the dispatcher (idempotent)."""
        if self._closed:
            raise ServiceClosedError("service already closed")
        if self.running:
            return
        self._stop.clear()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-service"
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatcher", daemon=True
        )
        self._dispatcher.start()
        # A pooled service implies concurrent update traffic: run the
        # engine's background segment merges alongside the worker pool.
        engine = self.context.engine
        scheduler = getattr(engine, "_merge_scheduler", None)
        if scheduler is None or not scheduler.running:
            engine.start_merge_scheduler()
            self._owns_merge_scheduler = True

    def close(self) -> None:
        """Stop accepting work, fail queued requests, stop the pool."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
            self._dispatcher = None
        while True:
            try:
                request = self._queue.get_nowait()
            except queue.Empty:
                break
            request.future.set_exception(
                ServiceClosedError("service closed before the request ran")
            )
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._owns_merge_scheduler:
            self.context.engine.stop_merge_scheduler()
            self._owns_merge_scheduler = False
        obs.metrics().gauge("service.queue.depth").set(0)

    def __enter__(self) -> "DocumentService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission ---------------------------------------------------------

    def submit_query(
        self,
        collection_obj: DBObject,
        irs_query: str,
        model: Optional[str] = None,
        top_k: Optional[int] = None,
    ) -> "Future[ResultSet]":
        """Enqueue one IRS query; resolves to a :class:`ResultSet`."""
        return self._admit(
            _Request(
                kind="irs",
                future=Future(),
                enqueued_at=time.perf_counter(),
                collection_obj=collection_obj,
                irs_query=irs_query,
                model=model,
                top_k=top_k,
                label="query",
            )
        )

    def submit_call(
        self,
        fn: Callable[[], Any],
        label: str = "call",
        error_mapper: Callable[[BaseException], BaseException] = batch_module.map_coupling_error,
    ) -> "Future[Any]":
        """Enqueue an arbitrary coupling operation (index, mixed query, …)."""
        return self._admit(
            _Request(
                kind="call",
                future=Future(),
                enqueued_at=time.perf_counter(),
                fn=fn,
                error_mapper=error_mapper,
                label=label,
            )
        )

    def _admit(self, request: _Request) -> "Future[Any]":
        if self._closed:
            raise ServiceClosedError("service already closed")
        registry = obs.metrics()
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            registry.counter("service.requests.rejected").inc()
            raise ServiceOverloadedError(
                f"admission queue full ({self.config.max_queue} requests); "
                "shed load or retry later"
            ) from None
        registry.counter("service.requests.submitted").inc()
        depth = self._queue.qsize()
        registry.gauge("service.queue.depth").set(depth)
        registry.gauge("service.queue.depth_peak").max_of(depth)
        return request.future

    # -- synchronous wrappers ----------------------------------------------

    def query(
        self,
        collection_obj: DBObject,
        irs_query: str,
        model: Optional[str] = None,
        timeout: Any = _UNSET,
        top_k: Optional[int] = None,
    ) -> ResultSet:
        """Submit one IRS query and wait for its result."""
        return self._await(
            self.submit_query(collection_obj, irs_query, model, top_k), timeout
        )

    def query_batch(
        self, items: Sequence[BatchItem], timeout: Any = _UNSET
    ) -> List[ResultSet]:
        """Submit many IRS queries at once and wait for all of them.

        Submitting together is what lets the dispatcher put them into one
        batching window (shared snapshots, deduplicated scoring).
        """
        futures = []
        for item in items:
            collection_obj, irs_query = item[0], item[1]
            model = item[2] if len(item) > 2 else None
            top_k = item[3] if len(item) > 3 else None
            futures.append(self.submit_query(collection_obj, irs_query, model, top_k))
        return [self._await(future, timeout) for future in futures]

    def call(
        self,
        fn: Callable[[], Any],
        label: str = "call",
        error_mapper: Callable[[BaseException], BaseException] = batch_module.map_coupling_error,
        timeout: Any = _UNSET,
    ) -> Any:
        """Submit an arbitrary operation and wait for it."""
        return self._await(self.submit_call(fn, label, error_mapper), timeout)

    def _await(self, future: "Future[Any]", timeout: Any = _UNSET) -> Any:
        effective = self.config.request_timeout if timeout is _UNSET else timeout
        try:
            return future.result(timeout=effective)
        except _FutureTimeout:
            obs.metrics().counter("service.requests.timeouts").inc()
            raise RequestTimeoutError(
                f"request did not complete within {effective}s"
            ) from None

    # -- dispatcher ---------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            window = [first]
            deadline = time.perf_counter() + self.config.batch_linger
            while len(window) < self.config.window_size:
                try:
                    window.append(self._queue.get_nowait())
                except queue.Empty:
                    # Linger briefly: clients released by the previous
                    # window's barrier are resubmitting right now.
                    if time.perf_counter() >= deadline or self._stop.is_set():
                        break
                    time.sleep(0.0003)
            obs.metrics().gauge("service.queue.depth").set(self._queue.qsize())
            self._run_window(window)

    def _run_window(self, window: List[_Request]) -> None:
        registry = obs.metrics()
        registry.histogram("service.batch.window_size").observe(len(window))
        groups: Dict[Any, List[_Request]] = {}
        solos: List[_Request] = []
        for request in window:
            if request.kind == "irs":
                groups.setdefault(request.collection_obj.oid, []).append(request)
            else:
                solos.append(request)
        registry.histogram("service.batch.groups").observe(len(groups))
        pool = self._pool
        if pool is None:  # closed mid-flight
            for request in window:
                request.future.set_exception(ServiceClosedError("service closed"))
            return
        tasks = [
            pool.submit(self._run_group, requests, len(window))
            for requests in groups.values()
        ]
        tasks.extend(pool.submit(self._run_solo, request) for request in solos)
        # Cycle barrier: while this window executes, the next one's
        # requests pile up in the admission queue and batch better.
        _wait_futures(tasks)

    # -- execution ----------------------------------------------------------

    def _run_group(self, requests: List[_Request], window_size: int = 0) -> None:
        collection_obj = requests[0].collection_obj
        started = time.perf_counter()
        try:
            outcome = self._with_retry(
                lambda: self._execute_group_once(collection_obj, requests),
                label="group",
            )
        except BaseException as exc:
            mapped = batch_module.map_query_error(exc)
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(mapped)
            self._observe(requests, started, failed=True)
            return
        default_model = collection_obj.get("model")
        irs_name = collection_obj.get("irs_name")
        finished = time.perf_counter()
        totals = outcome.group_totals()
        for request in requests:
            if request.future.done():
                continue
            try:
                result = batch_module.result_for(
                    outcome,
                    self.db,
                    collection_obj,
                    irs_name,
                    request.model,
                    default_model,
                    request.irs_query,
                    request.top_k,
                )
                if totals is not None:
                    result.telemetry = self._build_telemetry(
                        request, outcome, irs_name, default_model,
                        started, finished, totals, window_size,
                    )
                request.future.set_result(result)
            except BaseException as exc:
                request.future.set_exception(exc)
        self._observe(requests, started)

    def _build_telemetry(
        self,
        request: _Request,
        outcome,
        irs_name: str,
        default_model: Optional[str],
        started: float,
        finished: float,
        totals: Dict[str, float],
        window_size: int,
    ) -> RequestTelemetry:
        """Attribute the group's shared work back to one rider request.

        Conservation by construction: this request receives its key's cost
        divided by that key's rider count, plus the group-shared cost
        divided by the group size.  Summed over the group's requests the
        splits rebuild ``totals`` exactly.
        """
        key = (request.model or default_model, request.irs_query, request.top_k)
        telemetry = RequestTelemetry(
            collection=irs_name,
            query=request.irs_query,
            model=key[0] or "",
            top_k=request.top_k,
            mode="batched",
        )
        telemetry.epoch = outcome.epoch
        telemetry.window_size = window_size or outcome.requested_count
        telemetry.group_size = outcome.requested_count
        telemetry.distinct_queries = len(outcome.costs or ())
        telemetry.riders = outcome.riders.get(key, 1)
        cost = CostProfile()
        key_cost = (outcome.costs or {}).get(key)
        if key_cost is not None and telemetry.riders:
            cost.merge(key_cost, 1.0 / telemetry.riders)
        if outcome.shared is not None and outcome.requested_count:
            cost.merge(outcome.shared, 1.0 / outcome.requested_count)
        telemetry.cost = cost
        telemetry.queue_seconds = started - request.enqueued_at
        telemetry.run_seconds = finished - started
        telemetry.total_seconds = finished - request.enqueued_at
        telemetry.group_totals = totals
        query_span = outcome.query_spans.get(key)
        telemetry.outcome, _epoch, _segments = batch_module.query_outcome(query_span)
        # Tail-based retention: the span tree survives only for slow
        # requests or the head-sampled fraction of healthy traffic.
        telemetry.sampled = sampler().keep(telemetry.total_seconds)
        if telemetry.sampled and query_span is not None:
            telemetry.trace = query_span
        return telemetry

    def _execute_group_once(self, collection_obj: DBObject, requests: List[_Request]):
        if self.config.transactional_reads:
            with self.db.begin():
                return batch_module.execute_group(
                    self.db,
                    self.context,
                    collection_obj,
                    [(r.model, r.irs_query, r.top_k) for r in requests],
                )
        return batch_module.execute_group(
            self.db,
            self.context,
            collection_obj,
            [(r.model, r.irs_query, r.top_k) for r in requests],
        )

    def _run_solo(self, request: _Request) -> None:
        started = time.perf_counter()
        try:
            result = self._with_retry(request.fn, label=request.label)
        except BaseException as exc:
            if not request.future.done():
                request.future.set_exception(request.error_mapper(exc))
            self._observe([request], started, failed=True)
            return
        if not request.future.done():
            request.future.set_result(result)
        self._observe([request], started)

    def _with_retry(self, fn: Callable[[], Any], label: str) -> Any:
        """Run ``fn``, retrying deadlock/lock-timeout victims with backoff."""
        registry = obs.metrics()
        attempt = 0
        while True:
            attempt += 1
            try:
                if self.config.failure_injector is not None:
                    self.config.failure_injector(label, attempt)
                return fn()
            except (DeadlockError, LockTimeoutError) as exc:
                if attempt > self.config.max_retries:
                    registry.counter("service.retries.exhausted").inc()
                    raise RetryExhaustedError(
                        f"{label} still aborting after {attempt} attempts"
                    ) from exc
                registry.counter("service.retries").inc()
                registry.counter(f"service.retries.{label}").inc()
                with self._rng_lock:
                    jitter = 0.5 + self._rng.random()
                delay = (
                    min(
                        self.config.backoff_cap,
                        self.config.backoff_base * (2 ** (attempt - 1)),
                    )
                    * jitter
                )
                time.sleep(delay)

    def _observe(
        self, requests: List[_Request], started: float, failed: bool = False
    ) -> None:
        registry = obs.metrics()
        now = time.perf_counter()
        run_seconds = now - started
        for request in requests:
            registry.rolling("service.request.queue_seconds").observe(
                started - request.enqueued_at
            )
            registry.rolling("service.request.run_seconds").observe(run_seconds)
            registry.rolling("service.request.total_seconds").observe(
                now - request.enqueued_at
            )
            registry.counter(
                "service.requests.failed" if failed else "service.requests.completed"
            ).inc()
