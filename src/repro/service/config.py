"""Tunables of the concurrent service layer.

One frozen dataclass so a :class:`~repro.service.executor.DocumentService`
can be described, compared, and rebuilt from plain numbers.  The defaults
are sized for an embedded, in-process service: a handful of workers, a
bounded queue a few windows deep, and millisecond-scale backoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of a :class:`~repro.service.executor.DocumentService`.

    ``workers``
        Pool threads executing request groups.
    ``max_queue``
        Bound of the admission queue; submissions beyond it are rejected
        with :class:`~repro.errors.ServiceOverloadedError` (backpressure).
    ``max_batch_per_worker``
        The dispatcher drains up to ``workers * max_batch_per_worker``
        requests into one batching window (cross-request batching is where
        the throughput win comes from — shared snapshots and deduplicated
        scoring, not thread parallelism).
    ``batch_linger``
        Seconds the dispatcher waits for an underfull window to fill before
        executing it.  Clients released by the previous window need a moment
        to resubmit; without a linger, windows right after a barrier run
        nearly empty and the batching win evaporates.  0 disables it.
    ``max_retries``
        Automatic retries of a request aborted by
        :class:`~repro.errors.DeadlockError` /
        :class:`~repro.errors.LockTimeoutError` before
        :class:`~repro.errors.RetryExhaustedError` is raised.
    ``backoff_base`` / ``backoff_cap``
        Jittered exponential backoff between retries:
        ``min(cap, base * 2**(attempt-1)) * (0.5 + rng.random())`` seconds.
    ``request_timeout``
        Per-request deadline in seconds for the synchronous wrappers
        (None = wait forever); exceeding it raises
        :class:`~repro.errors.RequestTimeoutError`.
    ``transactional_reads``
        When True, pooled query execution wraps each group in an explicit
        database transaction (S-locking what it reads).  Off by default:
        snapshot consistency already comes from the collection read lock.
    ``retry_seed``
        Seed of the backoff jitter RNG (tests pin it for determinism).
    ``failure_injector``
        Test hook called as ``fn(kind, attempt)`` at the start of every
        execution attempt; raising ``DeadlockError`` from it simulates a
        victim abort without needing a real lock cycle.
    ``auto_start``
        When False the service is built stopped (tests fill the admission
        queue first, then assert overload behaviour).
    """

    workers: int = 4
    max_queue: int = 64
    max_batch_per_worker: int = 4
    batch_linger: float = 0.002
    max_retries: int = 3
    backoff_base: float = 0.005
    backoff_cap: float = 0.1
    request_timeout: Optional[float] = 30.0
    transactional_reads: bool = False
    retry_seed: Optional[int] = None
    failure_injector: Optional[Callable[[str, int], None]] = None
    auto_start: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch_per_worker < 1:
            raise ValueError("max_batch_per_worker must be >= 1")
        if self.batch_linger < 0:
            raise ValueError("batch_linger must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be >= 0")
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive or None")

    @property
    def window_size(self) -> int:
        """Requests the dispatcher drains into one batching window."""
        return self.workers * self.max_batch_per_worker
