"""An interactive shell for the document system.

``python -m repro.shell [directory]`` opens a small REPL over a
:class:`~repro.core.system.DocumentSystem` (persistent when a directory is
given).  Commands:

.. code-block:: text

    .help                               this text
    .load <file.sgml>                   parse + fragment a document file
    .dtd <file.dtd>                     register a DTD file
    .mmf                                register the built-in MMF DTD
    .collection <name> <spec query>     create + index a collection
    .collections                        list collections
    .irs <collection> <irs query>       run a pure content query
    .explain <vql>                      plan + executed per-stage timing tree
    .trace <vql>                        run a query and print its span tree
    .stats                              metrics, cache and slow-query statistics
    .dash                               health verdict, latency percentiles, hot spots
    .checkpoint                         commit IRS + DB state to the durable store
    .pack                               compact the store file (reclaims dead space)
    .serve [port]                       start a network server on this system
    .connect <host:port>                attach the shell to a remote server
    .classes                            list schema classes
    .counters                           show coupling/IRS counters
    .bind <name> <collection>           bind a name usable in queries
    .quit                               leave
    <anything else>                     evaluated as a VQL query

Query results print as a table; DBObject cells render as ``CLASS OIDn``.
The shell is line-oriented and side-effect free beyond the system it owns,
so it is fully scriptable (see ``tests/test_shell.py``).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, TextIO

from repro.core.collection import _create_collection, _get_irs_result, index_objects
from repro.core.system import DocumentSystem
from repro.errors import ReproError
from repro.oodb.objects import DBObject
from repro.sgml.dtd import parse_dtd
from repro.sgml.mmf import mmf_dtd
from repro.workloads.metrics import format_table

PROMPT = "repro> "


class Shell:
    """The REPL engine; IO is injected so tests can drive it."""

    def __init__(
        self,
        system: Optional[DocumentSystem] = None,
        stdout: Optional[TextIO] = None,
    ) -> None:
        self.system = system or DocumentSystem()
        self._out = stdout or sys.stdout
        self._bindings: Dict[str, Any] = {}
        self._running = True
        self._remote: Optional[Any] = None

    # -- plumbing -------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        self._out.write(text + "\n")

    def run(self, stdin: Optional[TextIO] = None, interactive: bool = True) -> None:
        """Read-eval-print until EOF or ``.quit``."""
        source = stdin or sys.stdin
        while self._running:
            if interactive:
                self._out.write(PROMPT)
                self._out.flush()
            line = source.readline()
            if not line:
                break
            self.execute(line.strip())

    def execute(self, line: str) -> None:
        """Execute one shell line."""
        if not line or line.startswith("#"):
            return
        try:
            if line.startswith("."):
                self._command(line)
            else:
                self._query(line)
        except ReproError as exc:
            self._print(f"error: {exc}")
        except FileNotFoundError as exc:
            self._print(f"error: {exc}")

    # -- commands ----------------------------------------------------------------

    def _command(self, line: str) -> None:
        parts = line.split(None, 2)
        command = parts[0]
        handlers = {
            ".help": self._cmd_help,
            ".quit": self._cmd_quit,
            ".mmf": self._cmd_mmf,
            ".dtd": self._cmd_dtd,
            ".load": self._cmd_load,
            ".collection": self._cmd_collection,
            ".collections": self._cmd_collections,
            ".report": self._cmd_report,
            ".irs": self._cmd_irs,
            ".explain": self._cmd_explain,
            ".trace": self._cmd_trace,
            ".stats": self._cmd_stats,
            ".dash": self._cmd_dash,
            ".checkpoint": self._cmd_checkpoint,
            ".pack": self._cmd_pack,
            ".serve": self._cmd_serve,
            ".connect": self._cmd_connect,
            ".classes": self._cmd_classes,
            ".counters": self._cmd_counters,
            ".bind": self._cmd_bind,
        }
        handler = handlers.get(command)
        if handler is None:
            self._print(f"unknown command {command}; try .help")
            return
        handler(parts[1:])

    def _cmd_help(self, _args: List[str]) -> None:
        self._print(__doc__.split("Commands:")[-1].replace(".. code-block:: text", "").strip("\n"))

    def _cmd_quit(self, _args: List[str]) -> None:
        self._running = False
        self._disconnect()
        self._print("bye")

    def _disconnect(self) -> None:
        if self._remote is not None:
            self._remote.close()
            self._remote = None

    def _cmd_checkpoint(self, _args: List[str]) -> None:
        stats = self.system.checkpoint()
        if stats.get("mode") == "json":
            self._print(f"saved JSON indexes under {stats['directory']}")
            return
        self._print(
            f"checkpoint {stats['checkpoint_id']}: "
            f"{stats['records_appended']} records appended "
            f"({stats['bytes_appended']} bytes), "
            f"{stats['records_reused']} reused; "
            f"store {stats['size_bytes']} bytes "
            f"({stats['dead_bytes']} dead)"
        )

    def _cmd_pack(self, _args: List[str]) -> None:
        stats = self.system.pack()
        self._print(
            f"packed: reclaimed {stats['reclaimed_bytes']} bytes, "
            f"store now {stats['size_bytes']} bytes"
        )

    def _cmd_serve(self, args: List[str]) -> None:
        port = int(args[0]) if args else 0
        server = self.system.serve(port=port)
        host, bound = server.address
        self._print(f"serving on {host}:{bound} (connect with .connect {host}:{bound})")

    def _cmd_connect(self, args: List[str]) -> None:
        if not args:
            self._print("usage: .connect <host:port>")
            return
        from repro.net import RemoteSession

        self._disconnect()
        self._remote = RemoteSession(args[0])
        pong = self._remote.ping()
        self._print(
            f"connected to {args[0]} "
            f"(server {pong.get('server_version')}, protocol {pong.get('protocol')}); "
            f".irs now runs remotely"
        )

    def _cmd_mmf(self, _args: List[str]) -> None:
        created = self.system.register_dtd(mmf_dtd())
        self._print(f"MMF DTD registered; new classes: {', '.join(created) or 'none'}")

    def _cmd_dtd(self, args: List[str]) -> None:
        if not args:
            self._print("usage: .dtd <file.dtd>")
            return
        with open(args[0], "r", encoding="utf-8") as fh:
            dtd = parse_dtd(fh.read(), name=args[0])
        created = self.system.register_dtd(dtd)
        self._print(f"registered {args[0]}; new classes: {', '.join(created) or 'none'}")

    def _cmd_load(self, args: List[str]) -> None:
        if not args:
            self._print("usage: .load <file.sgml>")
            return
        with open(args[0], "r", encoding="utf-8") as fh:
            root = self.system.add_document(fh.read())
        count = len(list(root.send("getDescendants"))) + 1
        self._print(f"loaded {args[0]}: root {root.class_name} {root.oid}, {count} objects")

    def _cmd_collection(self, args: List[str]) -> None:
        if len(args) < 2:
            self._print("usage: .collection <name> <spec query>")
            return
        name, spec = args[0], args[1] if len(args) == 2 else f"{args[1]} {args[2]}"
        collection = _create_collection(self.system.db, name, spec)
        index_objects(collection)
        self._bindings[name] = collection
        self._print(
            f"collection {name}: {collection.send('memberCount')} objects indexed "
            f"(bound as {name!r} for queries)"
        )

    def _cmd_collections(self, _args: List[str]) -> None:
        from repro.core.admin import all_collection_reports

        reports = all_collection_reports(self.system.db)
        if not reports:
            self._print("no collections")
            return
        for r in reports:
            stale = " STALE" if r.is_stale else ""
            self._print(
                f"  {r.name}: {r.members} objects, {r.irs_documents} IRS docs, "
                f"{r.index_terms} terms, {r.buffered_queries} buffered queries, "
                f"policy={r.update_policy}, derivation={r.derivation}{stale}"
            )

    def _cmd_report(self, _args: List[str]) -> None:
        from repro.core.admin import system_report

        report = system_report(self.system.db)
        for key, value in report.items():
            if key == "objects_by_class":
                continue
            self._print(f"  {key}: {value}")

    def _cmd_irs(self, args: List[str]) -> None:
        if len(args) < 2:
            self._print("usage: .irs <collection> <irs query>")
            return
        name = args[0]
        irs_query = args[1] if len(args) == 2 else f"{args[1]} {args[2]}"
        if self._remote is not None:
            results = self._remote.query(name, irs_query)
            rows = [
                [f"{hit.element.class_name} {hit.oid}" if hit.element else str(hit.oid),
                 f"{hit.score:.4f}"]
                for hit in results
            ]
            self._print(format_table(["object", "IRS value"], rows))
            return
        collection = self._bindings.get(name)
        if not isinstance(collection, DBObject):
            self._print(f"no collection bound as {name!r}; use .collection first")
            return
        values = _get_irs_result(collection, irs_query)
        rows = [
            [self._render(self.system.db.get_object(oid)), f"{value:.4f}"]
            for oid, value in sorted(values.items(), key=lambda kv: -kv[1])
        ]
        self._print(format_table(["object", "IRS value"], rows))

    def _cmd_explain(self, args: List[str]) -> None:
        if not args:
            self._print("usage: .explain <vql query>")
            return
        text = " ".join(args)
        result = self.system.explain(text, self._bindings)
        plan = result.plan
        for variable, info in plan["variables"].items():
            self._print(
                f"  {variable} IN {info['class']}: "
                f"index={info['index_predicates'] or '-'} "
                f"restrictors={info['restrictor_predicates'] or '-'} "
                f"filters={info['residual_filters']}"
            )
        self._print(f"  join conjuncts: {plan['join_conjuncts']}")
        self._print(f"  rows: {len(result.rows)}")
        self._print(result.render_tree())

    def _cmd_trace(self, args: List[str]) -> None:
        if not args:
            self._print("usage: .trace <vql query>")
            return
        result = self.system.explain(" ".join(args), self._bindings)
        self._print(result.render_tree())
        self._print(f"({len(result.rows)} row{'s' if len(result.rows) != 1 else ''})")

    def _cmd_stats(self, _args: List[str]) -> None:
        from repro import obs

        snapshot = obs.metrics().snapshot()
        if not any(snapshot.values()) and not obs.is_enabled():
            self._print("  (observability disabled; repro.obs.enable() to turn on)")
        for name, value in snapshot["counters"].items():
            self._print(f"  {name}: {value}")
        for name, value in snapshot["gauges"].items():
            self._print(f"  {name}: {value:.6g}")
        for name, hist in snapshot["histograms"].items():
            mean = hist["mean"] * 1000.0
            worst = (hist["max"] or 0.0) * 1000.0
            self._print(
                f"  {name}: count={hist['count']} mean={mean:.2f}ms max={worst:.2f}ms"
            )
        for name, roll in snapshot["rolling"].items():
            self._print(
                f"  {name} (rolling): count={roll['count']} "
                f"p50={roll['p50'] * 1000:.2f}ms p99={roll['p99'] * 1000:.2f}ms"
            )
        cache = self.system.engine.cache_stats
        self._print(
            f"  engine result cache: hits={cache.hits} misses={cache.misses} "
            f"evictions={cache.evictions} epoch_invalidations={cache.epoch_invalidations} "
            f"dropped={cache.dropped} hit_rate={cache.hit_rate:.2f}"
        )
        for name, info in self.system.engine.statistics_cache_info().items():
            self._print(
                f"  statistics cache {name!r}: hits={info['hits']} "
                f"misses={info['misses']} invalidations={info['invalidations']}"
            )
        slow = obs.slow_log()
        self._print(f"  slow queries (>{slow.threshold * 1000:.0f}ms): {len(slow)}")
        for entry in slow.entries()[-5:]:
            self._print(f"    [{entry.kind}] {entry.seconds * 1000:.1f}ms {entry.text[:80]}")

    def _cmd_dash(self, _args: List[str]) -> None:
        """One screen of operational truth: health verdict + live percentiles."""
        from repro import obs

        health = self.system.health()
        self._print(f"  status: {health['status']}")
        admission = health["admission"]
        self._print(
            f"  admission: depth={admission['queue_depth']}/"
            f"{admission['queue_capacity'] or '-'} "
            f"peak={admission['depth_peak']:g} rejected={admission['rejected']}"
        )
        merge = health["merge"]
        self._print(
            f"  merge: backlog={merge['backlog']} segments={merge['segments']} "
            f"scheduler={'running' if merge['scheduler_running'] else 'stopped'}"
        )
        memtable = health["memtable"]
        self._print(
            f"  memtable: {memtable['documents']} docs, {memtable['tokens']} tokens, "
            f"~{memtable['bytes'] / 1024.0:.1f} KiB"
        )
        latency = health["latency"]
        if latency["source"] is None:
            self._print("  latency: no windowed traffic yet")
        else:
            self._print(
                f"  latency [{latency['source']}] (last "
                f"{obs.metrics().rolling(latency['source']).window_seconds:.0f}s, "
                f"{latency['count']} reqs): "
                f"p50={latency['p50'] * 1000:.2f}ms p95={latency['p95'] * 1000:.2f}ms "
                f"p99={latency['p99'] * 1000:.2f}ms p999={latency['p999'] * 1000:.2f}ms"
            )
            self._print(
                f"  slo: {latency['slo_seconds'] * 1000:.0f}ms "
                f"slow_ratio={latency['slow_ratio']:.1%}"
            )
        slow = obs.slow_log()
        for entry in slow.entries()[-3:]:
            outcome = entry.info.get("outcome", "")
            extras = f" top_k={entry.info['top_k']}" if "top_k" in entry.info else ""
            self._print(
                f"  slow [{entry.kind}] {entry.seconds * 1000:.1f}ms"
                f"{extras}{' ' + outcome if outcome else ''} {entry.text[:60]}"
            )

    def _cmd_classes(self, _args: List[str]) -> None:
        for name in self.system.db.schema.class_names():
            cdef = self.system.db.schema.get_class(name)
            sup = f" isA {cdef.superclass}" if cdef.superclass else ""
            self._print(f"  {name}{sup}")

    def _cmd_counters(self, _args: List[str]) -> None:
        counters = self.system.context.counters
        engine = self.system.engine.counters
        self._print(
            f"  getIRSValue calls: {counters.get_irs_value_calls}, "
            f"buffer hits/misses: {counters.buffer_hits}/{counters.buffer_misses}, "
            f"derivations: {counters.derivations}"
        )
        self._print(
            f"  IRS queries: {engine.queries_executed}, "
            f"documents indexed: {engine.documents_indexed}"
        )

    def _cmd_bind(self, args: List[str]) -> None:
        if len(args) < 2:
            self._print("usage: .bind <name> <collection-name>")
            return
        target = self._bindings.get(args[1])
        if target is None:
            self._print(f"nothing bound as {args[1]!r}")
            return
        self._bindings[args[0]] = target
        self._print(f"{args[0]} -> {args[1]}")

    # -- queries --------------------------------------------------------------------

    def _query(self, text: str) -> None:
        rows = self.system.db.query(text, self._bindings)
        if not rows:
            self._print("(no rows)")
            return
        width = max(len(r) for r in rows)
        headers = [f"col{i + 1}" for i in range(width)]
        rendered = [[self._render(cell) for cell in row] for row in rows]
        self._print(format_table(headers, rendered))
        self._print(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")

    @staticmethod
    def _render(cell: Any) -> str:
        if isinstance(cell, DBObject):
            return f"{cell.class_name} {cell.oid}"
        if isinstance(cell, float):
            return f"{cell:.4f}"
        return str(cell)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.shell``."""
    argv = argv if argv is not None else sys.argv[1:]
    directory = argv[0] if argv else None
    shell = Shell(DocumentSystem(directory=directory))
    shell._print("repro shell — .help for commands")
    try:
        shell.run(interactive=sys.stdin.isatty())
    except KeyboardInterrupt:
        shell._print("")
    finally:
        shell._disconnect()
        shell.system.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
