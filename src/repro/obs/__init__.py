"""Cross-layer observability for the OODBMS-IRS coupling.

One dependency-free package provides:

* tracing — nested :class:`Span` trees via :class:`Tracer`, JSONL export
  (:class:`JsonlSpanExporter` / :func:`load_spans`) and a bounded ring of
  finished traces;
* metrics — :class:`MetricsRegistry` with counters, gauges and fixed-bucket
  histograms, snapshot-able as a plain dict;
* a slow-query log (:class:`SlowQueryLog`) with a configurable threshold;
* :func:`explain` — run a mixed query under a tracer and render the
  per-stage timing/cardinality tree;
* request telemetry (:class:`RequestTelemetry` / :class:`CostProfile`) —
  per-request cost attribution through the batching layer, surfaced on
  ``ResultSet.telemetry``, with tail-based trace retention
  (:class:`TraceSampler`);
* rolling latency (:class:`RollingHistogram`) — log-bucketed
  sliding-window percentiles (p50/p95/p99/p999);
* exposition (:func:`prometheus_text`, :class:`MetricsSnapshotter`) and
  overload health signals (:func:`build_health`).

Instrumented call sites in the OODB, the IRS engine and the coupling layer
reach the active instruments through :func:`tracer` / :func:`metrics` /
:func:`slow_log`.  Instrumentation is on by default; :func:`disable` swaps
in shared no-op implementations so the overhead drops to one method call
per site.
"""

from repro.obs.explain import ExplainResult, explain, render_span_tree
from repro.obs.export import (
    MetricsSnapshotter,
    prometheus_text,
    write_metrics_snapshot,
)
from repro.obs.health import build_health
from repro.obs.histogram import NoopRollingHistogram, RollingHistogram
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from repro.obs.telemetry import (
    CostProfile,
    RequestTelemetry,
    TraceSampler,
    active_profile,
    collecting,
    configure_sampling,
    sampler,
)
from repro.obs.runtime import (
    config_restore,
    config_snapshot,
    configure,
    disable,
    enable,
    instrumentation,
    is_enabled,
    metrics,
    slow_log,
    swap_metrics,
    swap_tracer,
    tracer,
)
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.tracing import (
    NOOP_TRACER,
    JsonlSpanExporter,
    NoopTracer,
    Span,
    Tracer,
    load_spans,
    trim,
)

__all__ = [
    "CostProfile",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "ExplainResult",
    "Gauge",
    "Histogram",
    "JsonlSpanExporter",
    "MetricsRegistry",
    "MetricsSnapshotter",
    "NOOP_METRICS",
    "NOOP_TRACER",
    "NoopMetricsRegistry",
    "NoopRollingHistogram",
    "NoopTracer",
    "RequestTelemetry",
    "RollingHistogram",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "TraceSampler",
    "Tracer",
    "active_profile",
    "build_health",
    "collecting",
    "config_restore",
    "config_snapshot",
    "configure",
    "configure_sampling",
    "disable",
    "enable",
    "explain",
    "instrumentation",
    "is_enabled",
    "load_spans",
    "metrics",
    "prometheus_text",
    "render_span_tree",
    "sampler",
    "slow_log",
    "swap_metrics",
    "swap_tracer",
    "tracer",
    "trim",
    "write_metrics_snapshot",
]
