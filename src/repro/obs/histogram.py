"""Log-bucketed rolling-window latency histogram with percentile snapshots.

The PR 2 fixed-bucket :class:`~repro.obs.metrics.Histogram` accumulates
forever: after an hour of traffic a one-minute latency regression is
invisible under the cumulative mass, and its 16 linear-ish buckets cannot
answer "what is p999 right now".  :class:`RollingHistogram` fixes both:

* **log-spaced buckets** — bucket edges grow geometrically from ``lo`` to
  ``hi`` (default four buckets per octave, ~80 buckets from 10 µs to 10 s),
  so relative resolution is constant across five orders of magnitude and a
  p99 estimate is never more than ~9% off the true value;
* **a ring of time slices** — observations land in the slice covering the
  current wall-clock period; a snapshot merges only the slices inside the
  window (default 60 s in 12 slices of 5 s), so old traffic ages out
  automatically and memory stays bounded at ``slices x buckets`` integers
  regardless of traffic volume;
* **percentiles by interpolation** — p50/p95/p99/p999 are read from the
  merged bucket mass at the geometric midpoint of the owning bucket,
  clamped to the window's observed min/max.

Thread-safe: one lock per instrument (observations are per *request*, not
per posting, so the lock is far off any scoring hot path).
:class:`NoopRollingHistogram` is the disabled-path twin.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, List, Optional

#: Percentiles every snapshot reports, keyed by their snapshot field name.
SNAPSHOT_QUANTILES = (("p50", 0.5), ("p95", 0.95), ("p99", 0.99), ("p999", 0.999))


class _Slice:
    """One time slice of the ring: bucket counts plus count/sum/min/max."""

    __slots__ = ("period", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, buckets: int) -> None:
        self.period = -1
        self.counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def clear(self, period: int) -> None:
        self.period = period
        counts = self.counts
        for index in range(len(counts)):
            counts[index] = 0
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None


class RollingHistogram:
    """Percentile latency tracking over a sliding wall-clock window."""

    def __init__(
        self,
        window_seconds: float = 60.0,
        slices: int = 12,
        lo: float = 1e-5,
        hi: float = 10.0,
        buckets_per_octave: int = 4,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0 or slices < 1:
            raise ValueError("window_seconds must be > 0 and slices >= 1")
        if not (0 < lo < hi):
            raise ValueError("need 0 < lo < hi")
        self.window_seconds = float(window_seconds)
        self.lo = lo
        self.hi = hi
        self._clock = clock
        self._slice_seconds = self.window_seconds / slices
        growth = 2.0 ** (1.0 / max(1, buckets_per_octave))
        self._log_growth = math.log(growth)
        self._log_lo = math.log(lo)
        self._buckets = max(1, int(math.ceil(math.log(hi / lo) / self._log_growth)))
        self._ring: List[_Slice] = [_Slice(self._buckets) for _ in range(slices)]
        self._lock = threading.Lock()

    # -- write path ---------------------------------------------------------

    def _bucket(self, value: float) -> int:
        if value <= self.lo:
            return 0
        index = int((math.log(value) - self._log_lo) / self._log_growth)
        return min(index, self._buckets - 1)

    def _slot(self, now: float) -> _Slice:
        period = int(now // self._slice_seconds)
        slot = self._ring[period % len(self._ring)]
        if slot.period != period:
            slot.clear(period)
        return slot

    def observe(self, value: float) -> None:
        with self._lock:
            slot = self._slot(self._clock())
            slot.counts[self._bucket(value)] += 1
            slot.count += 1
            slot.total += value
            if slot.minimum is None or value < slot.minimum:
                slot.minimum = value
            if slot.maximum is None or value > slot.maximum:
                slot.maximum = value

    # -- read path ----------------------------------------------------------

    def _merged(self) -> tuple:
        """(counts, count, sum, min, max) over the slices inside the window."""
        current = int(self._clock() // self._slice_seconds)
        oldest = current - len(self._ring) + 1
        counts = [0] * self._buckets
        count = 0
        total = 0.0
        minimum: Optional[float] = None
        maximum: Optional[float] = None
        for slot in self._ring:
            if slot.period < oldest or not slot.count:
                continue
            for index, n in enumerate(slot.counts):
                counts[index] += n
            count += slot.count
            total += slot.total
            if minimum is None or (slot.minimum is not None and slot.minimum < minimum):
                minimum = slot.minimum
            if maximum is None or (slot.maximum is not None and slot.maximum > maximum):
                maximum = slot.maximum
        return counts, count, total, minimum, maximum

    def _estimate(self, index: int, minimum, maximum) -> float:
        value = math.exp(self._log_lo + (index + 0.5) * self._log_growth)
        if minimum is not None:
            value = max(value, minimum)
        if maximum is not None:
            value = min(value, maximum)
        return value

    def percentile(self, quantile: float) -> float:
        """The latency at ``quantile`` of the current window (0 when empty)."""
        with self._lock:
            counts, count, _total, minimum, maximum = self._merged()
        return self._percentile_of(counts, count, minimum, maximum, quantile)

    def _percentile_of(self, counts, count, minimum, maximum, quantile) -> float:
        if not count:
            return 0.0
        rank = max(1, int(math.ceil(quantile * count)))
        seen = 0
        for index, n in enumerate(counts):
            seen += n
            if seen >= rank:
                return self._estimate(index, minimum, maximum)
        return self._estimate(self._buckets - 1, minimum, maximum)

    def fraction_above(self, threshold: float) -> float:
        """Approximate fraction of window observations above ``threshold``.

        Whole buckets resolve exactly; the bucket straddling the threshold
        contributes proportionally to the threshold's position in log space
        (the same resolution bound as the percentile estimates).
        """
        with self._lock:
            counts, count, _total, _mn, _mx = self._merged()
        if not count:
            return 0.0
        if threshold <= self.lo:
            return 1.0
        position = (math.log(threshold) - self._log_lo) / self._log_growth
        if position >= self._buckets:
            return 0.0
        whole = int(position)
        below = sum(counts[:whole]) + counts[whole] * (position - whole)
        return max(0.0, min(1.0, (count - below) / count))

    def snapshot(self) -> Dict[str, object]:
        """Count/sum/min/max plus p50/p95/p99/p999 of the current window."""
        with self._lock:
            counts, count, total, minimum, maximum = self._merged()
        quantiles = {
            label: self._percentile_of(counts, count, minimum, maximum, q)
            for label, q in SNAPSHOT_QUANTILES
        }
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "min": minimum,
            "max": maximum,
            "window_seconds": self.window_seconds,
            **quantiles,
        }

    def reset(self) -> None:
        with self._lock:
            for slot in self._ring:
                slot.clear(-1)
                slot.period = -1


class NoopRollingHistogram(RollingHistogram):
    """The disabled path: observations vanish, snapshots are empty."""

    def __init__(self) -> None:
        super().__init__()

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": 0,
            "sum": 0.0,
            "mean": 0.0,
            "min": None,
            "max": None,
            "window_seconds": self.window_seconds,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
            "p999": 0.0,
        }

    def percentile(self, quantile: float) -> float:
        return 0.0

    def fraction_above(self, threshold: float) -> float:
        return 0.0


NOOP_ROLLING = NoopRollingHistogram()
