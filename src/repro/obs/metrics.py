"""Dependency-free metrics: counters, gauges, histograms — fixed and rolling.

The registry is the metrics half of the observability layer (the tracing
half lives in :mod:`repro.obs.tracing`).  Everything here is plain-Python
and allocation-light so instrumentation can stay default-on:

* :class:`Counter` — monotonically increasing integer;
* :class:`Gauge` — last-written float (e.g. "seconds of the last recovery"),
  plus :meth:`Gauge.max_of` for high-watermark tracking;
* :class:`Histogram` — fixed upper-bound buckets (no numpy), Prometheus-style
  ``le`` semantics: an observation lands in the first bucket whose bound is
  >= the value.  Used for *shape* metrics (window sizes, group sizes) and
  the OODB layer, where cumulative-forever is what you want;
* :class:`~repro.obs.histogram.RollingHistogram` (via
  :meth:`MetricsRegistry.rolling`) — log-bucketed sliding-window latency
  with p50/p95/p99/p999 snapshots.  Latency metrics live here since PR 7;
* :class:`MetricsRegistry` — get-or-create instruments by name, snapshot the
  whole registry as a plain dict;
* :class:`NoopMetricsRegistry` / :data:`NOOP_METRICS` — the disabled path:
  every operation is a no-op on shared singletons, so call sites never need
  an ``if enabled`` check.

Increments are lock-protected per instrument.  CPython's eval loop makes a
bare ``+=`` *often* atomic, but ``value += amount`` on an instance attribute
is a read/modify/write of three bytecodes and the 3.9+ eval-breaker can
switch threads between them — under the pooled executor two workers bumping
the same counter could lose updates.  An uncontended ``threading.Lock`` is
~100 ns, invisible next to the per-request work these instruments measure
(increments are per query / per batch, never per posting).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple

from repro.obs.histogram import NOOP_ROLLING, RollingHistogram

#: Default histogram bounds, in seconds: spans five orders of magnitude from
#: 0.1 ms to 5 s, which covers every latency this system produces.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing integer.  Thread-safe."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0


class Gauge:
    """A float that remembers its last written value.  Thread-safe."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount

    def max_of(self, value: float) -> None:
        """Raise the gauge to ``value`` if higher (high-watermark tracking)."""
        with self._lock:
            if value > self.value:
                self.value = value

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.  Thread-safe.

    ``bounds`` are inclusive upper bounds; one implicit ``+Inf`` bucket
    catches everything above the largest bound.
    """

    __slots__ = (
        "bounds", "bucket_counts", "count", "total", "minimum", "maximum", "_lock"
    )

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.bounds) + 1)
            self.count = 0
            self.total = 0.0
            self.minimum = None
            self.maximum = None

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            buckets = {
                f"<={bound:g}": n for bound, n in zip(self.bounds, self.bucket_counts)
            }
            buckets["+Inf"] = self.bucket_counts[-1]
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.total / self.count if self.count else 0.0,
                "min": self.minimum,
                "max": self.maximum,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named counters, gauges and histograms, snapshot-able as a dict.

    Instruments are created on first use and survive :meth:`reset` (which
    zeroes values in place, so references held by call sites stay live).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._rollings: Dict[str, RollingHistogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter())
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge())
        return instrument

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(buckets or DEFAULT_LATENCY_BUCKETS)
                )
        return instrument

    def rolling(self, name: str, **options: float) -> RollingHistogram:
        """Get-or-create a sliding-window latency histogram.

        ``options`` (window_seconds, slices, lo, hi, buckets_per_octave)
        apply only on first creation.
        """
        instrument = self._rollings.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._rollings.setdefault(
                    name, RollingHistogram(**options)
                )
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The whole registry as a plain, JSON-encodable dict."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.snapshot() for name, h in sorted(self._histograms.items())
                },
                "rolling": {
                    name: r.snapshot() for name, r in sorted(self._rollings.items())
                },
            }

    def reset(self) -> None:
        """Zero every instrument in place (references stay valid)."""
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for gauge in self._gauges.values():
                gauge.reset()
            for histogram in self._histograms.values():
                histogram.reset()
            for rolling in self._rollings.values():
                rolling.reset()


class _NoopCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def max_of(self, value: float) -> None:
        pass


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class NoopMetricsRegistry(MetricsRegistry):
    """The disabled path: shared do-nothing instruments, empty snapshots."""

    def counter(self, name: str) -> Counter:
        return _NOOP_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        return _NOOP_HISTOGRAM

    def rolling(self, name: str, **options: float) -> RollingHistogram:
        return NOOP_ROLLING

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "rolling": {}}

    def reset(self) -> None:
        pass


NOOP_METRICS = NoopMetricsRegistry()
