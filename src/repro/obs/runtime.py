"""Global observability runtime: the tracer/metrics/slow-log singletons.

Instrumented call sites throughout the OODB, the IRS engine and the
coupling layer reach their instruments through :func:`tracer`,
:func:`metrics` and :func:`slow_log` — one module-level indirection per
call, so swapping in the no-op implementations (:func:`disable`) turns the
whole observability layer off at near-zero cost without touching any call
site.

Instrumentation is **on by default**.  Tests and :func:`repro.obs.explain`
install their own instances temporarily via :func:`swap_tracer` /
:func:`swap_metrics` or the :func:`instrumentation` context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.obs.metrics import NOOP_METRICS, MetricsRegistry, NoopMetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.tracing import NOOP_TRACER, NoopTracer, Tracer

_tracer: Tracer = Tracer()
_metrics: MetricsRegistry = MetricsRegistry()
_slow_log: SlowQueryLog = SlowQueryLog()


def tracer() -> Tracer:
    """The active tracer (a :class:`NoopTracer` when disabled)."""
    return _tracer


def metrics() -> MetricsRegistry:
    """The active metrics registry (no-op when disabled)."""
    return _metrics


def slow_log() -> SlowQueryLog:
    """The global slow-query log (always active; threshold-gated)."""
    return _slow_log


def is_enabled() -> bool:
    """True when real (non-no-op) instrumentation is installed."""
    return not isinstance(_tracer, NoopTracer) or not isinstance(
        _metrics, NoopMetricsRegistry
    )


def enable(
    tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None
) -> None:
    """(Re)install real instrumentation, optionally supplying instances.

    After a :func:`disable`, calling ``enable()`` with no arguments starts
    from fresh, empty instruments (disabled data is discarded).
    """
    global _tracer, _metrics
    if tracer is not None:
        _tracer = tracer
    elif isinstance(_tracer, NoopTracer):
        _tracer = Tracer()
    if metrics is not None:
        _metrics = metrics
    elif isinstance(_metrics, NoopMetricsRegistry):
        _metrics = MetricsRegistry()


def disable() -> None:
    """Swap in the no-op tracer and registry (near-zero-cost path)."""
    global _tracer, _metrics
    _tracer = NOOP_TRACER
    _metrics = NOOP_METRICS


def swap_tracer(new_tracer: Tracer) -> Tracer:
    """Install ``new_tracer``; returns the previous one (for restore)."""
    global _tracer
    previous = _tracer
    _tracer = new_tracer
    return previous


def swap_metrics(new_metrics: MetricsRegistry) -> MetricsRegistry:
    """Install ``new_metrics``; returns the previous registry."""
    global _metrics
    previous = _metrics
    _metrics = new_metrics
    return previous


def configure(
    slow_query_seconds: Optional[float] = None,
    slow_log_capacity: Optional[int] = None,
    trace_head_every: Optional[int] = None,
    slow_trace_seconds: Optional[float] = None,
) -> None:
    """Adjust observability knobs in place.

    ``trace_head_every`` / ``slow_trace_seconds`` control tail-based trace
    retention (see :class:`repro.obs.telemetry.TraceSampler`).
    """
    global _slow_log
    if slow_log_capacity is not None:
        replacement = SlowQueryLog(
            threshold=_slow_log.threshold, capacity=slow_log_capacity
        )
        _slow_log = replacement
    if slow_query_seconds is not None:
        _slow_log.threshold = slow_query_seconds
    if trace_head_every is not None or slow_trace_seconds is not None:
        from repro.obs.telemetry import configure_sampling

        configure_sampling(
            head_every=trace_head_every, slow_seconds=slow_trace_seconds
        )


def config_snapshot() -> dict:
    """Capture the mutable runtime configuration :func:`configure` touches.

    Returns an opaque dict for :func:`config_restore`.  Covers the slow-log
    instance (capacity changes replace it) and threshold, plus the trace
    sampler's knobs — the module-level state a test that calls
    :func:`configure` would otherwise leak into the next test.
    """
    from repro.obs.telemetry import sampling_config

    return {
        "slow_log": _slow_log,
        "slow_log_threshold": _slow_log.threshold,
        "sampling": sampling_config(),
    }


def config_restore(snapshot: dict) -> None:
    """Reinstate a configuration captured by :func:`config_snapshot`."""
    global _slow_log
    _slow_log = snapshot["slow_log"]
    _slow_log.threshold = snapshot["slow_log_threshold"]
    from repro.obs.telemetry import sampler

    # Assign directly: configure_sampling(None) means "keep", but a
    # snapshot may legitimately hold slow_seconds=None (track threshold).
    for key, value in snapshot["sampling"].items():
        setattr(sampler(), key, value)


@contextmanager
def instrumentation(
    tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None
) -> Iterator[Tuple[Tracer, MetricsRegistry]]:
    """Temporarily install instrumentation; restores the previous on exit.

    Omitted arguments get fresh instances.  Used by tests and ``explain``
    to observe in isolation from the global instruments.
    """
    new_tracer = tracer if tracer is not None else Tracer()
    new_metrics = metrics if metrics is not None else MetricsRegistry()
    previous_tracer = swap_tracer(new_tracer)
    previous_metrics = swap_metrics(new_metrics)
    try:
        yield new_tracer, new_metrics
    finally:
        swap_tracer(previous_tracer)
        swap_metrics(previous_metrics)
