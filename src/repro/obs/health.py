"""Overload health signals: one dict that says whether the system is keeping up.

:func:`build_health` condenses the live signals an operator (or, per the
ROADMAP, a remote load balancer) needs into a JSON-encodable report:

* **admission** — current queue depth, capacity, utilization, the
  high-watermark since start (``service.queue.depth_peak``), and the count
  of rejected requests.  A queue near capacity means clients are about to
  see :class:`~repro.errors.ServiceOverloadedError`.
* **merge** — how many sealed segments the size-tiered policy would merge
  right now (backlog), whether the scheduler is running, and total segment
  count.  A growing backlog means reads are fanning out over ever more
  segments.
* **memtable** — unsealed documents/tokens and an approximate heap
  footprint, per :meth:`MemtableSegment.approx_bytes`.
* **shards** — per-collection shard layout with document skew
  (max/mean), plus the scatter executor's fault counters (retries,
  failovers, timeouts).  Informational: failovers degrade latency, never
  correctness.
* **network** — socket-server admission (active/accepted/rejected
  connections), request outcomes, and per-endpoint rolling latency for
  every wire operation.  Informational, like shards: a connection
  rejection *is* the backpressure mechanism working, not a failure.
* **latency** — p50/p95/p99/p999 of the most relevant rolling histogram
  plus the *slow ratio*: the fraction of windowed requests above the SLO.
* **storage** — single-file store size, dead-space ratio, and the
  un-checkpointed dirty volume.  Dead space past both pack thresholds
  (:data:`STORAGE_DEAD_RATIO` and :data:`STORAGE_DEAD_BYTES`) degrades
  the verdict until ``DocumentSystem.pack()`` reclaims it.

The verdict (``ok`` / ``degraded`` / ``overloaded``) is a coarse triage
signal, not a pager: *overloaded* when the queue is nearly full or most
requests bust the SLO, *degraded* when pressure is building (half-full
queue, slow-ratio above 10%, or a large merge backlog).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional

from repro.obs import runtime

#: Rolling-histogram name health reads request latency from, in order of
#: preference (service-level first; inline-only workloads fall back).
LATENCY_METRICS = ("service.request.total_seconds", "irs.query.seconds")

DEFAULT_SLO_SECONDS = 0.25


def _latency_section(registry, slo_seconds: float) -> Dict[str, Any]:
    snapshot = registry.snapshot().get("rolling", {})
    chosen_name, chosen = None, None
    for preferred in LATENCY_METRICS:
        candidates = {
            name: roll
            for name, roll in snapshot.items()
            if name == preferred or name.startswith(preferred + ".")
        }
        live = {name: r for name, r in candidates.items() if r.get("count")}
        if live:
            # Busiest instrument wins (e.g. the dominant model's latencies).
            chosen_name = max(live, key=lambda name: live[name]["count"])
            chosen = live[chosen_name]
            break
    if chosen is None:
        return {
            "source": None,
            "count": 0,
            "slo_seconds": slo_seconds,
            "slow_ratio": 0.0,
        }
    slow_ratio = registry.rolling(chosen_name).fraction_above(slo_seconds)
    return {
        "source": chosen_name,
        "count": chosen["count"],
        "p50": chosen["p50"],
        "p95": chosen["p95"],
        "p99": chosen["p99"],
        "p999": chosen["p999"],
        "slo_seconds": slo_seconds,
        "slow_ratio": slow_ratio,
    }


def _admission_section(services: Iterable[Any], registry) -> Dict[str, Any]:
    depth = capacity = 0
    for service in services:
        config = getattr(service, "config", None)
        if config is None:
            continue
        capacity += config.max_queue
        queue = getattr(service, "_queue", None)
        if queue is not None:
            depth += queue.qsize()
    snapshot = registry.snapshot()
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    return {
        "queue_depth": depth,
        "queue_capacity": capacity,
        "utilization": depth / capacity if capacity else 0.0,
        "depth_peak": gauges.get("service.queue.depth_peak", 0.0),
        "rejected": counters.get("service.requests.rejected", 0),
    }


def _merge_section(engine) -> Dict[str, Any]:
    if engine is None:
        return {"backlog": 0, "segments": 0, "scheduler_running": False}
    return {
        "backlog": engine.merge_backlog(),
        "segments": engine.total_segments(),
        "scheduler_running": engine.merge_scheduler_running,
    }


def _memtable_section(engine) -> Dict[str, Any]:
    if engine is None:
        return {"documents": 0, "tokens": 0, "bytes": 0}
    return engine.memtable_info()


def _shards_section(engine, registry) -> Dict[str, Any]:
    """Shard layout, document skew, and scatter fault counters.

    Informational only — shard skew or failovers never flip the verdict
    (a failover still returned the exact ranking; it is a capacity signal,
    not a correctness one).
    """
    shard_info = getattr(engine, "shard_info", None)
    collections = shard_info() if shard_info is not None else {}
    counters = registry.snapshot().get("counters", {})
    return {
        "collections": collections,
        "executor_attached": getattr(engine, "shard_executor", None) is not None,
        "scatters": counters.get("irs.shard.scatters", 0),
        "retries": counters.get("irs.shard.retries", 0),
        "failovers": counters.get("irs.shard.failovers", 0),
        "timeouts": counters.get("irs.shard.timeouts", 0),
    }


#: Rolling-histogram name prefix of the per-endpoint server latencies.
NET_ENDPOINT_PREFIX = "net.request.seconds."


def _network_section(registry, servers: Iterable[Any] = ()) -> Dict[str, Any]:
    """Connection gauges and per-endpoint latency of the socket servers.

    ``servers`` contributes live listener facts (address, connection
    limits); the counters and the per-endpoint rolling percentiles come
    from the metrics registry, so the section stays meaningful even when
    health is built far from the server object (e.g. over the wire).
    """
    snapshot = registry.snapshot()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    endpoints = {}
    for name, roll in snapshot.get("rolling", {}).items():
        if name.startswith(NET_ENDPOINT_PREFIX) and roll.get("count"):
            endpoints[name[len(NET_ENDPOINT_PREFIX):]] = {
                "count": roll["count"],
                "p50": roll["p50"],
                "p99": roll["p99"],
            }
    return {
        "servers": [server.network_section() for server in servers],
        "connections": {
            "active": int(gauges.get("net.connections.active", 0)),
            "accepted": counters.get("net.connections.accepted", 0),
            "rejected": counters.get("net.connections.rejected", 0),
        },
        "requests": {
            "completed": counters.get("net.requests.completed", 0),
            "failed": counters.get("net.requests.failed", 0),
            "frames_rejected": counters.get("net.frames.rejected", 0),
        },
        "endpoints": endpoints,
    }


#: Dead-space thresholds past which storage flips the verdict to
#: ``degraded`` — the ratio alone is meaningless on tiny stores (a 10 KiB
#: file that is 70% dead needs no pack), so both must hold.
STORAGE_DEAD_RATIO = 0.6
STORAGE_DEAD_BYTES = 1 << 20


def _storage_section(storage: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Durable-store facts: size, dead space, dirty volume since checkpoint.

    ``storage`` comes from ``SingleFileStore.stats()`` plus a ``"dirty"``
    estimate (``dirty_info``); systems without a store report
    ``enabled: False``.  ``needs_pack`` applies the module thresholds so
    operators (and the verdict) share one definition of "too much dead
    space".
    """
    if not storage:
        return {"enabled": False}
    section = dict(storage)
    section["enabled"] = True
    section["needs_pack"] = (
        section.get("dead_ratio", 0.0) >= STORAGE_DEAD_RATIO
        and section.get("dead_bytes", 0) >= STORAGE_DEAD_BYTES
    )
    return section


def _verdict(admission, merge, latency, storage=None) -> str:
    utilization = admission["utilization"]
    slow_ratio = latency["slow_ratio"]
    if utilization >= 0.9 or slow_ratio >= 0.5:
        return "overloaded"
    if utilization >= 0.5 or slow_ratio > 0.1 or merge["backlog"] >= 8:
        return "degraded"
    if storage is not None and storage.get("needs_pack"):
        return "degraded"
    return "ok"


def build_health(
    engine=None,
    services: Iterable[Any] = (),
    registry=None,
    slo_seconds: float = DEFAULT_SLO_SECONDS,
    servers: Iterable[Any] = (),
    storage: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the health report (see module docstring for semantics).

    ``servers`` are :class:`~repro.net.server.DocumentServer` instances;
    their connection admission and per-endpoint latency appear under
    ``"network"``.  Like shards, the network section is informational —
    connection rejections already *are* the backpressure response, so
    they never flip the verdict on their own.

    ``storage`` is the durable-store stats dict of
    ``DocumentSystem.health`` (store size, dead space, un-checkpointed
    dirty volume).  Unlike the network section it *can* flip the verdict:
    a store past the pack thresholds reports ``degraded``.
    """
    registry = registry or runtime.metrics()
    admission = _admission_section(services, registry)
    merge = _merge_section(engine)
    latency = _latency_section(registry, slo_seconds)
    storage_section = _storage_section(storage)
    return {
        "status": _verdict(admission, merge, latency, storage_section),
        "admission": admission,
        "merge": merge,
        "memtable": _memtable_section(engine),
        "shards": _shards_section(engine, registry),
        "network": _network_section(registry, servers),
        "latency": latency,
        "storage": storage_section,
    }
