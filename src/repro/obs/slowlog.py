"""Slow-query log: queries slower than a configurable threshold are kept.

Both VQL queries (the OODB evaluator) and IRS queries report here.  An
entry above the threshold is appended to a bounded in-memory log and echoed
through the ``repro.obs.slowlog`` logger at WARNING level, so applications
opt in to console/file output with one ``logging`` call.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List

logger = logging.getLogger(__name__)

#: Default threshold, seconds.  Generous on purpose: the log should surface
#: pathological queries, not chatter about normal ones.
DEFAULT_THRESHOLD = 0.25


@dataclass(frozen=True)
class SlowQueryEntry:
    """One query that crossed the threshold."""

    kind: str            # "vql" or "irs"
    text: str
    seconds: float
    timestamp: float
    info: Dict[str, Any] = field(default_factory=dict)


class SlowQueryLog:
    """Bounded log of queries slower than ``threshold`` seconds."""

    def __init__(self, threshold: float = DEFAULT_THRESHOLD, capacity: int = 128) -> None:
        self.threshold = threshold
        self._entries: "deque[SlowQueryEntry]" = deque(maxlen=max(1, capacity))

    def record(self, kind: str, text: str, seconds: float, **info: Any) -> bool:
        """Record when ``seconds`` >= threshold; returns whether it did."""
        if seconds < self.threshold:
            return False
        entry = SlowQueryEntry(kind, text, seconds, time.time(), info)
        self._entries.append(entry)
        logger.warning(
            "slow %s query (%.1f ms, threshold %.1f ms): %.120s",
            kind,
            seconds * 1000.0,
            self.threshold * 1000.0,
            text,
        )
        return True

    def entries(self) -> List[SlowQueryEntry]:
        """Recorded entries, oldest first."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
