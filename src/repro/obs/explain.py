"""``explain()``: run a mixed query under a tracer, render a stage tree.

The facade over the whole observability layer: it executes a VQL query with
a dedicated collecting tracer temporarily installed as the global one, so
every instrumented layer the query touches — OODB candidate production and
join, the coupling's ``findIRSValue``/``getIRSResult``/``deriveIRSValue``,
IRS scoring — contributes spans to one tree.  The result renders as a
per-stage timing/cardinality tree::

    oodb.query  11.62ms  rows=2 tuples_examined=40
    ├─ oodb.query.candidates  10.98ms  variable=p class=PARA candidates=9
    │  ├─ coupling.findIRSValue  9.80ms  source=irs
    │  │  └─ coupling.getIRSResult  9.77ms  buffered=False
    │  │     └─ irs.query  9.01ms  model=inquery results=7
    │  └─ … ×8 more coupling.findIRSValue  total 0.71ms
    └─ oodb.query.join  0.41ms  rows=2

``explain`` works even when global instrumentation is disabled — asking
for an explanation *is* opting in.

Note that the query is really executed (timings are measurements, not
estimates), so side effects — result buffering, update propagation forced
by pending operations — happen exactly as they would for a plain query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs import runtime
from repro.obs.tracing import Span, Tracer

#: Sibling spans with the same name beyond this count render as one
#: aggregate line (keeps trees over many candidate objects readable).
MAX_SIBLINGS_PER_NAME = 3


@dataclass
class ExplainResult:
    """Everything ``explain`` learned about one query execution."""

    query: str
    rows: List[tuple]
    stats: Any                      # repro.oodb.query.evaluator.QueryStats
    root: Optional[Span]
    plan: Dict[str, Any] = field(default_factory=dict)

    def stage_names(self) -> Set[str]:
        """Names of every span in the trace (the stages the query touched)."""
        if self.root is None:
            return set()
        return {span.name for span in self.root.iter_spans()}

    def render_tree(self, max_siblings: int = MAX_SIBLINGS_PER_NAME) -> str:
        if self.root is None:
            return "(no trace recorded)"
        return render_span_tree(self.root, max_siblings=max_siblings)

    def render(self, max_siblings: int = MAX_SIBLINGS_PER_NAME) -> str:
        """Plan summary + execution counters + stage tree, as one report."""
        lines = [f"query: {self.query.strip()}"]
        for variable, info in (self.plan.get("variables") or {}).items():
            lines.append(
                f"  {variable} IN {info.get('class')}: "
                f"index={info.get('index_predicates') or '-'} "
                f"restrictors={info.get('restrictor_predicates') or '-'} "
                f"filters={info.get('residual_filters')}"
            )
        stats = self.stats
        lines.append(
            f"rows={len(self.rows)} tuples_examined={stats.tuples_examined} "
            f"method_calls={stats.method_calls} index_probes={stats.index_probes} "
            f"restrictor_calls={stats.restrictor_calls}"
        )
        lines.append(self.render_tree(max_siblings=max_siblings))
        return "\n".join(lines)


def explain(
    db: Any,
    text: str,
    bindings: Optional[Dict[str, Any]] = None,
    tracer: Optional[Tracer] = None,
) -> ExplainResult:
    """Execute ``text`` under a collecting tracer and explain where time went.

    ``db`` is a :class:`repro.oodb.database.Database`; ``bindings`` are the
    usual query parameter bindings.  Pass an explicit ``tracer`` to also
    export the trace (e.g. through a :class:`JsonlSpanExporter`) or to
    accumulate several explained queries in one ring.
    """
    from repro.oodb.query.evaluator import QueryEvaluator

    collecting = tracer if tracer is not None else Tracer(ring_size=8)
    evaluator = QueryEvaluator(db)
    plan = evaluator.explain(text, bindings or {})
    previous = runtime.swap_tracer(collecting)
    try:
        rows, stats = evaluator.run_with_stats(text, bindings or {})
    finally:
        runtime.swap_tracer(previous)
    return ExplainResult(text, rows, stats, collecting.last_trace(), plan)


# --------------------------------------------------------------------------
# Rendering
# --------------------------------------------------------------------------

def _format_span(span: Span) -> str:
    parts = [span.name, f"{span.duration * 1000:.2f}ms"]
    attrs = " ".join(f"{key}={value}" for key, value in span.attributes.items())
    if attrs:
        parts.append(attrs)
    return "  ".join(parts)


def _grouped_children(
    span: Span, max_siblings: int
) -> List[Tuple[str, Any]]:
    """Children as ("span", Span) entries plus ("summary", ...) aggregates.

    Siblings sharing a name beyond ``max_siblings`` collapse to the slowest
    representative plus one aggregate line — per-object stages (one
    ``findIRSValue`` per candidate) stay readable.
    """
    by_name: Dict[str, List[Span]] = {}
    name_order: List[str] = []
    for child in span.children:
        if child.name not in by_name:
            by_name[child.name] = []
            name_order.append(child.name)
        by_name[child.name].append(child)
    entries: List[Tuple[str, Any]] = []
    for name in name_order:
        members = by_name[name]
        if len(members) <= max_siblings:
            entries.extend(("span", member) for member in members)
        else:
            slowest = max(members, key=lambda s: s.duration)
            rest_total = sum(s.duration for s in members if s is not slowest)
            entries.append(("span", slowest))
            entries.append(("summary", (name, len(members) - 1, rest_total)))
    return entries


def render_span_tree(root: Span, max_siblings: int = MAX_SIBLINGS_PER_NAME) -> str:
    """Draw a span tree with box-drawing connectors and millisecond timings."""
    lines = [_format_span(root)]

    def draw(span: Span, prefix: str) -> None:
        entries = _grouped_children(span, max_siblings)
        for index, (kind, payload) in enumerate(entries):
            last = index == len(entries) - 1
            connector = "└─ " if last else "├─ "
            continuation = "   " if last else "│  "
            if kind == "span":
                lines.append(prefix + connector + _format_span(payload))
                draw(payload, prefix + continuation)
            else:
                name, count, total = payload
                lines.append(
                    prefix + connector
                    + f"… ×{count} more {name}  total {total * 1000:.2f}ms"
                )

    draw(root, "")
    return "\n".join(lines)
