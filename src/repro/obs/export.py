"""Metrics exposition: Prometheus text format and periodic JSONL snapshots.

Two consumers, two formats:

* :func:`prometheus_text` renders the whole
  :class:`~repro.obs.metrics.MetricsRegistry` in the Prometheus text
  exposition format (version 0.0.4): counters as ``<name>_total``, gauges
  verbatim, fixed histograms with *cumulative* ``le`` buckets plus
  ``_sum``/``_count``, and rolling histograms as summaries with
  ``quantile`` labels (a sliding-window percentile is a summary, not a
  histogram — its quantiles are pre-computed and its buckets are not
  cumulative-forever).  Serve it from any HTTP handler, or dump it to a
  file as a CI artifact.

* :class:`MetricsSnapshotter` appends one JSON line per interval —
  timestamped full registry snapshots — for offline analysis of a run
  (the benchmark harness uploads these).  :func:`write_metrics_snapshot`
  is the one-shot form.

No sockets here: the repo has no network service yet (see ROADMAP); these
are the formats, not the endpoint.
"""

from __future__ import annotations

import json
import re
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs import runtime
from repro.obs.histogram import SNAPSHOT_QUANTILES
from repro.obs.metrics import MetricsRegistry

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str = "") -> str:
    """Sanitize a registry name into a Prometheus metric name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _INVALID.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def prometheus_text(
    registry: Optional[MetricsRegistry] = None, prefix: str = "repro"
) -> str:
    """The registry in Prometheus text exposition format (one big string)."""
    snapshot = (registry or runtime.metrics()).snapshot()
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")

    for name, hist in snapshot.get("histograms", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for label, count in hist["buckets"].items():
            cumulative += count
            bound = label[2:] if label.startswith("<=") else label
            lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f"{metric}_sum {_fmt(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")

    for name, roll in snapshot.get("rolling", {}).items():
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        for label, quantile in SNAPSHOT_QUANTILES:
            lines.append(
                f'{metric}{{quantile="{quantile}"}} {_fmt(roll.get(label, 0.0))}'
            )
        lines.append(f"{metric}_sum {_fmt(roll['sum'])}")
        lines.append(f"{metric}_count {roll['count']}")

    return "\n".join(lines) + "\n"


def write_metrics_snapshot(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Append one timestamped registry snapshot to ``path`` as a JSON line."""
    record: Dict[str, Any] = {
        "ts": time.time(),
        "metrics": (registry or runtime.metrics()).snapshot(),
    }
    if extra:
        record.update(extra)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


class MetricsSnapshotter:
    """A background thread appending registry snapshots to a JSONL file.

    Daemonic and interval-driven; :meth:`stop` writes one final snapshot so
    short runs always produce at least one line.  Usable as a context
    manager around a benchmark or service run.
    """

    def __init__(
        self,
        path: str,
        interval_seconds: float = 5.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        self.path = path
        self.interval_seconds = interval_seconds
        self._registry = registry
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.snapshots_written = 0

    def _run(self) -> None:
        while not self._stop.wait(self.interval_seconds):
            self._write()

    def _write(self) -> None:
        write_metrics_snapshot(self.path, self._registry)
        self.snapshots_written += 1

    def start(self) -> "MetricsSnapshotter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="metrics-snapshotter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_snapshot: bool = True) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if final_snapshot:
            self._write()

    def __enter__(self) -> "MetricsSnapshotter":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
