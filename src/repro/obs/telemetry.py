"""Request-level telemetry: cost profiles, attribution, and trace retention.

The batching layer (PR 3) deliberately blurs request identity: a window of
requests against one collection shares a single propagation, a single
read-lock snapshot, and one scoring pass per *distinct* ``(model, query,
top_k)`` key.  That is what makes it fast — and what makes a single
request impossible to debug, because no artifact says what *this* request
cost.  This module restores identity without unsharing the work:

* :class:`CostProfile` — a flat bundle of cost counters (blocks decoded /
  skipped, candidates scored, cache hits, segments touched, propagation
  work).  Fields are floats so shared work can be split fractionally.
* :func:`collecting` / :func:`active_profile` — a thread-local slot the
  engine and scorer write into while a query executes.  One ``getattr``
  when idle; no locks (collection is per worker thread).
* :class:`RequestTelemetry` — the per-request artifact surfaced on
  ``ResultSet.telemetry``: identity, timings, batch context (window /
  group / rider counts), outcome, the attributed :class:`CostProfile`,
  and (when retained) the full span tree.
* :class:`TraceSampler` — tail-based retention.  Full span trees are kept
  for slow or errored requests; healthy fast traffic is head-sampled
  (every Nth request) so trace memory stays bounded under service load.

**Conservation.**  Attribution is exact by construction: a request that
rode key *K* in a group of *G* requests receives ``cost[K] / riders[K] +
shared / G``.  Summing over the group's requests rebuilds ``sum(cost) +
shared`` — no double counting, no loss (verified by the conservation test
in ``tests/service/test_telemetry.py``).
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: Counter fields of a CostProfile, in presentation order.  Floats, because
#: shared batch work is attributed fractionally to rider requests.
COST_FIELDS = (
    "queries",
    "result_cache_hits",
    "result_cache_misses",
    "stats_cache_hits",
    "stats_cache_misses",
    "blocks_decoded",
    "blocks_skipped",
    "early_terminations",
    "candidates_scored",
    "pruned_queries",
    "fallback_queries",
    "segments_touched",
    "propagations",
    "propagated_updates",
    "propagation_seconds",
    "scoring_seconds",
)


class CostProfile:
    """What a request (or a shared batch stage) cost, as flat counters."""

    __slots__ = COST_FIELDS

    def __init__(self, **initial: float) -> None:
        for field in COST_FIELDS:
            setattr(self, field, initial.get(field, 0.0))

    def merge(self, other: "CostProfile", scale: float = 1.0) -> "CostProfile":
        """Add ``other`` (optionally scaled — for split shared work)."""
        for field in COST_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field) * scale)
        return self

    def as_dict(self) -> Dict[str, float]:
        return {field: getattr(self, field) for field in COST_FIELDS}

    def __repr__(self) -> str:
        nonzero = {k: round(v, 6) for k, v in self.as_dict().items() if v}
        return f"<CostProfile {nonzero}>"


# -- thread-local collection slot -------------------------------------------

_local = threading.local()


def active_profile() -> Optional[CostProfile]:
    """The profile the current thread is collecting into (None when idle)."""
    return getattr(_local, "profile", None)


@contextmanager
def collecting(profile: Optional[CostProfile]) -> Iterator[Optional[CostProfile]]:
    """Collect engine/scorer costs into ``profile`` on this thread.

    ``None`` is a no-op (the disabled path costs one ``if``).  Nesting
    restores the outer profile on exit, so an inner instrumented call
    (e.g. a mixed query issuing a sub-query) cannot leak attribution.
    """
    if profile is None:
        yield None
        return
    previous = getattr(_local, "profile", None)
    _local.profile = profile
    try:
        yield profile
    finally:
        _local.profile = previous


# -- the per-request artifact ------------------------------------------------

_request_ids = itertools.count(1)


class RequestTelemetry:
    """Everything one request can report about itself.

    Attached to ``ResultSet.telemetry`` by the session/service layer.
    ``group_totals`` carries the *unsplit* group aggregate (same dict object
    shared by every rider of the window group) so callers can verify
    conservation or compute their share of the batch.
    """

    __slots__ = (
        "request_id",
        "collection",
        "query",
        "model",
        "top_k",
        "epoch",
        "mode",
        "outcome",
        "cost",
        "queue_seconds",
        "run_seconds",
        "total_seconds",
        "window_size",
        "group_size",
        "distinct_queries",
        "riders",
        "group_totals",
        "trace",
        "sampled",
    )

    def __init__(
        self,
        collection: str = "",
        query: str = "",
        model: str = "",
        top_k: Optional[int] = None,
        mode: str = "inline",
    ) -> None:
        self.request_id = next(_request_ids)
        self.collection = collection
        self.query = query
        self.model = model
        self.top_k = top_k
        self.epoch: Optional[int] = None
        self.mode = mode  # "inline" | "batched"
        self.outcome = "unknown"  # cached | pruned | fallback:<reason> | exhaustive
        self.cost = CostProfile()
        self.queue_seconds = 0.0
        self.run_seconds = 0.0
        self.total_seconds = 0.0
        self.window_size = 1
        self.group_size = 1
        self.distinct_queries = 1
        self.riders = 1
        self.group_totals: Optional[Dict[str, float]] = None
        self.trace = None  # a Span tree when retained, else None
        self.sampled = False

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "RequestTelemetry":
        """Rebuild telemetry from its :meth:`as_dict` form.

        The inverse used by the network client: telemetry rides on every
        wire response as JSON and comes back as a real artifact on
        ``ResultSet.telemetry``.  ``request_id`` is the *server's* id for
        the request; a retained trace stays in its JSON record form (span
        objects do not round-trip, their records do).
        """
        telemetry = cls(
            collection=record.get("collection", ""),
            query=record.get("query", ""),
            model=record.get("model", ""),
            top_k=record.get("top_k"),
            mode=record.get("mode", "inline"),
        )
        telemetry.request_id = record.get("request_id", telemetry.request_id)
        telemetry.epoch = record.get("epoch")
        telemetry.outcome = record.get("outcome", "unknown")
        telemetry.queue_seconds = record.get("queue_seconds", 0.0)
        telemetry.run_seconds = record.get("run_seconds", 0.0)
        telemetry.total_seconds = record.get("total_seconds", 0.0)
        telemetry.window_size = record.get("window_size", 1)
        telemetry.group_size = record.get("group_size", 1)
        telemetry.distinct_queries = record.get("distinct_queries", 1)
        telemetry.riders = record.get("riders", 1)
        telemetry.sampled = record.get("sampled", False)
        cost = record.get("cost") or {}
        telemetry.cost = CostProfile(
            **{field: cost[field] for field in COST_FIELDS if field in cost}
        )
        if record.get("group_totals") is not None:
            telemetry.group_totals = dict(record["group_totals"])
        telemetry.trace = record.get("trace")
        return telemetry

    def as_dict(self) -> Dict[str, Any]:
        """JSON-encodable view (trace serialized via ``Span.to_record``)."""
        record: Dict[str, Any] = {
            "request_id": self.request_id,
            "collection": self.collection,
            "query": self.query,
            "model": self.model,
            "top_k": self.top_k,
            "epoch": self.epoch,
            "mode": self.mode,
            "outcome": self.outcome,
            "queue_seconds": self.queue_seconds,
            "run_seconds": self.run_seconds,
            "total_seconds": self.total_seconds,
            "window_size": self.window_size,
            "group_size": self.group_size,
            "distinct_queries": self.distinct_queries,
            "riders": self.riders,
            "sampled": self.sampled,
            "cost": self.cost.as_dict(),
        }
        if self.group_totals is not None:
            record["group_totals"] = dict(self.group_totals)
        if self.trace is not None:
            record["trace"] = self.trace.to_record()
        return record

    def __repr__(self) -> str:
        return (
            f"<RequestTelemetry #{self.request_id} {self.mode} {self.outcome} "
            f"total={self.total_seconds * 1e3:.2f}ms riders={self.riders}>"
        )


# -- tail-based trace retention ----------------------------------------------


class TraceSampler:
    """Decide which requests keep their full span tree.

    Slow (``seconds >= slow_seconds``) and errored requests always keep the
    tree — those are the ones worth debugging.  Healthy traffic is
    head-sampled: the first of every ``head_every`` decisions keeps its
    tree, the rest drop it.  ``head_every=0`` disables head sampling;
    ``head_every=1`` keeps everything.  ``slow_seconds=None`` tracks the
    slow-query-log threshold, so one knob governs both artifacts.
    """

    def __init__(self, head_every: int = 16, slow_seconds: Optional[float] = None):
        self.head_every = head_every
        self.slow_seconds = slow_seconds
        self._decisions = itertools.count()

    def keep(self, seconds: float, error: bool = False) -> bool:
        if error:
            return True
        slow = self.slow_seconds
        if slow is None:
            from repro.obs.runtime import slow_log

            slow = slow_log().threshold
        if seconds >= slow:
            return True
        if self.head_every <= 0:
            return False
        return next(self._decisions) % self.head_every == 0


_sampler = TraceSampler()


def sampler() -> TraceSampler:
    """The process-wide trace retention policy."""
    return _sampler


def configure_sampling(
    head_every: Optional[int] = None, slow_seconds: Optional[float] = None
) -> TraceSampler:
    """Adjust trace retention; ``slow_seconds=None`` keeps the current value."""
    if head_every is not None:
        _sampler.head_every = head_every
    if slow_seconds is not None:
        _sampler.slow_seconds = slow_seconds
    return _sampler


def sampling_config() -> Dict[str, Any]:
    """The sampler's current knobs (for ``obs.config_snapshot``)."""
    return {
        "head_every": _sampler.head_every,
        "slow_seconds": _sampler.slow_seconds,
    }
