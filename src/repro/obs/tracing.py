"""Nested tracing spans with JSONL export and an in-memory ring buffer.

A :class:`Span` records a name, free-form attributes, the wall-clock start
time and a ``perf_counter``-based duration.  Spans nest through the
:class:`Tracer`'s per-thread stack::

    with tracer.span("oodb.query", query=text) as span:
        with tracer.span("irs.query", model="vector"):
            ...
        span.set_attribute("rows", len(rows))

When a *root* span finishes, the completed tree is appended to a bounded
ring buffer (:meth:`Tracer.finished_traces`) and, when an exporter is
attached, written to a JSONL file — one flat record per span, linked by
``parent_id``, reconstructable with :func:`load_spans`.

:class:`NoopTracer` is the disabled path: ``span()`` hands out a shared
do-nothing context manager, so call sites pay only a method call and a
kwargs dict when tracing is off.

Traces are bounded two ways: the ring keeps the last ``ring_size`` roots,
and a single trace stops recording descendants past ``max_spans_per_trace``
(the root is then annotated with ``dropped_spans``), so pathological queries
cannot grow memory without bound.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional


def trim(text: str, limit: int = 100) -> str:
    """Shorten attribute values so spans stay cheap to keep and export."""
    text = str(text)
    if len(text) <= limit:
        return text
    return text[: limit - 1] + "…"


class Span:
    """One timed operation; children are spans opened while it was active."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attributes",
        "start_time",
        "duration",
        "children",
        "_start_perf",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.start_time = time.time()
        self._start_perf = time.perf_counter()
        self.duration = 0.0
        self.children: List["Span"] = []

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish(self) -> None:
        self.duration = time.perf_counter() - self._start_perf

    def iter_spans(self) -> Iterator["Span"]:
        """This span and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def span_count(self) -> int:
        return sum(1 for _ in self.iter_spans())

    def to_record(self) -> Dict[str, Any]:
        """Flat, JSON-encodable form (children linked via ``parent_id``)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start_time,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Span":
        span = cls(
            record["name"],
            record["span_id"],
            record.get("parent_id"),
            record["trace_id"],
            record.get("attributes") or {},
        )
        span.start_time = record["start"]
        span.duration = record["duration"]
        return span

    def __repr__(self) -> str:
        return f"<Span {self.name!r} {self.duration * 1000:.3f}ms children={len(self.children)}>"


class _ActiveSpan:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self._span.attributes.setdefault("error", trim(repr(exc)))
        self._tracer._finish(self._span)
        return False


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()
    name = ""
    attributes: Dict[str, Any] = {}
    duration = 0.0
    children: List[Span] = []

    def set_attribute(self, key: str, value: Any) -> None:
        pass


class _NoopContext:
    __slots__ = ()

    def __enter__(self) -> _NoopSpan:
        return NOOP_SPAN

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpan()
_NOOP_CONTEXT = _NoopContext()


class Tracer:
    """Produces nested spans; finished roots land in a ring buffer.

    Thread-safe: each thread nests through its own span stack; the ring of
    finished traces is shared.
    """

    def __init__(
        self,
        exporter: Optional["JsonlSpanExporter"] = None,
        ring_size: int = 32,
        max_spans_per_trace: int = 5000,
    ) -> None:
        self._local = threading.local()
        self._ring: "deque[Span]" = deque(maxlen=max(1, ring_size))
        self._exporter = exporter
        self._ids = itertools.count(1)
        self._max_spans_per_trace = max(1, max_spans_per_trace)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle -----------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a span nested under the thread's current span (if any)."""
        stack = self._stack()
        local = self._local
        if stack:
            count = local.count = getattr(local, "count", 0) + 1
            if count > self._max_spans_per_trace:
                local.dropped = getattr(local, "dropped", 0) + 1
                return _NOOP_CONTEXT
            parent = stack[-1]
            span = Span(name, next(self._ids), parent.span_id, parent.trace_id, attributes)
        else:
            local.count = 1
            local.dropped = 0
            span_id = next(self._ids)
            span = Span(name, span_id, None, span_id, attributes)
        stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        span.finish()
        if stack:
            stack[-1].children.append(span)
            return
        dropped = getattr(self._local, "dropped", 0)
        if dropped:
            span.attributes["dropped_spans"] = dropped
        self._ring.append(span)
        if self._exporter is not None:
            self._exporter.export(span)

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- finished traces ----------------------------------------------------

    def finished_traces(self) -> List[Span]:
        """Finished root spans, oldest first (bounded by ``ring_size``)."""
        return list(self._ring)

    def last_trace(self) -> Optional[Span]:
        return self._ring[-1] if self._ring else None

    def clear(self) -> None:
        self._ring.clear()

    def set_exporter(self, exporter: Optional["JsonlSpanExporter"]) -> None:
        self._exporter = exporter


class NoopTracer(Tracer):
    """The disabled path: spans cost one call and record nothing."""

    def __init__(self) -> None:  # no state beyond the shared singletons
        pass

    def span(self, name: str, **attributes: Any):
        return _NOOP_CONTEXT

    def _finish(self, span: Span) -> None:
        pass

    def current_span(self) -> Optional[Span]:
        return None

    def finished_traces(self) -> List[Span]:
        return []

    def last_trace(self) -> Optional[Span]:
        return None

    def clear(self) -> None:
        pass

    def set_exporter(self, exporter: Optional["JsonlSpanExporter"]) -> None:
        pass


NOOP_TRACER = NoopTracer()


class JsonlSpanExporter:
    """Writes finished traces as newline-delimited JSON, one span per line.

    Records are flat (children linked by ``parent_id``) and written
    pre-order per root, so a partially written file is still a valid prefix
    of the trace stream.  :func:`load_spans` round-trips the file back into
    span trees.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._file = open(path, "a", encoding="utf-8")

    def export(self, root: Span) -> None:
        lines = [
            json.dumps(span.to_record(), sort_keys=True, default=str)
            for span in root.iter_spans()
        ]
        with self._lock:
            self._file.write("\n".join(lines) + "\n")
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlSpanExporter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def load_spans(path: str) -> List[Span]:
    """Rebuild root span trees from a JSONL file written by the exporter."""
    spans: Dict[int, Span] = {}
    order: List[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            span = Span.from_record(json.loads(line))
            spans[span.span_id] = span
            order.append(span)
    roots: List[Span] = []
    for span in order:
        parent = spans.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots
