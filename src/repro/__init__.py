"""repro — reproduction of "Applying a Flexible OODBMS-IRS-Coupling to
Structured Document Handling" (Volz, Aberer, Böhm, ICDE 1996).

Subpackages
-----------
``repro.oodb``
    The OODBMS substrate (VODAK stand-in): objects, transactions, indexes,
    and the VQL-like query language.
``repro.irs``
    The IRS substrate (INQUERY stand-in): analysis, inverted index,
    boolean/vector/probabilistic retrieval, passages, feedback,
    hierarchical scoring.
``repro.sgml``
    DTDs, SGML parsing/validation, and the document-to-object loader.
``repro.core``
    The paper's contribution: the COLLECTION/IRSObject coupling.
``repro.hypermedia``
    Section 5: links, media text modes, link-based derivation.
``repro.workloads``
    Seeded corpora, the Figure 4 base, query workloads, metrics.
``repro.net``
    The out-of-process service: wire protocol, socket server, remote and
    async sessions.  :func:`repro.connect` is the transport-agnostic
    front door.
"""

import logging as _logging

# Library etiquette: diagnostics flow through ``repro.*`` loggers; the
# embedding application decides whether and where they appear.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

from repro.core.system import DocumentSystem  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.service import ResultSet, ScoredHit, ServiceConfig, Session  # noqa: E402
from repro.net import (  # noqa: E402
    AsyncSession,
    DocumentServer,
    RemoteSession,
    connect,
)

__version__ = "1.2.0"

__all__ = [
    "AsyncSession",
    "DocumentServer",
    "DocumentSystem",
    "RemoteSession",
    "ReproError",
    "ResultSet",
    "ScoredHit",
    "ServiceConfig",
    "Session",
    "__version__",
    "connect",
]
