"""An in-memory B-tree used by attribute indexes.

Classic order-``t`` B-tree (Cormen-style minimum degree) storing
``key -> set of values`` with duplicate keys collapsed into a value set —
attribute indexes map an attribute value to the set of OIDs carrying it.

Supported operations: insert, delete, point lookup, and inclusive/exclusive
range scans in key order.  Keys must be mutually comparable; mixed-type key
spaces are rejected at the index layer, not here.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Set, Tuple


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Set[Any]] = []
        self.children: List["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """A B-tree multimap from comparable keys to sets of values."""

    def __init__(self, min_degree: int = 16) -> None:
        if min_degree < 2:
            raise ValueError("B-tree minimum degree must be >= 2")
        self._t = min_degree
        self._root = _Node()
        self._n_keys = 0
        self._n_entries = 0

    # -- statistics --------------------------------------------------------

    def __len__(self) -> int:
        """Number of distinct keys."""
        return self._n_keys

    @property
    def entry_count(self) -> int:
        """Number of (key, value) pairs."""
        return self._n_entries

    def height(self) -> int:
        """Tree height (root-only tree has height 1)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    # -- lookup --------------------------------------------------------------

    def get(self, key: Any) -> Set[Any]:
        """The value set stored under ``key`` (empty set when absent)."""
        node = self._root
        while True:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return set(node.values[idx])
            if node.is_leaf:
                return set()
            node = node.children[idx]

    def __contains__(self, key: Any) -> bool:
        node = self._root
        while True:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return True
            if node.is_leaf:
                return False
            node = node.children[idx]

    @staticmethod
    def _bisect(keys: List[Any], key: Any) -> int:
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- insertion -------------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Add ``value`` to the set under ``key``."""
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        t = self._t
        child = parent.children[index]
        sibling = _Node()
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]
        mid_key = child.keys[t - 1]
        mid_val = child.values[t - 1]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        parent.keys.insert(index, mid_key)
        parent.values.insert(index, mid_val)
        parent.children.insert(index + 1, sibling)

    def _insert_nonfull(self, node: _Node, key: Any, value: Any) -> None:
        while True:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                if value not in node.values[idx]:
                    node.values[idx].add(value)
                    self._n_entries += 1
                return
            if node.is_leaf:
                node.keys.insert(idx, key)
                node.values.insert(idx, {value})
                self._n_keys += 1
                self._n_entries += 1
                return
            child = node.children[idx]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, idx)
                if node.keys[idx] == key:
                    if value not in node.values[idx]:
                        node.values[idx].add(value)
                        self._n_entries += 1
                    return
                if key > node.keys[idx]:
                    idx += 1
            node = node.children[idx]

    # -- deletion ---------------------------------------------------------------

    def remove(self, key: Any, value: Any) -> bool:
        """Remove ``value`` from the set under ``key``.

        Returns True when the pair existed.  When the value set becomes
        empty, the key itself is deleted from the tree.
        """
        values = self.get(key)
        if value not in values:
            return False
        if len(values) > 1:
            self._replace_values(key, values - {value})
            self._n_entries -= 1
            return True
        self._delete_key(self._root, key)
        if not self._root.keys and not self._root.is_leaf:
            self._root = self._root.children[0]
        self._n_keys -= 1
        self._n_entries -= 1
        return True

    def _replace_values(self, key: Any, new_values: Set[Any]) -> None:
        node = self._root
        while True:
            idx = self._bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = new_values
                return
            node = node.children[idx]

    def _delete_key(self, node: _Node, key: Any) -> None:
        t = self._t
        idx = self._bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            if node.is_leaf:
                node.keys.pop(idx)
                node.values.pop(idx)
                return
            # Internal node: replace with predecessor or successor, or merge.
            left, right = node.children[idx], node.children[idx + 1]
            if len(left.keys) >= t:
                pk, pv = self._max_entry(left)
                node.keys[idx], node.values[idx] = pk, pv
                self._delete_key(left, pk)
            elif len(right.keys) >= t:
                sk, sv = self._min_entry(right)
                node.keys[idx], node.values[idx] = sk, sv
                self._delete_key(right, sk)
            else:
                self._merge_children(node, idx)
                self._delete_key(left, key)
            return
        if node.is_leaf:
            return  # key absent; caller guarantees presence so unreachable
        child = node.children[idx]
        if len(child.keys) < t:
            idx = self._fill_child(node, idx)
            child = node.children[idx] if idx < len(node.children) else node.children[-1]
            # After a merge the key may now live in this node.
            jdx = self._bisect(node.keys, key)
            if jdx < len(node.keys) and node.keys[jdx] == key:
                self._delete_key(node, key)
                return
            child = node.children[self._bisect(node.keys, key)]
        self._delete_key(child, key)

    def _fill_child(self, node: _Node, idx: int) -> int:
        """Ensure child ``idx`` has >= t keys; returns the (possibly new) index."""
        t = self._t
        if idx > 0 and len(node.children[idx - 1].keys) >= t:
            self._borrow_from_prev(node, idx)
            return idx
        if idx < len(node.children) - 1 and len(node.children[idx + 1].keys) >= t:
            self._borrow_from_next(node, idx)
            return idx
        if idx < len(node.children) - 1:
            self._merge_children(node, idx)
            return idx
        self._merge_children(node, idx - 1)
        return idx - 1

    @staticmethod
    def _borrow_from_prev(node: _Node, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx - 1]
        child.keys.insert(0, node.keys[idx - 1])
        child.values.insert(0, node.values[idx - 1])
        node.keys[idx - 1] = sibling.keys.pop()
        node.values[idx - 1] = sibling.values.pop()
        if not sibling.is_leaf:
            child.children.insert(0, sibling.children.pop())

    @staticmethod
    def _borrow_from_next(node: _Node, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx + 1]
        child.keys.append(node.keys[idx])
        child.values.append(node.values[idx])
        node.keys[idx] = sibling.keys.pop(0)
        node.values[idx] = sibling.values.pop(0)
        if not sibling.is_leaf:
            child.children.append(sibling.children.pop(0))

    @staticmethod
    def _merge_children(node: _Node, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx + 1]
        child.keys.append(node.keys.pop(idx))
        child.values.append(node.values.pop(idx))
        child.keys.extend(sibling.keys)
        child.values.extend(sibling.values)
        child.children.extend(sibling.children)
        node.children.pop(idx + 1)

    @staticmethod
    def _min_entry(node: _Node) -> Tuple[Any, Set[Any]]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    @staticmethod
    def _max_entry(node: _Node) -> Tuple[Any, Set[Any]]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    # -- iteration -----------------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Set[Any]]]:
        """All (key, value-set) pairs in key order."""
        yield from self._walk(self._root)

    def _walk(self, node: _Node) -> Iterator[Tuple[Any, Set[Any]]]:
        if node.is_leaf:
            for key, values in zip(node.keys, node.values):
                yield key, set(values)
            return
        for i, key in enumerate(node.keys):
            yield from self._walk(node.children[i])
            yield key, set(node.values[i])
        yield from self._walk(node.children[-1])

    def keys(self) -> Iterator[Any]:
        """All keys in sorted order."""
        for key, _values in self.items():
            yield key

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Tuple[Any, Set[Any]]]:
        """Scan (key, value-set) pairs with low <= key <= high in key order.

        ``None`` bounds are open on that side; inclusivity flags implement
        the four comparison operators of the query language.
        """
        for key, values in self.items():
            if low is not None:
                if key < low or (not include_low and key == low):
                    continue
            if high is not None:
                if key > high:
                    break
                if not include_high and key == high:
                    break
            yield key, values

    # -- invariant checking (used by property tests) ----------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when any B-tree invariant is violated."""
        t = self._t

        def visit(node: _Node, depth: int, is_root: bool, lo: Any, hi: Any) -> int:
            assert len(node.keys) == len(node.values)
            assert len(node.keys) <= 2 * t - 1, "node overfull"
            if not is_root:
                assert len(node.keys) >= t - 1, "node underfull"
            for a, b in zip(node.keys, node.keys[1:]):
                assert a < b, "keys not strictly increasing"
            for key in node.keys:
                if lo is not None:
                    assert key > lo, "key below subtree lower bound"
                if hi is not None:
                    assert key < hi, "key above subtree upper bound"
            for values in node.values:
                assert values, "empty value set retained"
            if node.is_leaf:
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                depths.add(visit(child, depth + 1, False, bounds[i], bounds[i + 1]))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        visit(self._root, 0, True, None, None)
        assert self._n_keys == sum(1 for _ in self.items())
        assert self._n_entries == sum(len(v) for _, v in self.items())
