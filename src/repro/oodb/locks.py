"""Lock manager: shared/exclusive locks with strict two-phase locking.

Transactions acquire S locks for reads and X locks for writes on object OIDs
(and on whole-class extents for scans).  Locks are held until commit/abort
(strict 2PL), which gives serializability — one of the "full DBMS
functionality" requirements (Section 1.2, property 2).

Deadlocks are detected eagerly on a waits-for graph; the requesting
transaction is chosen as victim and receives :class:`DeadlockError`.

Grants are FIFO-fair: once a transaction is waiting on a resource, later
arrivals whose mode conflicts with the waiter queue behind it instead of
jumping the line, so a steady stream of readers cannot starve a writer
under the service layer's concurrent load.  Lock upgrades (a holder
re-requesting in a stronger mode) bypass the queue — they must, or an
upgrade would deadlock against waiters that are themselves blocked on the
upgrader's current hold.

:meth:`LockManager.add_conflict_listener` registers a hook fired when a
request first starts waiting; the service layer's tests use it to inject
deterministic lock conflicts and to observe retry behaviour.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro import obs
from repro.errors import DeadlockError, LockTimeoutError

logger = logging.getLogger(__name__)


class LockMode(Enum):
    """Lock modes.  X conflicts with everything; S conflicts with X."""

    SHARED = "S"
    EXCLUSIVE = "X"


def _compatible(held: LockMode, requested: LockMode) -> bool:
    return held is LockMode.SHARED and requested is LockMode.SHARED


#: Signature of a conflict listener: (txn_id, resource, mode, blockers).
ConflictListener = Callable[[int, Hashable, LockMode, Set[int]], None]


@dataclass
class _LockEntry:
    """State of one lockable resource."""

    holders: Dict[int, LockMode] = field(default_factory=dict)
    condition: threading.Condition = field(default_factory=threading.Condition)
    #: Waiting requests in arrival order; grants never jump an earlier
    #: incompatible waiter (FIFO fairness).
    waiters: List[Tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Grants S/X locks on hashable resource ids to transaction ids.

    The manager is re-entrant per transaction: re-requesting a held lock is a
    no-op, and a lone S holder may upgrade to X.
    """

    def __init__(self, timeout: float = 5.0) -> None:
        self._timeout = timeout
        self._entries: Dict[Hashable, _LockEntry] = {}
        self._waits_for: Dict[int, Set[int]] = defaultdict(set)
        self._held_by_txn: Dict[int, Set[Hashable]] = defaultdict(set)
        self._mutex = threading.Lock()
        self._conflict_listeners: List[ConflictListener] = []

    # -- conflict listeners -----------------------------------------------------

    def add_conflict_listener(self, listener: ConflictListener) -> None:
        """Register a hook fired when a request first starts waiting.

        Called with ``(txn_id, resource, mode, blockers)`` while the entry's
        condition is held — listeners must be quick and must not call back
        into the lock manager.  Used by the service layer for retry metrics
        and by tests for deterministic conflict injection.
        """
        self._conflict_listeners.append(listener)

    def remove_conflict_listener(self, listener: ConflictListener) -> None:
        """Unregister a listener added by :meth:`add_conflict_listener`."""
        try:
            self._conflict_listeners.remove(listener)
        except ValueError:
            pass

    # -- acquisition -----------------------------------------------------------

    def acquire(self, txn_id: int, resource: Hashable, mode: LockMode) -> None:
        """Grant ``mode`` on ``resource`` to ``txn_id``, blocking if needed.

        Raises :class:`DeadlockError` when waiting would close a cycle in the
        waits-for graph, :class:`LockTimeoutError` on timeout.
        """
        with self._mutex:
            entry = self._entries.setdefault(resource, _LockEntry())
        waited_since: Optional[float] = None
        with entry.condition:
            try:
                while True:
                    blockers = self._blocking_set(entry, txn_id, mode)
                    if not blockers:
                        entry.holders[txn_id] = self._merged_mode(entry, txn_id, mode)
                        self._remove_waiter(entry, txn_id)
                        with self._mutex:
                            self._held_by_txn[txn_id].add(resource)
                            self._waits_for.pop(txn_id, None)
                        # Later queued requests compatible with this grant
                        # (e.g. a run of readers) may now proceed together.
                        entry.condition.notify_all()
                        if waited_since is not None:
                            obs.metrics().histogram("oodb.lock.wait_seconds").observe(
                                time.perf_counter() - waited_since
                            )
                        return
                    if waited_since is None:
                        waited_since = time.perf_counter()
                        obs.metrics().counter("oodb.lock.waits").inc()
                        if txn_id not in entry.holders:
                            entry.waiters.append((txn_id, mode))
                        for listener in list(self._conflict_listeners):
                            listener(txn_id, resource, mode, set(blockers))
                        # A listener may have released/changed state: re-check
                        # before the deadlock test and the wait.
                        continue
                    with self._mutex:
                        self._waits_for[txn_id] = blockers
                        if self._would_deadlock(txn_id):
                            self._waits_for.pop(txn_id, None)
                            obs.metrics().counter("oodb.lock.deadlocks").inc()
                            logger.warning(
                                "deadlock: txn %d aborted requesting %s on %r",
                                txn_id,
                                mode.value,
                                resource,
                            )
                            raise DeadlockError(
                                f"transaction {txn_id} deadlocked requesting "
                                f"{mode.value} on {resource!r}"
                            )
                    if not entry.condition.wait(timeout=self._timeout):
                        with self._mutex:
                            self._waits_for.pop(txn_id, None)
                        obs.metrics().counter("oodb.lock.timeouts").inc()
                        logger.warning(
                            "lock timeout: txn %d requesting %s on %r after %.1fs",
                            txn_id,
                            mode.value,
                            resource,
                            self._timeout,
                        )
                        raise LockTimeoutError(
                            f"transaction {txn_id} timed out requesting "
                            f"{mode.value} on {resource!r}"
                        )
            except BaseException:
                # Deadlock victim / timeout / interrupt: leave the queue and
                # wake waiters whose only fairness block was this request.
                if self._remove_waiter(entry, txn_id):
                    entry.condition.notify_all()
                raise

    @staticmethod
    def _remove_waiter(entry: _LockEntry, txn_id: int) -> bool:
        """Drop ``txn_id`` from the entry's waiter queue; True if present."""
        remaining = [(w, m) for w, m in entry.waiters if w != txn_id]
        removed = len(remaining) != len(entry.waiters)
        entry.waiters[:] = remaining
        return removed

    @staticmethod
    def _blocking_set(entry: _LockEntry, txn_id: int, mode: LockMode) -> Set[int]:
        """Transactions this request must wait for: conflicting holders plus
        earlier incompatible waiters (FIFO fairness).

        A transaction already holding the entry (an upgrade) only waits on
        real conflicts, never on queued waiters — those waiters are blocked
        on the upgrader's current hold, so queueing behind them would
        deadlock by construction.
        """
        blockers = {
            holder
            for holder, held_mode in entry.holders.items()
            if holder != txn_id and not _compatible(held_mode, mode)
        }
        if txn_id in entry.holders:
            return blockers
        for waiter, waiter_mode in entry.waiters:
            if waiter == txn_id:
                break
            if not _compatible(waiter_mode, mode):
                blockers.add(waiter)
        return blockers

    @staticmethod
    def _merged_mode(entry: _LockEntry, txn_id: int, mode: LockMode) -> LockMode:
        held = entry.holders.get(txn_id)
        if held is LockMode.EXCLUSIVE or mode is LockMode.EXCLUSIVE:
            return LockMode.EXCLUSIVE
        return LockMode.SHARED

    def _would_deadlock(self, start: int) -> bool:
        """DFS over the waits-for graph looking for a cycle through ``start``."""
        stack = list(self._waits_for.get(start, ()))
        seen = set()
        while stack:
            txn = stack.pop()
            if txn == start:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(self._waits_for.get(txn, ()))
        return False

    # -- release -------------------------------------------------------------

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (commit/abort time)."""
        with self._mutex:
            resources = self._held_by_txn.pop(txn_id, set())
            self._waits_for.pop(txn_id, None)
        for resource in resources:
            entry = self._entries.get(resource)
            if entry is None:
                continue
            with entry.condition:
                entry.holders.pop(txn_id, None)
                entry.condition.notify_all()

    # -- introspection ----------------------------------------------------------

    def holds(self, txn_id: int, resource: Hashable, mode: Optional[LockMode] = None) -> bool:
        """Return True when ``txn_id`` holds a (compatible) lock on ``resource``."""
        entry = self._entries.get(resource)
        if entry is None:
            return False
        held = entry.holders.get(txn_id)
        if held is None:
            return False
        if mode is None:
            return True
        return held is LockMode.EXCLUSIVE or held is mode

    def held_resources(self, txn_id: int) -> Set[Hashable]:
        """Resources currently locked by ``txn_id``."""
        with self._mutex:
            return set(self._held_by_txn.get(txn_id, ()))
