"""Database objects.

A :class:`DBObject` is a handle onto one persistent object: an OID, a class
name, and an attribute dictionary managed by the store.  Method invocation
uses the ``send`` call, mirroring the ``obj -> method(args)`` arrow syntax of
the query language; the schema resolves the implementation along the ``isA``
chain so that, e.g., a ``PARA`` element object answers ``getIRSValue`` with
the implementation inherited from ``IRSObject``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict

from repro.errors import SchemaError
from repro.oodb.oid import OID

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.oodb.database import Database


class DBObject:
    """A handle on a persistent database object.

    Attribute reads go through :meth:`get`; writes through :meth:`set` so the
    store can log them for recovery and so indexes stay maintained.  The
    handle itself is cheap and may be held across transactions — it carries
    no cached state besides OID and class name.
    """

    __slots__ = ("_db", "oid", "class_name")

    def __init__(self, db: "Database", oid: OID, class_name: str) -> None:
        self._db = db
        self.oid = oid
        self.class_name = class_name

    # -- identity ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DBObject) and other.oid == self.oid

    def __hash__(self) -> int:
        return hash(self.oid)

    def __repr__(self) -> str:
        return f"<{self.class_name} {self.oid}>"

    # -- attributes -----------------------------------------------------------

    def get(self, attr: str) -> Any:
        """Read attribute ``attr`` (default value when never written)."""
        return self._db.read_attribute(self.oid, attr)

    def set(self, attr: str, value: Any) -> None:
        """Write attribute ``attr`` with schema type checking."""
        self._db.write_attribute(self.oid, attr, value)

    def attributes(self) -> Dict[str, Any]:
        """A snapshot of all attribute values (including defaults)."""
        return self._db.read_attributes(self.oid)

    # -- behaviour -------------------------------------------------------------

    def send(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``method`` on this object (the ``->`` of the query language)."""
        impl = self._db.schema.resolve_method(self.class_name, method)
        return impl(self, *args, **kwargs)

    def responds_to(self, method: str) -> bool:
        """Return True when the object's class defines/inherits ``method``."""
        return self._db.schema.has_method(self.class_name, method)

    def isa(self, class_name: str) -> bool:
        """Return True when the object's class is or inherits ``class_name``."""
        return self._db.schema.is_subclass(self.class_name, class_name)

    # -- navigation -------------------------------------------------------------

    def deref(self, attr: str) -> "DBObject":
        """Follow an OID-valued attribute to the referenced object."""
        value = self.get(attr)
        if not isinstance(value, OID):
            raise SchemaError(
                f"attribute {attr!r} of {self!r} holds {value!r}, not an OID"
            )
        return self._db.get_object(value)

    def deref_list(self, attr: str) -> list:
        """Follow a LIST-of-OIDs attribute to the referenced objects."""
        value = self.get(attr) or []
        return [self._db.get_object(v) for v in value if isinstance(v, OID)]

    @property
    def database(self) -> "Database":
        """The database this handle belongs to."""
        return self._db
