"""The object store: in-memory object table with snapshot persistence.

Objects live in a dictionary ``oid -> _StoredObject`` with per-class extents
maintained incrementally.  Persistence is snapshot-plus-WAL: a checkpoint
serializes the whole table to a JSON file; crash recovery loads the snapshot
and replays committed WAL records on top of it (see
:class:`repro.oodb.database.Database`).

Attribute values are restricted to a JSON-encodable universe extended with
:class:`~repro.oodb.oid.OID` references (encoded as ``{"__oid__": n}``),
which is what the document application needs: strings, numbers, booleans,
lists and dicts of these, and object references.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Set

from repro.errors import ObjectNotFoundError
from repro.oodb.oid import OID


def encode_value(value: Any) -> Any:
    """Translate a stored value into a JSON-encodable structure."""
    if isinstance(value, OID):
        return {"__oid__": value.value}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {"__dict__": [[encode_value(k), encode_value(v)] for k, v in value.items()]}
    return value


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    if isinstance(value, dict):
        if set(value) == {"__oid__"}:
            return OID(value["__oid__"])
        if set(value) == {"__tuple__"}:
            return tuple(decode_value(v) for v in value["__tuple__"])
        if set(value) == {"__dict__"}:
            return {decode_value(k): decode_value(v) for k, v in value["__dict__"]}
        return {k: decode_value(v) for k, v in value.items()}
    return value


@dataclass
class _StoredObject:
    class_name: str
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class SnapshotInfo:
    """What :meth:`ObjectStore.load_snapshot` recovered besides objects."""

    oid_high_water: int
    schema_payload: list


class ObjectStore:
    """The object table plus class extents."""

    def __init__(self) -> None:
        self._objects: Dict[OID, _StoredObject] = {}
        self._extents: Dict[str, Set[OID]] = {}

    # -- object lifecycle -----------------------------------------------------

    def create(self, oid: OID, class_name: str) -> None:
        """Register a new, empty object of ``class_name`` under ``oid``."""
        if oid in self._objects:
            raise ValueError(f"{oid} already exists")
        self._objects[oid] = _StoredObject(class_name)
        self._extents.setdefault(class_name, set()).add(oid)

    def delete(self, oid: OID) -> _StoredObject:
        """Remove the object; returns its last state (for undo)."""
        stored = self._require(oid)
        del self._objects[oid]
        self._extents[stored.class_name].discard(oid)
        return stored

    def restore(self, oid: OID, stored: _StoredObject) -> None:
        """Reinstate a deleted object (transaction rollback)."""
        self._objects[oid] = stored
        self._extents.setdefault(stored.class_name, set()).add(oid)

    def exists(self, oid: OID) -> bool:
        """Return True when ``oid`` denotes a live object."""
        return oid in self._objects

    def _require(self, oid: OID) -> _StoredObject:
        try:
            return self._objects[oid]
        except KeyError:
            raise ObjectNotFoundError(f"no object with {oid}") from None

    # -- attributes ---------------------------------------------------------------

    def class_of(self, oid: OID) -> str:
        """The class name of the object."""
        return self._require(oid).class_name

    def read(self, oid: OID, attr: str, default: Any = None) -> Any:
        """Read one attribute (``default`` when never written)."""
        return self._require(oid).attributes.get(attr, default)

    def has_written(self, oid: OID, attr: str) -> bool:
        """True when the attribute has an explicitly written value."""
        return attr in self._require(oid).attributes

    def write(self, oid: OID, attr: str, value: Any) -> Any:
        """Write one attribute; returns the previous value (for undo)."""
        stored = self._require(oid)
        previous = stored.attributes.get(attr, _MISSING)
        stored.attributes[attr] = value
        return previous

    def unwrite(self, oid: OID, attr: str, previous: Any) -> None:
        """Undo a write: restore ``previous`` (or remove when it was missing)."""
        stored = self._require(oid)
        if previous is _MISSING:
            stored.attributes.pop(attr, None)
        else:
            stored.attributes[attr] = previous

    def read_all(self, oid: OID) -> Dict[str, Any]:
        """A copy of all explicitly written attributes."""
        return dict(self._require(oid).attributes)

    # -- extents ---------------------------------------------------------------------

    def extent(self, class_name: str) -> Set[OID]:
        """OIDs of direct instances of ``class_name`` (no subclasses)."""
        return set(self._extents.get(class_name, ()))

    def all_oids(self) -> Iterator[OID]:
        """Every live OID."""
        return iter(list(self._objects))

    def __len__(self) -> int:
        return len(self._objects)

    # -- snapshots ------------------------------------------------------------------------

    def snapshot(self, path: str, oid_high_water: int, schema_payload: Optional[list] = None) -> None:
        """Serialize the whole table to ``path`` atomically.

        ``schema_payload`` is an opaque class-structure description produced
        by the database facade; it rides along so re-opened databases know
        their classes (method implementations are code and must be
        re-registered by the application).
        """
        payload = {
            "oid_high_water": oid_high_water,
            "schema": schema_payload or [],
            "objects": [
                {
                    "oid": oid.value,
                    "class": stored.class_name,
                    "attributes": {k: encode_value(v) for k, v in stored.attributes.items()},
                }
                for oid, stored in sorted(self._objects.items(), key=lambda kv: kv[0].value)
            ],
        }
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)

    def load_snapshot(self, path: str) -> "SnapshotInfo":
        """Replace the table with the snapshot at ``path``."""
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        self._objects = {}
        self._extents = {}
        for entry in payload["objects"]:
            oid = OID(entry["oid"])
            self.create(oid, entry["class"])
            self._objects[oid].attributes = {
                k: decode_value(v) for k, v in entry["attributes"].items()
            }
        return SnapshotInfo(
            oid_high_water=payload["oid_high_water"],
            schema_payload=payload.get("schema", []),
        )


class _Missing:
    """Sentinel distinguishing 'attribute never written' from None."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
