"""Query evaluator.

Executes the optimizer's plan: per-variable candidate production (extent
scan, index probe, or semantic restrictor), selectivity-ordered nested-loop
join with predicate pushdown, projection, ordering and limiting.

The evaluator also collects :class:`QueryStats` — candidate counts, tuples
examined, method invocations — which the benchmark harness uses to compare
evaluation strategies (Sections 4.5.3/4.5.4 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.errors import QueryEvaluationError
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID
from repro.oodb.query.ast import (
    Arithmetic,
    AttributeAccess,
    BooleanOp,
    Comparison,
    Expr,
    Literal,
    MethodCall,
    NotOp,
    Parameter,
    Query,
    Variable,
)
from repro.oodb.query.optimizer import Optimizer, QueryPlan, VariablePlan, restrictor_for
from repro.oodb.query.parser import parse_query

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import Database


@dataclass
class QueryStats:
    """Counters filled in during one query execution."""

    candidates_scanned: int = 0
    tuples_examined: int = 0
    rows_produced: int = 0
    method_calls: int = 0
    index_probes: int = 0
    restrictor_calls: int = 0
    per_variable_candidates: Dict[str, int] = field(default_factory=dict)


class QueryEvaluator:
    """Parses, plans and executes queries against one database."""

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._optimizer = Optimizer(db)
        self.stats = QueryStats()

    # -- public API ----------------------------------------------------------

    def run(self, text: str, bindings: Optional[Dict[str, Any]] = None) -> List[tuple]:
        """Execute ``text`` and return the projected rows as tuples."""
        rows, _stats = self.run_with_stats(text, bindings)
        return rows

    def run_with_stats(
        self, text: str, bindings: Optional[Dict[str, Any]] = None
    ) -> Tuple[List[tuple], QueryStats]:
        """Execute and also return execution counters."""
        self.stats = QueryStats()
        bindings = bindings or {}
        started = time.perf_counter()
        with obs.tracer().span("oodb.query", query=obs.trim(text)) as span:
            query = parse_query(text)
            plan = self._optimizer.plan(query, bindings)
            rows = self._execute(plan, bindings)
            span.set_attribute("rows", len(rows))
            span.set_attribute("tuples_examined", self.stats.tuples_examined)
            span.set_attribute("method_calls", self.stats.method_calls)
        elapsed = time.perf_counter() - started
        registry = obs.metrics()
        registry.counter("oodb.query.executed").inc()
        registry.histogram("oodb.query.seconds").observe(elapsed)
        if obs.slow_log().record("vql", text, elapsed, rows=len(rows)):
            registry.counter("oodb.query.slow").inc()
        return rows, self.stats

    def explain(self, text: str, bindings: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """The optimizer's plan description for ``text`` (no execution)."""
        query = parse_query(text)
        plan = self._optimizer.plan(query, bindings or {})
        return plan.description

    # -- plan execution ----------------------------------------------------------

    def _execute(self, plan: QueryPlan, bindings: Dict[str, Any]) -> List[tuple]:
        query = plan.query
        candidates: Dict[str, List[DBObject]] = {}
        for variable, vplan in plan.variable_plans.items():
            with obs.tracer().span("oodb.query.candidates", variable=variable) as span:
                span.set_attribute("class", vplan.class_name)
                objs = self._candidates(vplan, bindings)
                span.set_attribute("candidates", len(objs))
            candidates[variable] = objs
            self.stats.per_variable_candidates[variable] = len(objs)
            self.stats.candidates_scanned += len(objs)

        # Join order: smallest candidate set first.
        order = sorted(candidates, key=lambda v: len(candidates[v]))

        # Pushdown points: a join conjunct runs as soon as its variables bind.
        pending = list(plan.join_conjuncts)
        pushdown: Dict[int, List[Expr]] = {i: [] for i in range(len(order))}
        bound_sets = []
        bound: Set[str] = set()
        for i, variable in enumerate(order):
            bound = bound | {variable}
            bound_sets.append(set(bound))
        range_vars = set(candidates)
        for conjunct in pending:
            needed = conjunct.variables() & range_vars
            for i, bound_now in enumerate(bound_sets):
                if needed <= bound_now:
                    pushdown[i].append(conjunct)
                    break
            else:
                raise QueryEvaluationError(
                    f"conjunct references unknown variables: {sorted(needed)}"
                )

        with obs.tracer().span("oodb.query.join") as join_span:
            if query.is_aggregate:
                rows = self._aggregate_rows(plan, candidates, order, pushdown, bindings)
            elif query.order_by is not None:
                rows = self._ordered_rows(plan, candidates, order, pushdown, bindings)
            else:
                rows = []
                env: Dict[str, DBObject] = {}

                def bind(level: int) -> None:
                    if level == len(order):
                        row = tuple(self._eval(expr, env, bindings) for expr in query.select)
                        rows.append(row)
                        return
                    variable = order[level]
                    for obj in candidates[variable]:
                        env[variable] = obj
                        self.stats.tuples_examined += 1
                        if all(
                            self._truthy(self._eval(c, env, bindings))
                            for c in pushdown[level]
                        ):
                            bind(level + 1)
                    env.pop(variable, None)

                bind(0)
            if query.limit is not None:
                rows = rows[: query.limit]
            join_span.set_attribute("rows", len(rows))
        self.stats.rows_produced = len(rows)
        return rows

    def _aggregate_rows(
        self,
        plan: QueryPlan,
        candidates: Dict[str, List[DBObject]],
        order: List[str],
        pushdown: Dict[int, List[Expr]],
        bindings: Dict[str, Any],
    ) -> List[tuple]:
        """Grouped aggregation: one output row per GROUP BY key."""
        query = plan.query
        groups: Dict[tuple, list] = {}
        group_order: List[tuple] = []
        env: Dict[str, DBObject] = {}

        def bind(level: int) -> None:
            if level == len(order):
                key = tuple(
                    self._eval(expr, env, bindings) for expr in query.group_by
                )
                state = groups.get(key)
                if state is None:
                    state = [self._new_accumulator(item) for item in query.select]
                    groups[key] = state
                    group_order.append(key)
                for item, accumulator in zip(query.select, state):
                    self._accumulate(item, accumulator, env, bindings)
                return
            variable = order[level]
            for obj in candidates[variable]:
                env[variable] = obj
                self.stats.tuples_examined += 1
                if all(
                    self._truthy(self._eval(c, env, bindings)) for c in pushdown[level]
                ):
                    bind(level + 1)
            env.pop(variable, None)

        bind(0)
        return [
            tuple(self._finalize(item, acc) for item, acc in zip(query.select, groups[key]))
            for key in group_order
        ]

    @staticmethod
    def _new_accumulator(item: Expr) -> dict:
        return {"count": 0, "sum": 0.0, "min": None, "max": None, "last": None}

    def _accumulate(
        self, item: Expr, accumulator: dict, env: Dict[str, DBObject], bindings: Dict[str, Any]
    ) -> None:
        from repro.oodb.query.ast import Aggregate

        if not isinstance(item, Aggregate):
            accumulator["last"] = self._eval(item, env, bindings)
            return
        if item.argument is None:  # COUNT(*)
            accumulator["count"] += 1
            return
        value = self._eval(item.argument, env, bindings)
        if value is None:
            return  # NULLs are ignored by aggregates, SQL-style
        accumulator["count"] += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            accumulator["sum"] += value
        if accumulator["min"] is None or value < accumulator["min"]:
            accumulator["min"] = value
        if accumulator["max"] is None or value > accumulator["max"]:
            accumulator["max"] = value

    @staticmethod
    def _finalize(item: Expr, accumulator: dict) -> Any:
        from repro.oodb.query.ast import Aggregate

        if not isinstance(item, Aggregate):
            return accumulator["last"]
        if item.function == "COUNT":
            return accumulator["count"]
        if item.function == "SUM":
            return accumulator["sum"] if accumulator["count"] else None
        if item.function == "AVG":
            return (
                accumulator["sum"] / accumulator["count"] if accumulator["count"] else None
            )
        if item.function == "MIN":
            return accumulator["min"]
        if item.function == "MAX":
            return accumulator["max"]
        raise QueryEvaluationError(f"unknown aggregate {item.function}")  # pragma: no cover

    def _ordered_rows(
        self,
        plan: QueryPlan,
        candidates: Dict[str, List[DBObject]],
        order: List[str],
        pushdown: Dict[int, List[Expr]],
        bindings: Dict[str, Any],
    ) -> List[tuple]:
        """Re-run the join keeping (sort key, row) pairs, then sort."""
        query = plan.query
        keyed: List[Tuple[Any, tuple]] = []
        env: Dict[str, DBObject] = {}

        def bind(level: int) -> None:
            if level == len(order):
                key = self._eval(query.order_by, env, bindings)
                row = tuple(self._eval(expr, env, bindings) for expr in query.select)
                keyed.append((key, row))
                return
            variable = order[level]
            for obj in candidates[variable]:
                env[variable] = obj
                if all(
                    self._truthy(self._eval(c, env, bindings)) for c in pushdown[level]
                ):
                    bind(level + 1)
            env.pop(variable, None)

        bind(0)
        keyed.sort(key=lambda kv: (kv[0] is None, kv[0]), reverse=query.order_desc)
        return [row for _key, row in keyed]

    # -- candidate production ----------------------------------------------------

    def _candidates(self, vplan: VariablePlan, bindings: Dict[str, Any]) -> List[DBObject]:
        restriction: Optional[Set[OID]] = None

        for ip in vplan.index_predicates:
            index = self._find_index(vplan.class_name, ip.attribute)
            if index is None:  # index dropped between planning and execution
                vplan.filters.append(ip.source)
                continue
            self.stats.index_probes += 1
            if ip.op in ("=", "=="):
                oids = index.lookup(ip.constant)
            elif ip.op == ">":
                oids = index.range(low=ip.constant, include_low=False)
            elif ip.op == ">=":
                oids = index.range(low=ip.constant)
            elif ip.op == "<":
                oids = index.range(high=ip.constant, include_high=False)
            elif ip.op == "<=":
                oids = index.range(high=ip.constant)
            else:  # pragma: no cover - classifier excludes != already
                continue
            restriction = oids if restriction is None else restriction & oids

        for rp in vplan.restrictor_predicates:
            restrictor = restrictor_for(rp.method)
            result = None
            if restrictor is not None:
                self.stats.restrictor_calls += 1
                result = restrictor(self._db, rp.args, rp.op, rp.constant)
            if result is None:
                vplan.filters.append(rp.source)
            else:
                restriction = result if restriction is None else restriction & result

        if restriction is None:
            objs = self._db.instances_of(vplan.class_name)
        else:
            extent = {o.oid for o in self._db.instances_of(vplan.class_name)}
            objs = [self._db.get_object(oid) for oid in sorted(restriction & extent)]

        if vplan.filters:
            env: Dict[str, DBObject] = {}
            filtered = []
            for obj in objs:
                env[vplan.variable] = obj
                if all(
                    self._truthy(self._eval(f, env, bindings)) for f in vplan.filters
                ):
                    filtered.append(obj)
            objs = filtered
        return objs

    def _find_index(self, class_name: str, attribute: str):
        ancestry = [c.name for c in self._db.schema.ancestry(class_name)]
        return self._db.indexes.covering(ancestry, attribute)

    # -- expression evaluation ------------------------------------------------------

    def _eval(self, expr: Expr, env: Dict[str, DBObject], bindings: Dict[str, Any]) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Parameter):
            if expr.name not in bindings:
                raise QueryEvaluationError(f"unbound parameter ${expr.name}")
            return bindings[expr.name]
        if isinstance(expr, Variable):
            if expr.name in env:
                return env[expr.name]
            if expr.name in bindings:
                return bindings[expr.name]
            raise QueryEvaluationError(
                f"unknown name {expr.name!r}: not a range variable and not bound"
            )
        if isinstance(expr, AttributeAccess):
            target = self._eval(expr.target, env, bindings)
            if not isinstance(target, DBObject):
                raise QueryEvaluationError(
                    f"attribute access .{expr.attribute} on non-object {target!r}"
                )
            return target.get(expr.attribute)
        if isinstance(expr, MethodCall):
            target = self._eval(expr.target, env, bindings)
            if not isinstance(target, DBObject):
                raise QueryEvaluationError(
                    f"method call ->{expr.method} on non-object {target!r}"
                )
            args = [self._eval(a, env, bindings) for a in expr.args]
            self.stats.method_calls += 1
            return target.send(expr.method, *args)
        if isinstance(expr, Comparison):
            return self._compare(
                expr.op,
                self._eval(expr.left, env, bindings),
                self._eval(expr.right, env, bindings),
            )
        if isinstance(expr, Arithmetic):
            left = self._eval(expr.left, env, bindings)
            right = self._eval(expr.right, env, bindings)
            try:
                if expr.op == "+":
                    return left + right
                if expr.op == "-":
                    return left - right
                if expr.op == "*":
                    return left * right
                if expr.op == "/":
                    return left / right
            except TypeError as exc:
                raise QueryEvaluationError(
                    f"cannot compute {left!r} {expr.op} {right!r}"
                ) from exc
            except ZeroDivisionError as exc:
                raise QueryEvaluationError("division by zero in query") from exc
        if isinstance(expr, BooleanOp):
            if expr.op == "AND":
                return all(
                    self._truthy(self._eval(e, env, bindings)) for e in expr.operands
                )
            return any(self._truthy(self._eval(e, env, bindings)) for e in expr.operands)
        if isinstance(expr, NotOp):
            return not self._truthy(self._eval(expr.operand, env, bindings))
        raise QueryEvaluationError(f"cannot evaluate expression {expr!r}")  # pragma: no cover

    @staticmethod
    def _compare(op: str, left: Any, right: Any) -> bool:
        if op in ("=", "=="):
            return left == right
        if op in ("!=", "<>"):
            return left != right
        if left is None or right is None:
            return False  # SQL-style: ordering against NULL is never true
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError as exc:
            raise QueryEvaluationError(
                f"cannot compare {left!r} {op} {right!r}"
            ) from exc
        raise QueryEvaluationError(f"unknown comparison operator {op!r}")  # pragma: no cover

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)
