"""Query optimizer.

Turns a parsed :class:`~repro.oodb.query.ast.Query` into an executable plan:

1. **Predicate classification** — WHERE conjuncts are grouped by the set of
   range variables they reference.
2. **Index selection** — single-variable conjuncts of the shapes
   ``var.attr OP constant`` and ``var -> getAttributeValue('A') OP constant``
   are answered from an attribute index when one covers the class; equality
   uses hash or B-tree probes, inequalities use B-tree range scans.
3. **Selectivity-ordered nested-loop join** — variables are bound in
   ascending candidate-set order; every conjunct is evaluated at the
   earliest point where all its variables are bound (predicate pushdown).
4. **Method-based semantic hooks** ([AbF95], Section 4.5.4 of the paper) —
   a registry of *restrictor* callbacks lets higher layers (the coupling)
   answer method-call comparisons wholesale; e.g. the coupling registers
   ``getIRSValue`` so that ``p -> getIRSValue(c,'WWW') > 0.6`` is answered
   with one buffered IRS call instead of one method call per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.oodb.query.ast import (
    AttributeAccess,
    Comparison,
    Expr,
    Literal,
    MethodCall,
    Parameter,
    Query,
    Variable,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.oodb.database import Database
    from repro.oodb.oid import OID

#: Signature of a semantic restrictor: given the database, the method-call
#: arguments (already evaluated to constants), the comparison operator and
#: the constant bound, return the set of OIDs satisfying the predicate —
#: or None to decline (then the predicate falls back to per-object filtering).
Restrictor = Callable[["Database", Tuple[Any, ...], str, Any], Optional[Set["OID"]]]

_RESTRICTORS: Dict[str, Restrictor] = {}


def register_restrictor(method_name: str, restrictor: Restrictor) -> None:
    """Register a semantic restrictor for ``method_name`` comparisons."""
    _RESTRICTORS[method_name] = restrictor


def unregister_restrictor(method_name: str) -> None:
    """Remove a previously registered restrictor."""
    _RESTRICTORS.pop(method_name, None)


def restrictor_for(method_name: str) -> Optional[Restrictor]:
    """The registered restrictor for ``method_name``, if any."""
    return _RESTRICTORS.get(method_name)


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "==": "==", "!=": "!=", "<>": "<>"}


def _constant_of(expr: Expr, bindings: Dict[str, Any]) -> Tuple[bool, Any]:
    """(True, value) when ``expr`` is a constant under ``bindings``."""
    if isinstance(expr, Literal):
        return True, expr.value
    if isinstance(expr, Parameter):
        if expr.name in bindings:
            return True, bindings[expr.name]
        return False, None
    if isinstance(expr, Variable) and expr.name in bindings:
        return True, bindings[expr.name]
    return False, None


@dataclass
class IndexablePredicate:
    """A single-variable comparison answerable from an index."""

    variable: str
    attribute: str
    op: str
    constant: Any
    source: Comparison


@dataclass
class RestrictablePredicate:
    """A method-call comparison answerable by a semantic restrictor."""

    variable: str
    method: str
    args: Tuple[Any, ...]
    op: str
    constant: Any
    source: Comparison


@dataclass
class VariablePlan:
    """How one range variable's candidate set is produced."""

    variable: str
    class_name: str
    index_predicates: List[IndexablePredicate] = field(default_factory=list)
    restrictor_predicates: List[RestrictablePredicate] = field(default_factory=list)
    filters: List[Expr] = field(default_factory=list)


@dataclass
class QueryPlan:
    """The complete executable plan."""

    query: Query
    variable_plans: Dict[str, VariablePlan]
    join_conjuncts: List[Expr]
    description: Dict[str, Any] = field(default_factory=dict)


class Optimizer:
    """Builds a :class:`QueryPlan` for a query against a database."""

    def __init__(self, db: "Database") -> None:
        self._db = db

    def plan(self, query: Query, bindings: Dict[str, Any]) -> QueryPlan:
        """Classify predicates and choose access paths."""
        range_vars = {r.variable for r in query.ranges}
        vplans = {
            r.variable: VariablePlan(variable=r.variable, class_name=r.class_name)
            for r in query.ranges
        }
        join_conjuncts: List[Expr] = []

        for conjunct in query.conjuncts:
            used = conjunct.variables() & range_vars
            if len(used) != 1:
                join_conjuncts.append(conjunct)
                continue
            variable = next(iter(used))
            vplan = vplans[variable]
            classified = self._classify_single(conjunct, variable, vplan.class_name, bindings)
            if isinstance(classified, IndexablePredicate):
                vplan.index_predicates.append(classified)
            elif isinstance(classified, RestrictablePredicate):
                vplan.restrictor_predicates.append(classified)
            else:
                vplan.filters.append(conjunct)

        description = {
            "variables": {
                v: {
                    "class": p.class_name,
                    "extent_size": self._extent_size(p.class_name),
                    "index_predicates": [
                        f"{p.class_name}.{ip.attribute} {ip.op} {ip.constant!r}"
                        for ip in p.index_predicates
                    ],
                    "restrictor_predicates": [
                        f"{rp.method}(...) {rp.op} {rp.constant!r}"
                        for rp in p.restrictor_predicates
                    ],
                    "residual_filters": len(p.filters),
                    "access_path": (
                        "index probe"
                        if p.index_predicates
                        else "semantic restrictor"
                        if p.restrictor_predicates
                        else "extent scan"
                    ),
                }
                for v, p in vplans.items()
            },
            "join_conjuncts": len(join_conjuncts),
            "estimated_cross_product": self._cross_product_estimate(vplans),
        }
        return QueryPlan(
            query=query,
            variable_plans=vplans,
            join_conjuncts=join_conjuncts,
            description=description,
        )

    # -- classification ------------------------------------------------------

    def _classify_single(
        self, conjunct: Expr, variable: str, class_name: str, bindings: Dict[str, Any]
    ):
        if not isinstance(conjunct, Comparison):
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        is_const, const = _constant_of(right, bindings)
        if not is_const:
            is_const, const = _constant_of(left, bindings)
            if not is_const:
                return None
            left, right, op = right, left, _FLIP[op]
        # Now: ``left OP const`` with ``left`` referencing exactly `variable`.

        attribute = self._attribute_of(left, variable)
        if attribute is not None and op != "!=" and op != "<>":
            index = self._find_index(class_name, attribute)
            if index is not None and (op in ("=", "==") or index.supports_range()):
                return IndexablePredicate(variable, attribute, op, const, conjunct)

        if isinstance(left, MethodCall) and isinstance(left.target, Variable):
            restrictor = restrictor_for(left.method)
            if restrictor is not None:
                arg_values = []
                for arg in left.args:
                    ok, value = _constant_of(arg, bindings)
                    if not ok:
                        return None
                    arg_values.append(value)
                return RestrictablePredicate(
                    variable, left.method, tuple(arg_values), op, const, conjunct
                )
        return None

    @staticmethod
    def _attribute_of(expr: Expr, variable: str) -> Optional[str]:
        """Extract the attribute name when ``expr`` is ``var.attr`` or
        ``var -> getAttributeValue('attr')``."""
        if isinstance(expr, AttributeAccess) and isinstance(expr.target, Variable):
            if expr.target.name == variable:
                return expr.attribute
        if (
            isinstance(expr, MethodCall)
            and isinstance(expr.target, Variable)
            and expr.target.name == variable
            and expr.method == "getAttributeValue"
            and len(expr.args) == 1
            and isinstance(expr.args[0], Literal)
        ):
            return str(expr.args[0].value)
        return None

    def _find_index(self, class_name: str, attribute: str):
        ancestry = [c.name for c in self._db.schema.ancestry(class_name)]
        return self._db.indexes.covering(ancestry, attribute)

    def _extent_size(self, class_name: str) -> int:
        try:
            return len(self._db.instances_of(class_name))
        except Exception:  # unknown class surfaces at execution time instead
            return 0

    def _cross_product_estimate(self, vplans: Dict[str, VariablePlan]) -> int:
        """Upper bound on tuples examined (no predicate applied)."""
        estimate = 1
        for vplan in vplans.values():
            estimate *= max(1, self._extent_size(vplan.class_name))
        return estimate
