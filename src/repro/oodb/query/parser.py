"""Recursive-descent parser for the query language.

Grammar (EBNF)::

    query       = "ACCESS" select_list "FROM" range_list
                  [ "WHERE" or_expr ]
                  [ "ORDER" "BY" add_expr [ "ASC" | "DESC" ] ]
                  [ "LIMIT" NUMBER ] [ ";" ]
    select_list = add_expr { "," add_expr }
    range_list  = IDENT "IN" IDENT { "," IDENT "IN" IDENT }
    or_expr     = and_expr { "OR" and_expr }
    and_expr    = not_expr { "AND" not_expr }
    not_expr    = "NOT" not_expr | comparison
    comparison  = add_expr [ ("="|"=="|"!="|"<>"|"<"|"<="|">"|">=") add_expr ]
    add_expr    = mul_expr { ("+"|"-") mul_expr }
    mul_expr    = postfix { ("*"|"/") postfix }
    postfix     = primary { "->" IDENT "(" [ args ] ")" | "." IDENT }
    primary     = literal | PARAM | IDENT | "(" or_expr ")"
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import QuerySyntaxError
from repro.oodb.query.ast import (
    AGGREGATE_FUNCTIONS,
    Aggregate,
    Arithmetic,
    AttributeAccess,
    BooleanOp,
    Comparison,
    Expr,
    Literal,
    MethodCall,
    NotOp,
    Parameter,
    Query,
    RangeDecl,
    Variable,
)
from repro.oodb.query.lexer import Token, tokenize

_COMPARISON_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}


def parse_query(text: str) -> Query:
    """Parse ``text`` into a :class:`Query` AST."""
    return _Parser(tokenize(text)).parse()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._current
        return token.kind == kind and (text is None or token.text == text)

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._accept(kind, text)
        if token is None:
            want = text or kind
            got = self._current
            raise QuerySyntaxError(
                f"expected {want} at position {got.position}, found {got.text or 'end of query'!r}"
            )
        return token

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Query:
        self._expect("KEYWORD", "ACCESS")
        select = [self._select_item()]
        while self._accept("OP", ","):
            select.append(self._select_item())

        self._expect("KEYWORD", "FROM")
        ranges = [self._range_decl()]
        while self._accept("OP", ","):
            ranges.append(self._range_decl())

        where = None
        if self._accept("KEYWORD", "WHERE"):
            where = self._or_expr()

        group_by: List[Expr] = []
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_by.append(self._add_expr())
            while self._accept("OP", ","):
                group_by.append(self._add_expr())

        order_by = None
        order_desc = False
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY")
            order_by = self._add_expr()
            if self._accept("KEYWORD", "DESC"):
                order_desc = True
            else:
                self._accept("KEYWORD", "ASC")

        limit = None
        if self._accept("KEYWORD", "LIMIT"):
            token = self._expect("NUMBER")
            limit = int(float(token.text))

        self._accept("OP", ";")
        self._expect("EOF")

        query = Query(select=select, ranges=ranges, where=where,
                      group_by=group_by,
                      order_by=order_by, order_desc=order_desc, limit=limit)
        if query.is_aggregate and order_by is not None:
            raise QuerySyntaxError(
                "ORDER BY is not supported together with aggregate functions"
            )
        if group_by and not query.is_aggregate:
            raise QuerySyntaxError("GROUP BY requires an aggregate in ACCESS")
        declared = [r.variable for r in query.ranges]
        if len(set(declared)) != len(declared):
            raise QuerySyntaxError("duplicate variable in FROM clause")
        # Identifiers that are not range variables stay free: they are
        # resolved from the bindings supplied at execution time (the paper's
        # queries reference application names such as ``collPara`` this way).
        return query

    def _select_item(self) -> Expr:
        token = self._current
        if token.kind == "KEYWORD" and token.text in AGGREGATE_FUNCTIONS:
            self._advance()
            self._expect("OP", "(")
            if token.text == "COUNT" and self._accept("OP", "*"):
                self._expect("OP", ")")
                return Aggregate("COUNT", None)
            argument = self._add_expr()
            self._expect("OP", ")")
            return Aggregate(token.text, argument)
        return self._add_expr()

    def _range_decl(self) -> RangeDecl:
        var = self._expect("IDENT").text
        self._expect("KEYWORD", "IN")
        class_name = self._expect("IDENT").text
        return RangeDecl(variable=var, class_name=class_name)

    def _or_expr(self) -> Expr:
        operands = [self._and_expr()]
        while self._accept("KEYWORD", "OR"):
            operands.append(self._and_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("OR", tuple(operands))

    def _and_expr(self) -> Expr:
        operands = [self._not_expr()]
        while self._accept("KEYWORD", "AND"):
            operands.append(self._not_expr())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("AND", tuple(operands))

    def _not_expr(self) -> Expr:
        if self._accept("KEYWORD", "NOT"):
            return NotOp(self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._add_expr()
        token = self._current
        if token.kind == "OP" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._add_expr()
            return Comparison(op=token.text, left=left, right=right)
        return left

    def _add_expr(self) -> Expr:
        left = self._mul_expr()
        while self._current.kind == "OP" and self._current.text in ("+", "-"):
            op = self._advance().text
            left = Arithmetic(op, left, self._mul_expr())
        return left

    def _mul_expr(self) -> Expr:
        left = self._postfix()
        while self._current.kind == "OP" and self._current.text in ("*", "/"):
            op = self._advance().text
            left = Arithmetic(op, left, self._postfix())
        return left

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            if self._accept("OP", "->"):
                method = self._expect("IDENT").text
                self._expect("OP", "(")
                args: List[Expr] = []
                if not self._check("OP", ")"):
                    args.append(self._or_expr())
                    while self._accept("OP", ","):
                        args.append(self._or_expr())
                self._expect("OP", ")")
                expr = MethodCall(target=expr, method=method, args=tuple(args))
            elif self._accept("OP", "."):
                attr = self._expect("IDENT").text
                expr = AttributeAccess(target=expr, attribute=attr)
            else:
                return expr

    def _primary(self) -> Expr:
        token = self._current
        if token.kind == "STRING":
            self._advance()
            return Literal(token.text)
        if token.kind == "NUMBER":
            self._advance()
            text = token.text
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "PARAM":
            self._advance()
            return Parameter(token.text)
        if token.kind == "KEYWORD" and token.text in ("TRUE", "FALSE"):
            self._advance()
            return Literal(token.text == "TRUE")
        if token.kind == "KEYWORD" and token.text == "NULL":
            self._advance()
            return Literal(None)
        if token.kind == "IDENT":
            self._advance()
            return Variable(token.text)
        if self._accept("OP", "("):
            expr = self._or_expr()
            self._expect("OP", ")")
            return expr
        raise QuerySyntaxError(
            f"unexpected token {token.text!r} at position {token.position}"
        )
