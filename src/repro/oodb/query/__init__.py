"""The VQL-like declarative query language of the OODBMS.

The syntax follows the VODAK examples printed in the paper (Section 4.4):

.. code-block:: text

    ACCESS p, p -> length() FROM p IN PARA
    WHERE p -> getIRSValue(collPara, 'WWW') > 0.6;

``ACCESS`` projects expressions, ``FROM var IN Class`` ranges a variable
over a class extent (subclasses included), and ``WHERE`` filters with
boolean combinations of comparisons.  ``obj -> method(args)`` invokes a
database method; ``obj.attr`` reads an attribute; ``$name`` references a
parameter binding supplied at execution time.  ``ORDER BY`` and ``LIMIT``
are small extensions used by the examples.
"""

from repro.oodb.query.parser import parse_query
from repro.oodb.query.evaluator import QueryEvaluator

__all__ = ["parse_query", "QueryEvaluator"]
