"""Tokenizer for the query language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import QuerySyntaxError

KEYWORDS = {
    "ACCESS",
    "FROM",
    "WHERE",
    "IN",
    "AND",
    "OR",
    "NOT",
    "TRUE",
    "FALSE",
    "NULL",
    "ORDER",
    "GROUP",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
}

#: Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = ["->", "==", "!=", "<>", "<=", ">=", "=", "<", ">", "(", ")", ",", ".", ";", "+", "-", "*", "/"]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str  # KEYWORD, IDENT, PARAM, STRING, NUMBER, OP, EOF
    text: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.position})"


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`QuerySyntaxError` on bad input."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        # string literal, single or double quoted
        if ch in ("'", '"'):
            quote = ch
            j = i + 1
            chars: List[str] = []
            while j < n:
                if text[j] == quote:
                    if j + 1 < n and text[j + 1] == quote:  # doubled quote escape
                        chars.append(quote)
                        j += 2
                        continue
                    break
                chars.append(text[j])
                j += 1
            else:
                raise QuerySyntaxError(f"unterminated string literal at position {i}")
            yield Token("STRING", "".join(chars), i)
            i = j + 1
            continue
        # number
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is the member-access dot.
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token("NUMBER", text[i:j], i)
            i = j
            continue
        # parameter
        if ch == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise QuerySyntaxError(f"empty parameter name at position {i}")
            yield Token("PARAM", text[i + 1 : j], i)
            i = j
            continue
        # identifier / keyword
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "KEYWORD" if word.upper() in KEYWORDS else "IDENT"
            yield Token(kind, word.upper() if kind == "KEYWORD" else word, i)
            i = j
            continue
        # operators
        for op in _OPERATORS:
            if text.startswith(op, i):
                yield Token("OP", op, i)
                i += len(op)
                break
        else:
            raise QuerySyntaxError(f"unexpected character {ch!r} at position {i}")
    yield Token("EOF", "", n)
