"""Abstract syntax tree of the query language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Set, Tuple


class Expr:
    """Base class of all expression nodes."""

    def variables(self) -> Set[str]:
        """The query variables this expression references."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: string, number, boolean or NULL."""

    value: Any

    def variables(self) -> Set[str]:
        return set()


@dataclass(frozen=True)
class Parameter(Expr):
    """A ``$name`` placeholder bound at execution time."""

    name: str

    def variables(self) -> Set[str]:
        return set()


@dataclass(frozen=True)
class Variable(Expr):
    """A query variable introduced in the FROM clause."""

    name: str

    def variables(self) -> Set[str]:
        return {self.name}


@dataclass(frozen=True)
class AttributeAccess(Expr):
    """``target.attr`` — read a database attribute."""

    target: Expr
    attribute: str

    def variables(self) -> Set[str]:
        return self.target.variables()


@dataclass(frozen=True)
class MethodCall(Expr):
    """``target -> method(args)`` — invoke a database method."""

    target: Expr
    method: str
    args: Tuple[Expr, ...] = ()

    def variables(self) -> Set[str]:
        result = set(self.target.variables())
        for arg in self.args:
            result |= arg.variables()
        return result


@dataclass(frozen=True)
class Comparison(Expr):
    """``left OP right`` for OP in = == != <> < <= > >=."""

    op: str
    left: Expr
    right: Expr

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class Arithmetic(Expr):
    """``left OP right`` for OP in + - * /."""

    op: str
    left: Expr
    right: Expr

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()


@dataclass(frozen=True)
class BooleanOp(Expr):
    """N-ary AND/OR."""

    op: str  # "AND" | "OR"
    operands: Tuple[Expr, ...]

    def variables(self) -> Set[str]:
        result: Set[str] = set()
        for operand in self.operands:
            result |= operand.variables()
        return result


@dataclass(frozen=True)
class NotOp(Expr):
    """Logical negation."""

    operand: Expr

    def variables(self) -> Set[str]:
        return self.operand.variables()


AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


@dataclass(frozen=True)
class Aggregate(Expr):
    """``COUNT(*)``, ``COUNT(expr)``, ``SUM/AVG/MIN/MAX(expr)``."""

    function: str
    argument: Optional[Expr] = None  # None only for COUNT(*)

    def variables(self) -> Set[str]:
        if self.argument is None:
            return set()
        return self.argument.variables()


@dataclass(frozen=True)
class RangeDecl:
    """One ``var IN ClassName`` clause."""

    variable: str
    class_name: str


@dataclass
class Query:
    """A parsed ``ACCESS ... FROM ... WHERE ...`` query."""

    select: List[Expr]
    ranges: List[RangeDecl]
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    order_by: Optional[Expr] = None
    order_desc: bool = False
    limit: Optional[int] = None
    conjuncts: List[Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.conjuncts = flatten_conjunction(self.where) if self.where is not None else []

    @property
    def is_aggregate(self) -> bool:
        """True when any select item is an aggregate function."""
        return any(isinstance(item, Aggregate) for item in self.select)


def flatten_conjunction(expr: Expr) -> List[Expr]:
    """Split a WHERE tree into top-level AND conjuncts (for the optimizer)."""
    if isinstance(expr, BooleanOp) and expr.op == "AND":
        result: List[Expr] = []
        for operand in expr.operands:
            result.extend(flatten_conjunction(operand))
        return result
    return [expr]
