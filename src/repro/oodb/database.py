"""The OODBMS facade.

:class:`Database` wires schema, object store, WAL, lock manager, index
catalog and query processor into the single entry point applications use.
It supports two persistence modes:

* **ephemeral** (``Database()``) — everything in memory, WAL in memory too;
  used by tests and short-lived experiments;
* **durable** (``Database(directory=...)``) — snapshot + WAL files in a
  directory; :meth:`checkpoint` writes a snapshot and truncates the log, and
  re-opening the directory recovers committed state.

Concurrency: operations inside an explicit transaction take strict-2PL
locks; autocommitted single operations bypass the lock manager (the
single-writer fast path used by the benchmarks).
"""

from __future__ import annotations

import logging
import os
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro import obs
from repro.errors import SchemaError, TransactionError
from repro.oodb import wal as wal_records
from repro.oodb.indexes import AttributeIndex, IndexCatalog
from repro.oodb.locks import LockManager, LockMode
from repro.oodb.objects import DBObject
from repro.oodb.oid import OID, OIDAllocator
from repro.oodb.schema import ClassDefinition, Schema
from repro.oodb.store import ObjectStore, _StoredObject, decode_value, encode_value
from repro.oodb.transactions import Transaction
from repro.oodb.wal import WriteAheadLog

logger = logging.getLogger(__name__)

_SNAPSHOT_FILE = "snapshot.json"
_WAL_FILE = "wal.log"


class Database:
    """An object database with transactions, indexes, and a query language."""

    def __init__(self, directory: Optional[str] = None, lock_timeout: float = 5.0) -> None:
        self.schema = Schema()
        self._store = ObjectStore()
        self._allocator = OIDAllocator()
        self._locks = LockManager(timeout=lock_timeout)
        self.indexes = IndexCatalog()
        self._directory = directory
        self._local = threading.local()
        self._closed = False

        if directory is None:
            self._wal = WriteAheadLog()
        else:
            os.makedirs(directory, exist_ok=True)
            snapshot_path = os.path.join(directory, _SNAPSHOT_FILE)
            if os.path.exists(snapshot_path):
                info = self._store.load_snapshot(snapshot_path)
                self._allocator.advance_to(info.oid_high_water)
                self._restore_schema(info.schema_payload)
            self._wal = WriteAheadLog(os.path.join(directory, _WAL_FILE))
            self._replay_wal()
            self._rebuild_indexes()

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start an explicit transaction bound to the calling thread."""
        if self._current_txn() is not None:
            raise TransactionError("a transaction is already active on this thread")
        txn = Transaction(self)
        self._wal.append(wal_records.BEGIN, txn.txn_id)
        self._local.txn = txn
        obs.metrics().counter("oodb.txn.begins").inc()
        return txn

    def _current_txn(self) -> Optional[Transaction]:
        txn = getattr(self._local, "txn", None)
        if txn is not None and not txn.is_active:
            self._local.txn = None
            return None
        return txn

    def _finish_transaction(self, txn: Transaction, committed: bool) -> None:
        """Called by Transaction.commit/rollback."""
        kind = wal_records.COMMIT if committed else wal_records.ABORT
        self._wal.append(kind, txn.txn_id)
        self._locks.release_all(txn.txn_id)
        if getattr(self._local, "txn", None) is txn:
            self._local.txn = None
        obs.metrics().counter(
            "oodb.txn.commits" if committed else "oodb.txn.aborts"
        ).inc()

    def in_transaction(self) -> bool:
        """True when an explicit transaction is active on this thread."""
        return self._current_txn() is not None

    def lock_exclusive(self, oid: OID) -> None:
        """X-lock ``oid`` under the current transaction without writing it.

        Used by update propagation to claim the collection object *before*
        touching the IRS engine, so a deadlock/timeout abort can only happen
        while the engine is still untouched.  No-op outside a transaction
        (autocommit operations lock per-statement anyway).
        """
        txn = self._current_txn()
        if txn is not None:
            self._locks.acquire(txn.txn_id, oid, LockMode.EXCLUSIVE)

    @property
    def lock_manager(self) -> LockManager:
        """The lock manager (conflict-listener hooks for the service layer)."""
        return self._locks

    # ------------------------------------------------------------------
    # Object lifecycle
    # ------------------------------------------------------------------

    def create_object(self, class_name: str, **attributes: Any) -> DBObject:
        """Create an instance of ``class_name``; keyword args set attributes."""
        self.schema.get_class(class_name)  # validates existence
        oid = self._allocator.allocate()
        txn = self._current_txn()
        if txn is not None:
            self._locks.acquire(txn.txn_id, oid, LockMode.EXCLUSIVE)
            txn.record_undo(self._undo_create, oid)
            self._wal.append(
                wal_records.CREATE, txn.txn_id, {"oid": oid.value, "class": class_name}
            )
            self._store.create(oid, class_name)
        else:
            implicit = Transaction(self)
            self._wal.append(wal_records.BEGIN, implicit.txn_id)
            self._wal.append(
                wal_records.CREATE, implicit.txn_id, {"oid": oid.value, "class": class_name}
            )
            self._store.create(oid, class_name)
            self._wal.append(wal_records.COMMIT, implicit.txn_id)
        obj = DBObject(self, oid, class_name)
        for attr, value in attributes.items():
            obj.set(attr, value)
        return obj

    def _undo_create(self, oid: OID) -> None:
        if self._store.exists(oid):
            stored = self._store.delete(oid)
            self._unindex_object(oid, stored.class_name, stored.attributes)

    def delete_object(self, obj_or_oid: Any) -> None:
        """Delete an object; its attribute values are unindexed."""
        oid = obj_or_oid.oid if isinstance(obj_or_oid, DBObject) else obj_or_oid
        txn = self._current_txn()
        class_name = self._store.class_of(oid)
        attributes = self._store.read_all(oid)
        if txn is not None:
            self._locks.acquire(txn.txn_id, oid, LockMode.EXCLUSIVE)
            stored = self._store.delete(oid)
            txn.record_undo(self._undo_delete, oid, stored)
            self._wal.append(wal_records.DELETE, txn.txn_id, {"oid": oid.value})
        else:
            implicit = Transaction(self)
            self._wal.append(wal_records.BEGIN, implicit.txn_id)
            self._store.delete(oid)
            self._wal.append(wal_records.DELETE, implicit.txn_id, {"oid": oid.value})
            self._wal.append(wal_records.COMMIT, implicit.txn_id)
        self._unindex_object(oid, class_name, attributes)

    def _undo_delete(self, oid: OID, stored: _StoredObject) -> None:
        self._store.restore(oid, stored)
        self._index_object(oid, stored.class_name, stored.attributes)

    def get_object(self, oid: OID) -> DBObject:
        """A handle on the object with ``oid`` (must exist)."""
        return DBObject(self, oid, self._store.class_of(oid))

    def object_exists(self, oid: OID) -> bool:
        """True when ``oid`` denotes a live object."""
        return self._store.exists(oid)

    def object_count(self) -> int:
        """Number of live objects."""
        return len(self._store)

    # ------------------------------------------------------------------
    # Attribute access
    # ------------------------------------------------------------------

    def read_attribute(self, oid: OID, attr: str) -> Any:
        """Read ``attr`` of the object, falling back to the schema default."""
        class_name = self._store.class_of(oid)
        txn = self._current_txn()
        if txn is not None:
            self._locks.acquire(txn.txn_id, oid, LockMode.SHARED)
        if self._store.has_written(oid, attr):
            return self._store.read(oid, attr)
        if self.schema.has_attribute(class_name, attr):
            return self.schema.resolve_attribute(class_name, attr).default
        return self._store.read(oid, attr)  # undeclared attrs read as None

    def write_attribute(self, oid: OID, attr: str, value: Any) -> None:
        """Write ``attr``; type-checked when declared, logged, index-maintained."""
        class_name = self._store.class_of(oid)
        if self.schema.has_attribute(class_name, attr):
            adef = self.schema.resolve_attribute(class_name, attr)
            if not adef.check(value):
                raise SchemaError(
                    f"value {value!r} does not match type {adef.type_name} of "
                    f"{class_name}.{attr}"
                )
        old_value = self._store.read(oid, attr)
        txn = self._current_txn()
        if txn is not None:
            self._locks.acquire(txn.txn_id, oid, LockMode.EXCLUSIVE)
            previous = self._store.write(oid, attr, value)
            txn.record_undo(self._undo_write, oid, attr, previous, old_value)
            self._wal.append(
                wal_records.WRITE,
                txn.txn_id,
                {"oid": oid.value, "attr": attr, "value": encode_value(value)},
            )
        else:
            implicit = Transaction(self)
            self._wal.append(wal_records.BEGIN, implicit.txn_id)
            self._store.write(oid, attr, value)
            self._wal.append(
                wal_records.WRITE,
                implicit.txn_id,
                {"oid": oid.value, "attr": attr, "value": encode_value(value)},
            )
            self._wal.append(wal_records.COMMIT, implicit.txn_id)
        self._reindex_attribute(oid, class_name, attr, old_value, value)

    def _undo_write(self, oid: OID, attr: str, previous: Any, old_value: Any) -> None:
        if not self._store.exists(oid):
            return  # creation was already undone
        new_value = self._store.read(oid, attr)
        self._store.unwrite(oid, attr, previous)
        class_name = self._store.class_of(oid)
        self._reindex_attribute(oid, class_name, attr, new_value, old_value)

    def read_attributes(self, oid: OID) -> Dict[str, Any]:
        """All attributes of the object, defaults filled in."""
        class_name = self._store.class_of(oid)
        values = {
            name: adef.default for name, adef in self.schema.all_attributes(class_name).items()
        }
        values.update(self._store.read_all(oid))
        return values

    # ------------------------------------------------------------------
    # Extents and scans
    # ------------------------------------------------------------------

    def instances_of(self, class_name: str, include_subclasses: bool = True) -> List[DBObject]:
        """All live instances of ``class_name`` (plus subclasses by default)."""
        class_names = (
            self.schema.subclasses(class_name) if include_subclasses else [class_name]
        )
        objects: List[DBObject] = []
        for cname in class_names:
            for oid in sorted(self._store.extent(cname)):
                objects.append(DBObject(self, oid, cname))
        return objects

    def iter_objects(self) -> Iterator[DBObject]:
        """Iterate over every live object."""
        for oid in self._store.all_oids():
            yield DBObject(self, oid, self._store.class_of(oid))

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, class_name: str, attribute: str, kind: str = "btree") -> AttributeIndex:
        """Create an index over ``class_name`` (incl. subclasses) and backfill it."""
        index = self.indexes.create(class_name, attribute, kind)
        for obj in self.instances_of(class_name):
            value = self._store.read(obj.oid, attribute)
            if value is not None:
                index.insert(value, obj.oid)
        return index

    def _indexes_covering(self, class_name: str, attr: str) -> List[AttributeIndex]:
        """Indexes whose class is ``class_name`` or an ancestor of it."""
        return [
            index
            for cdef in self.schema.ancestry(class_name)
            for index in [self.indexes.find(cdef.name, attr)]
            if index is not None
        ]

    def _reindex_attribute(
        self, oid: OID, class_name: str, attr: str, old_value: Any, new_value: Any
    ) -> None:
        for index in self._indexes_covering(class_name, attr):
            if old_value is not None:
                index.remove(old_value, oid)
            if new_value is not None:
                index.insert(new_value, oid)

    def _index_object(self, oid: OID, class_name: str, attributes: Dict[str, Any]) -> None:
        for attr, value in attributes.items():
            for index in self._indexes_covering(class_name, attr):
                index.insert(value, oid)

    def _unindex_object(self, oid: OID, class_name: str, attributes: Dict[str, Any]) -> None:
        for attr, value in attributes.items():
            for index in self._indexes_covering(class_name, attr):
                index.remove(value, oid)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def query(self, text: str, bindings: Optional[Dict[str, Any]] = None) -> List[tuple]:
        """Run an ``ACCESS ... FROM ... WHERE ...`` query; returns result rows.

        ``bindings`` supplies values for ``$name`` parameters in the query.
        """
        from repro.oodb.query.evaluator import QueryEvaluator

        return QueryEvaluator(self).run(text, bindings or {})

    def explain(self, text: str, bindings: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Return the optimizer's plan description without executing."""
        from repro.oodb.query.evaluator import QueryEvaluator

        return QueryEvaluator(self).explain(text, bindings or {})

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a snapshot and truncate the WAL (durable mode only)."""
        if self._directory is None:
            return
        started = time.perf_counter()
        with obs.tracer().span("oodb.checkpoint", objects=len(self._store)):
            snapshot_path = os.path.join(self._directory, _SNAPSHOT_FILE)
            self._store.snapshot(
                snapshot_path, self._allocator.high_water_mark, self._schema_payload()
            )
            self._wal.append(wal_records.CHECKPOINT, 0)
            self._wal.truncate()
        elapsed = time.perf_counter() - started
        registry = obs.metrics()
        registry.counter("oodb.checkpoints").inc()
        registry.histogram("oodb.checkpoint.seconds").observe(elapsed)
        logger.info(
            "checkpoint of %s: %d objects in %.1f ms",
            self._directory,
            len(self._store),
            elapsed * 1000.0,
        )

    def _schema_payload(self) -> List[Dict[str, Any]]:
        """Class structure + index catalog for the snapshot.

        Method implementations are code and are not persisted; indexes are
        recorded structurally and rebuilt (backfilled) at recovery.
        """
        payload = [
            {
                "name": cdef.name,
                "superclass": cdef.superclass,
                "attributes": {a.name: a.type_name for a in cdef.attributes.values()},
            }
            for cdef in (self.schema.get_class(n) for n in self.schema.class_names())
        ]
        payload.append(
            {
                "__indexes__": [
                    {
                        "class": index.class_name,
                        "attribute": index.attribute,
                        "kind": index.kind,
                    }
                    for index in self.indexes.all_indexes()
                ]
            }
        )
        return payload

    def _restore_schema(self, payload: List[Dict[str, Any]]) -> None:
        """Re-create classes and remember index definitions for rebuild."""
        self._pending_index_rebuild: List[Dict[str, str]] = []
        for entry in payload:
            if "__indexes__" in entry:
                self._pending_index_rebuild = list(entry["__indexes__"])
                continue
            if not self.schema.has_class(entry["name"]):
                self.schema.define_class(
                    entry["name"], entry.get("superclass"), entry.get("attributes") or {}
                )

    def _rebuild_indexes(self) -> None:
        """Re-create and backfill indexes recorded in the snapshot.

        Runs after WAL replay so the backfill sees the fully recovered
        object table.
        """
        for entry in getattr(self, "_pending_index_rebuild", []):
            if self.schema.has_class(entry["class"]):
                self.create_index(entry["class"], entry["attribute"], entry["kind"])
        self._pending_index_rebuild = []

    def close(self) -> None:
        """Checkpoint (when durable) and release file handles."""
        if self._closed:
            return
        self.checkpoint()
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _replay_schema(self, payload: Dict[str, Any]) -> None:
        """Redo one SCHEMA record; tolerates classes already in the snapshot."""
        if payload["op"] == "class":
            if not self.schema.has_class(payload["name"]):
                self.schema.define_class(
                    payload["name"],
                    payload.get("superclass"),
                    payload.get("attributes") or {},
                )
        elif payload["op"] == "attribute":
            if self.schema.has_class(payload["class"]):
                cdef = self.schema.get_class(payload["class"])
                if payload["attr"] not in cdef.attributes:
                    cdef.add_attribute(
                        payload["attr"], payload["type"], payload.get("default")
                    )

    def _replay_wal(self) -> None:
        """Redo committed WAL records on top of the loaded snapshot."""
        started = time.perf_counter()
        replayed = 0
        with obs.tracer().span("oodb.recovery", wal_records=len(self._wal)) as span:
            committed = self._wal.committed_transactions()
            max_oid = 0
            for record in self._wal.records():
                if record.txn_id not in committed:
                    continue
                payload = record.payload
                if record.kind == wal_records.CREATE:
                    oid = OID(payload["oid"])
                    max_oid = max(max_oid, oid.value)
                    if not self._store.exists(oid):
                        self._store.create(oid, payload["class"])
                    replayed += 1
                elif record.kind == wal_records.WRITE:
                    oid = OID(payload["oid"])
                    if self._store.exists(oid):
                        self._store.write(oid, payload["attr"], decode_value(payload["value"]))
                    replayed += 1
                elif record.kind == wal_records.DELETE:
                    oid = OID(payload["oid"])
                    if self._store.exists(oid):
                        self._store.delete(oid)
                    replayed += 1
                elif record.kind == wal_records.SCHEMA:
                    self._replay_schema(payload)
                    replayed += 1
            self._allocator.advance_to(max_oid + 1)
            span.set_attribute("records_replayed", replayed)
        elapsed = time.perf_counter() - started
        registry = obs.metrics()
        registry.counter("oodb.recovery.runs").inc()
        registry.counter("oodb.recovery.records_replayed").inc(replayed)
        registry.gauge("oodb.recovery.last_seconds").set(elapsed)
        registry.gauge("oodb.recovery.last_records").set(replayed)
        if replayed:
            logger.info(
                "recovered %s: replayed %d committed WAL records in %.1f ms",
                self._directory,
                replayed,
                elapsed * 1000.0,
            )

    # ------------------------------------------------------------------
    # Schema convenience
    # ------------------------------------------------------------------

    def define_class(
        self,
        name: str,
        superclass: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
        methods: Optional[Dict[str, Callable[..., Any]]] = None,
    ) -> ClassDefinition:
        """Define a class, optionally with attributes and methods in one call.

        The structural part of the definition (name, superclass, attribute
        names and types) is WAL-logged so a crash before the next snapshot
        does not lose the schema the logged objects depend on.  Method
        implementations are code and are never persisted.
        """
        cdef = self.schema.define_class(name, superclass, attributes)
        self._log_schema(
            {
                "op": "class",
                "name": name,
                "superclass": superclass,
                "attributes": dict(attributes or {}),
            }
        )
        for mname, impl in (methods or {}).items():
            cdef.add_method(mname, impl)
        return cdef

    def add_class_attribute(
        self, class_name: str, attr: str, type_name: str, default: Any = None
    ) -> None:
        """Add an attribute to an existing class, WAL-logged like DDL."""
        cdef = self.schema.get_class(class_name)
        if attr in cdef.attributes:
            return
        cdef.add_attribute(attr, type_name, default)
        self._log_schema(
            {
                "op": "attribute",
                "class": class_name,
                "attr": attr,
                "type": type_name,
                "default": default,
            }
        )

    def _log_schema(self, payload: Dict[str, Any]) -> None:
        """Append a committed SCHEMA record (DDL auto-commits)."""
        txn = self._current_txn()
        if txn is not None:
            self._wal.append(wal_records.SCHEMA, txn.txn_id, payload)
        else:
            implicit = Transaction(self)
            self._wal.append(wal_records.BEGIN, implicit.txn_id)
            self._wal.append(wal_records.SCHEMA, implicit.txn_id, payload)
            self._wal.append(wal_records.COMMIT, implicit.txn_id)
