"""Write-ahead log.

Durability and atomicity are implemented with a classic redo-only WAL: every
object mutation is appended to the log *before* it is applied to the
in-memory store, commit appends a COMMIT record and fsyncs, and recovery
replays the log, applying only mutations of committed transactions.
Checkpoints snapshot the whole store and truncate the log.

Records are newline-delimited JSON so the log is inspectable with standard
tools — adequate for a reproduction and analogous in structure to the page
logs of production systems.
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro import obs
from repro.errors import RecoveryError

logger = logging.getLogger(__name__)

#: Log record kinds.
BEGIN = "BEGIN"
WRITE = "WRITE"          # attribute write: oid, attr, value
CREATE = "CREATE"        # object creation: oid, class_name
DELETE = "DELETE"        # object deletion: oid
SCHEMA = "SCHEMA"        # schema DDL: class definition or attribute addition
COMMIT = "COMMIT"
ABORT = "ABORT"
CHECKPOINT = "CHECKPOINT"

_RECORD_KINDS = {BEGIN, WRITE, CREATE, DELETE, SCHEMA, COMMIT, ABORT, CHECKPOINT}


@dataclass(frozen=True)
class LogRecord:
    """One WAL record."""

    lsn: int
    kind: str
    txn_id: int
    payload: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {"lsn": self.lsn, "kind": self.kind, "txn": self.txn_id, "payload": self.payload},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        try:
            raw = json.loads(line)
            kind = raw["kind"]
            if kind not in _RECORD_KINDS:
                raise ValueError(f"unknown record kind {kind!r}")
            return cls(lsn=raw["lsn"], kind=kind, txn_id=raw["txn"], payload=raw["payload"])
        except (ValueError, KeyError, TypeError) as exc:
            raise RecoveryError(f"corrupt WAL record: {line!r}") from exc


class WriteAheadLog:
    """Append-only log file with LSN assignment and replay support.

    ``path=None`` yields an in-memory log (used by ephemeral databases and by
    unit tests); the interface is identical.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self._path = path
        self._records: List[LogRecord] = []
        self._next_lsn = 1
        self._file = None
        if path is not None:
            existing = self._read_existing(path)
            self._records = existing
            self._next_lsn = (existing[-1].lsn + 1) if existing else 1
            self._file = open(path, "a", encoding="utf-8")

    @staticmethod
    def _read_existing(path: str) -> List[LogRecord]:
        """Read records from disk, tolerating a torn final record.

        A crash while appending can leave a truncated last line; that tail
        is discarded (its transaction never committed — the COMMIT record is
        always flushed).  Corruption anywhere *before* the tail is a real
        integrity problem and raises :class:`RecoveryError`.
        """
        if not os.path.exists(path):
            return []
        with open(path, "r", encoding="utf-8") as fh:
            lines = [line.strip() for line in fh]
        lines = [line for line in lines if line]
        records = []
        for index, line in enumerate(lines):
            try:
                records.append(LogRecord.from_json(line))
            except RecoveryError:
                if index == len(lines) - 1:
                    logger.warning(
                        "dropping torn WAL tail record in %s (crash mid-append)", path
                    )
                    break
                raise
        return records

    # -- appending ----------------------------------------------------------

    def append(self, kind: str, txn_id: int, payload: Optional[Dict[str, Any]] = None) -> LogRecord:
        """Append a record; COMMIT records are flushed to stable storage."""
        record = LogRecord(self._next_lsn, kind, txn_id, payload or {})
        self._next_lsn += 1
        self._records.append(record)
        obs.metrics().counter("oodb.wal.appends").inc()
        if self._file is not None:
            self._file.write(record.to_json() + "\n")
            if kind in (COMMIT, CHECKPOINT):
                started = time.perf_counter()
                self._file.flush()
                os.fsync(self._file.fileno())
                registry = obs.metrics()
                registry.counter("oodb.wal.fsyncs").inc()
                registry.histogram("oodb.wal.fsync_seconds").observe(
                    time.perf_counter() - started
                )
        return record

    # -- reading ---------------------------------------------------------------

    def records(self) -> Iterator[LogRecord]:
        """All records in LSN order (since the last truncation)."""
        return iter(list(self._records))

    def committed_transactions(self) -> set:
        """Transaction ids with a COMMIT record in the log."""
        return {r.txn_id for r in self._records if r.kind == COMMIT}

    def __len__(self) -> int:
        return len(self._records)

    # -- checkpointing -------------------------------------------------------------

    def truncate(self) -> None:
        """Discard all records (after a checkpoint snapshot is durable)."""
        self._records = []
        if self._file is not None:
            self._file.close()
            self._file = open(self._path, "w", encoding="utf-8")

    def close(self) -> None:
        """Close the underlying file, flushing buffered records."""
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
