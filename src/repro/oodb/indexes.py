"""Attribute indexes.

Two physical index kinds over ``(class, attribute)`` pairs:

* :class:`BTreeIndex` — supports equality and range predicates; backs the
  comparison operators of the query language (``>``, ``>=``, ``<``, ``<=``).
* :class:`HashIndex` — equality only, O(1) probes.

Indexes cover a class *including its subclasses* (the extent semantics of
the query language ``FROM x IN CLASS``), and are maintained on every
attribute write and object create/delete by the database facade.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Set

from repro.oodb.btree import BTree
from repro.oodb.oid import OID


class AttributeIndex:
    """Common interface of both index kinds."""

    kind = "abstract"

    def __init__(self, class_name: str, attribute: str) -> None:
        self.class_name = class_name
        self.attribute = attribute

    # subclasses implement:
    def insert(self, key: Any, oid: OID) -> None:
        raise NotImplementedError

    def remove(self, key: Any, oid: OID) -> None:
        raise NotImplementedError

    def lookup(self, key: Any) -> Set[OID]:
        raise NotImplementedError

    def supports_range(self) -> bool:
        """True when the index can serve inequality predicates."""
        return False

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[OID]:
        raise NotImplementedError(f"{self.kind} index cannot answer range queries")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} on {self.class_name}.{self.attribute}>"


class BTreeIndex(AttributeIndex):
    """Ordered index; keys must be mutually comparable."""

    kind = "btree"

    def __init__(self, class_name: str, attribute: str, min_degree: int = 16) -> None:
        super().__init__(class_name, attribute)
        self._tree = BTree(min_degree=min_degree)

    def insert(self, key: Any, oid: OID) -> None:
        if key is None:
            return  # NULLs are not indexed
        self._tree.insert(self._normalize(key), oid)

    def remove(self, key: Any, oid: OID) -> None:
        if key is None:
            return
        self._tree.remove(self._normalize(key), oid)

    def lookup(self, key: Any) -> Set[OID]:
        return self._tree.get(self._normalize(key))

    def supports_range(self) -> bool:
        return True

    def range(
        self,
        low: Optional[Any] = None,
        high: Optional[Any] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Set[OID]:
        result: Set[OID] = set()
        for _key, oids in self._tree.range(
            self._normalize(low) if low is not None else None,
            self._normalize(high) if high is not None else None,
            include_low,
            include_high,
        ):
            result |= oids
        return result

    @staticmethod
    def _normalize(key: Any) -> Any:
        # Keys are tagged with a type rank so (a) booleans stay distinct
        # from the ints they'd otherwise equal, and (b) a mixed-type key
        # space orders deterministically instead of raising TypeError.
        if isinstance(key, bool):
            return (0, key)
        if isinstance(key, (int, float)):
            return (1, key)
        if isinstance(key, str):
            return (2, key)
        return (3, key)

    @property
    def entry_count(self) -> int:
        """Number of indexed (value, OID) pairs."""
        return self._tree.entry_count


class HashIndex(AttributeIndex):
    """Equality-only index backed by a dict of sets."""

    kind = "hash"

    def __init__(self, class_name: str, attribute: str) -> None:
        super().__init__(class_name, attribute)
        self._table: Dict[Any, Set[OID]] = {}

    def insert(self, key: Any, oid: OID) -> None:
        if key is None:
            return
        self._table.setdefault(key, set()).add(oid)

    def remove(self, key: Any, oid: OID) -> None:
        if key is None:
            return
        bucket = self._table.get(key)
        if bucket is not None:
            bucket.discard(oid)
            if not bucket:
                del self._table[key]

    def lookup(self, key: Any) -> Set[OID]:
        return set(self._table.get(key, ()))

    @property
    def entry_count(self) -> int:
        """Number of indexed (value, OID) pairs."""
        return sum(len(bucket) for bucket in self._table.values())


class IndexCatalog:
    """All indexes of one database, addressable by (class, attribute)."""

    def __init__(self) -> None:
        self._indexes: Dict[tuple, AttributeIndex] = {}

    def create(self, class_name: str, attribute: str, kind: str = "btree") -> AttributeIndex:
        """Create (or return the existing) index on ``class.attribute``."""
        key = (class_name, attribute)
        if key in self._indexes:
            return self._indexes[key]
        if kind == "btree":
            index: AttributeIndex = BTreeIndex(class_name, attribute)
        elif kind == "hash":
            index = HashIndex(class_name, attribute)
        else:
            raise ValueError(f"unknown index kind {kind!r}")
        self._indexes[key] = index
        return index

    def drop(self, class_name: str, attribute: str) -> None:
        """Remove the index if present."""
        self._indexes.pop((class_name, attribute), None)

    def find(self, class_name: str, attribute: str) -> Optional[AttributeIndex]:
        """The index on exactly ``(class_name, attribute)``, or None."""
        return self._indexes.get((class_name, attribute))

    def covering(self, class_names: Iterable[str], attribute: str) -> Optional[AttributeIndex]:
        """An index on ``attribute`` for any of ``class_names`` (first match)."""
        for cname in class_names:
            index = self._indexes.get((cname, attribute))
            if index is not None:
                return index
        return None

    def indexes_for_class(self, class_name: str) -> list:
        """All indexes declared on ``class_name``."""
        return [idx for (cname, _a), idx in self._indexes.items() if cname == class_name]

    def all_indexes(self) -> list:
        """Every index in the catalog."""
        return list(self._indexes.values())
