"""Class schema: class definitions, attributes, methods, inheritance.

The paper's coupling is "provided in a database schema that is, for example,
imported into the application schema" (Section 3).  This module supplies that
machinery: a :class:`Schema` holds :class:`ClassDefinition` objects arranged
in a single-inheritance ``isA`` hierarchy; each class declares typed
attributes and named methods.  Element-type classes created by the SGML
loader (Section 4.1) and the coupling classes ``COLLECTION`` / ``IRSObject``
(Section 4.2) are all ordinary :class:`ClassDefinition` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import (
    SchemaError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownMethodError,
)

#: Attribute type names understood by the schema checker.  ``ANY`` disables
#: checking; ``OID`` values reference other objects; ``LIST`` holds ordered
#: references or scalars.
ATTRIBUTE_TYPES = ("STRING", "INT", "REAL", "BOOL", "OID", "LIST", "DICT", "ANY")


@dataclass(frozen=True)
class AttributeDefinition:
    """One typed attribute of a class."""

    name: str
    type_name: str = "ANY"
    default: Any = None

    def __post_init__(self) -> None:
        if self.type_name not in ATTRIBUTE_TYPES:
            raise SchemaError(
                f"unknown attribute type {self.type_name!r} for attribute "
                f"{self.name!r}; expected one of {ATTRIBUTE_TYPES}"
            )

    def check(self, value: Any) -> bool:
        """Return True when ``value`` is acceptable for this attribute."""
        if value is None or self.type_name == "ANY":
            return True
        from repro.oodb.oid import OID  # local import to avoid a cycle

        checkers: Dict[str, Callable[[Any], bool]] = {
            "STRING": lambda v: isinstance(v, str),
            "INT": lambda v: isinstance(v, int) and not isinstance(v, bool),
            "REAL": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
            "BOOL": lambda v: isinstance(v, bool),
            "OID": lambda v: isinstance(v, OID),
            "LIST": lambda v: isinstance(v, list),
            "DICT": lambda v: isinstance(v, dict),
        }
        return checkers[self.type_name](value)


@dataclass
class ClassDefinition:
    """A database class: attributes, methods and an optional superclass.

    Methods are plain Python callables registered by name.  They receive the
    object they are invoked on (a :class:`repro.oodb.objects.DBObject`) as
    their first argument, mirroring VODAK's method dispatch.
    """

    name: str
    superclass: Optional[str] = None
    attributes: Dict[str, AttributeDefinition] = field(default_factory=dict)
    methods: Dict[str, Callable[..., Any]] = field(default_factory=dict)

    def add_attribute(self, name: str, type_name: str = "ANY", default: Any = None) -> None:
        """Declare an attribute on this class."""
        if name in self.attributes:
            raise SchemaError(f"attribute {name!r} already defined on class {self.name!r}")
        self.attributes[name] = AttributeDefinition(name, type_name, default)

    def add_method(self, name: str, func: Callable[..., Any]) -> None:
        """Register a method implementation under ``name``."""
        self.methods[name] = func


class Schema:
    """The set of class definitions of one database.

    Resolution of attributes and methods walks the ``isA`` chain from the
    most specific class upward, so subclasses may override methods — this is
    exactly how element-type classes override ``getText`` or
    ``deriveIRSValue`` inherited from ``IRSObject``.
    """

    def __init__(self) -> None:
        self._classes: Dict[str, ClassDefinition] = {}

    # -- class management --------------------------------------------------

    def define_class(
        self,
        name: str,
        superclass: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
    ) -> ClassDefinition:
        """Create a class.  ``attributes`` maps attribute name to type name."""
        if name in self._classes:
            raise SchemaError(f"class {name!r} already defined")
        if superclass is not None and superclass not in self._classes:
            raise UnknownClassError(f"superclass {superclass!r} of {name!r} is not defined")
        cdef = ClassDefinition(name=name, superclass=superclass)
        for attr_name, type_name in (attributes or {}).items():
            cdef.add_attribute(attr_name, type_name)
        self._classes[name] = cdef
        self._check_acyclic(name)
        return cdef

    def _check_acyclic(self, name: str) -> None:
        seen = set()
        current: Optional[str] = name
        while current is not None:
            if current in seen:
                del self._classes[name]
                raise SchemaError(f"inheritance cycle involving class {name!r}")
            seen.add(current)
            current = self._classes[current].superclass

    def get_class(self, name: str) -> ClassDefinition:
        """Return the definition of class ``name``."""
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(f"class {name!r} is not defined") from None

    def has_class(self, name: str) -> bool:
        """Return True when ``name`` is a defined class."""
        return name in self._classes

    def class_names(self) -> List[str]:
        """All class names, in definition order."""
        return list(self._classes)

    # -- hierarchy ----------------------------------------------------------

    def ancestry(self, name: str) -> Iterator[ClassDefinition]:
        """Yield the class and its superclasses, most specific first."""
        current: Optional[str] = name
        while current is not None:
            cdef = self.get_class(current)
            yield cdef
            current = cdef.superclass

    def is_subclass(self, name: str, ancestor: str) -> bool:
        """Return True when ``name`` is ``ancestor`` or inherits from it."""
        return any(cdef.name == ancestor for cdef in self.ancestry(name))

    def subclasses(self, name: str) -> List[str]:
        """All classes that are ``name`` or inherit from it (for extents)."""
        self.get_class(name)  # validate
        return [cname for cname in self._classes if self.is_subclass(cname, name)]

    # -- member resolution ---------------------------------------------------

    def resolve_attribute(self, class_name: str, attr: str) -> AttributeDefinition:
        """Find ``attr`` on the class or its ancestors."""
        for cdef in self.ancestry(class_name):
            if attr in cdef.attributes:
                return cdef.attributes[attr]
        raise UnknownAttributeError(
            f"attribute {attr!r} is not defined on class {class_name!r} or its superclasses"
        )

    def has_attribute(self, class_name: str, attr: str) -> bool:
        """Return True when ``attr`` resolves on ``class_name``."""
        try:
            self.resolve_attribute(class_name, attr)
            return True
        except UnknownAttributeError:
            return False

    def resolve_method(self, class_name: str, method: str) -> Callable[..., Any]:
        """Find ``method`` on the class or its ancestors (override-aware)."""
        for cdef in self.ancestry(class_name):
            if method in cdef.methods:
                return cdef.methods[method]
        raise UnknownMethodError(
            f"method {method!r} is not defined on class {class_name!r} or its superclasses"
        )

    def has_method(self, class_name: str, method: str) -> bool:
        """Return True when ``method`` resolves on ``class_name``."""
        try:
            self.resolve_method(class_name, method)
            return True
        except UnknownMethodError:
            return False

    def all_attributes(self, class_name: str) -> Dict[str, AttributeDefinition]:
        """All attributes visible on ``class_name``, subclass ones winning."""
        merged: Dict[str, AttributeDefinition] = {}
        for cdef in reversed(list(self.ancestry(class_name))):
            merged.update(cdef.attributes)
        return merged
