"""``repro.oodb`` — the OODBMS substrate.

A from-scratch object-oriented database management system providing the
features the paper's coupling requires of VODAK ([Atk+89] manifesto):

* persistent objects with system-wide object identity (OIDs),
* classes with attributes, methods and single inheritance (``isA``),
* ACID transactions backed by a write-ahead log and strict two-phase locking,
* attribute indexes (B-tree and hash),
* a declarative, SQL-like query language (``ACCESS ... FROM ... WHERE ...``)
  modelled on the VODAK query examples of the paper, including method calls
  with the ``->`` arrow syntax,
* a query optimizer with index selection and method-based semantic rewrites.

The public entry point is :class:`repro.oodb.database.Database`.
"""

from repro.oodb.oid import OID
from repro.oodb.schema import ClassDefinition, AttributeDefinition, Schema
from repro.oodb.objects import DBObject
from repro.oodb.database import Database
from repro.oodb.transactions import Transaction

__all__ = [
    "OID",
    "ClassDefinition",
    "AttributeDefinition",
    "Schema",
    "DBObject",
    "Database",
    "Transaction",
]
