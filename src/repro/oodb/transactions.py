"""Transactions: atomicity and isolation on top of WAL + lock manager.

A :class:`Transaction` records an undo log (before-images kept in memory)
and writes a redo log to the WAL.  Rollback applies the undo log in reverse;
commit appends a COMMIT record (forcing the log) and releases all locks.

The database offers both explicit transactions (``db.begin()`` /
``txn.commit()``) and autocommit: operations outside an explicit transaction
run in a short implicit one.  This keeps application code — and the paper's
coupling methods — free of boilerplate while preserving recoverability.
"""

from __future__ import annotations

import itertools
import threading
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, List, Tuple

from repro.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.oodb.database import Database


class TransactionState(Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


_txn_counter = itertools.count(1)
_counter_lock = threading.Lock()


def _next_txn_id() -> int:
    with _counter_lock:
        return next(_txn_counter)


class Transaction:
    """One unit of work.  Usable as a context manager:

    >>> with db.begin() as txn:          # doctest: +SKIP
    ...     obj.set("YEAR", "1994")
    """

    def __init__(self, db: "Database") -> None:
        self._db = db
        self.txn_id = _next_txn_id()
        self.state = TransactionState.ACTIVE
        self._undo: List[Tuple[Callable[..., None], Tuple[Any, ...]]] = []

    # -- undo log -------------------------------------------------------------

    def record_undo(self, action: Callable[..., None], *args: Any) -> None:
        """Register an inverse action to run on rollback."""
        self._ensure_active()
        self._undo.append((action, args))

    # -- lifecycle -------------------------------------------------------------

    def _ensure_active(self) -> None:
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}, not active"
            )

    def commit(self) -> None:
        """Make all work durable and release locks."""
        self._ensure_active()
        self.state = TransactionState.COMMITTED
        self._undo.clear()
        self._db._finish_transaction(self, committed=True)

    def rollback(self) -> None:
        """Undo all work and release locks."""
        self._ensure_active()
        for action, args in reversed(self._undo):
            action(*args)
        self._undo.clear()
        self.state = TransactionState.ABORTED
        self._db._finish_transaction(self, committed=False)

    @property
    def is_active(self) -> bool:
        """True until commit or rollback."""
        return self.state is TransactionState.ACTIVE

    # -- context manager ----------------------------------------------------------

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if not self.is_active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def __repr__(self) -> str:
        return f"<Transaction {self.txn_id} {self.state.value}>"
