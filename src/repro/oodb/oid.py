"""Object identifiers.

Every database object is identified by an :class:`OID` that is unique within
one database and stable across restarts (the allocator's high-water mark is
persisted with the store).  The paper relies on OIDs as the glue between the
two systems: each IRS document carries the OID of the database object it
represents (Section 4.3), so OIDs must serialize to short, parseable strings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class OID:
    """An immutable, totally ordered object identifier.

    OIDs render as ``OID<n>`` and parse back via :meth:`parse`, which is the
    format stored as IRS-document metadata and written to IRS result files.
    """

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or self.value < 0:
            raise ValueError(f"OID value must be a non-negative int, got {self.value!r}")

    def __str__(self) -> str:
        return f"OID{self.value}"

    def __repr__(self) -> str:
        return f"OID({self.value})"

    @classmethod
    def parse(cls, text: str) -> "OID":
        """Parse the string form produced by ``str(oid)``.

        >>> OID.parse("OID42")
        OID(42)
        """
        if not text.startswith("OID"):
            raise ValueError(f"not an OID string: {text!r}")
        try:
            return cls(int(text[3:]))
        except ValueError as exc:
            raise ValueError(f"not an OID string: {text!r}") from exc


class OIDAllocator:
    """Thread-safe monotone OID allocator.

    The allocator never reuses values, even for deleted objects, because IRS
    result buffers and log records may still reference old OIDs.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start
        self._lock = threading.Lock()

    def allocate(self) -> OID:
        """Return a fresh OID."""
        with self._lock:
            oid = OID(self._next)
            self._next += 1
            return oid

    @property
    def high_water_mark(self) -> int:
        """The next value that would be allocated (for persistence)."""
        with self._lock:
            return self._next

    def advance_to(self, value: int) -> None:
        """Ensure future allocations are >= ``value`` (used by recovery)."""
        with self._lock:
            if value > self._next:
                self._next = value
