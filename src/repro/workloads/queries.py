"""Mixed-query workload generation.

Produces seeded streams of mixed queries in the shapes the benchmarks
exercise: thresholded content predicates over an element class, optionally
conjoined with structural attribute filters and navigation predicates —
the space spanned by the paper's two Section 4.4 examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.workloads.corpus import TOPICS


@dataclass(frozen=True)
class MixedQuery:
    """One generated mixed query, ready for ``Database.query``."""

    text: str
    bindings_template: Dict[str, object]
    irs_query: str
    threshold: float
    year: Optional[str] = None

    def bindings(self, collection) -> Dict[str, object]:
        """Bindings with the COLLECTION object filled in."""
        merged = dict(self.bindings_template)
        merged["coll"] = collection
        return merged


class MixedQueryGenerator:
    """Seeded generator of mixed queries over the corpus topics."""

    def __init__(
        self,
        seed: int = 7,
        element_class: str = "PARA",
        root_class: str = "MMFDOC",
        years: Tuple[str, ...] = ("1993", "1994", "1995"),
        thresholds: Tuple[float, ...] = (0.42, 0.45, 0.5, 0.55),
    ) -> None:
        self._rng = random.Random(seed)
        self._element_class = element_class
        self._root_class = root_class
        self._years = years
        self._thresholds = thresholds

    def _irs_query(self) -> str:
        shape = self._rng.random()
        topics = list(TOPICS)
        if shape < 0.5:
            return self._rng.choice(topics)
        first, second = self._rng.sample(topics, 2)
        operator = self._rng.choice(["#and", "#or", "#sum"])
        return f"{operator}({first} {second})"

    def content_only(self) -> MixedQuery:
        """``ACCESS p ... WHERE getIRSValue > t`` (paper query 1 shape)."""
        irs_query = self._irs_query()
        threshold = self._rng.choice(self._thresholds)
        text = (
            f"ACCESS p FROM p IN {self._element_class} "
            f"WHERE p -> getIRSValue(coll, $q) > {threshold}"
        )
        return MixedQuery(text, {"q": irs_query}, irs_query, threshold)

    def content_and_structure(self) -> MixedQuery:
        """Content predicate + year filter + containment join."""
        irs_query = self._irs_query()
        threshold = self._rng.choice(self._thresholds)
        year = self._rng.choice(self._years)
        text = (
            f"ACCESS p FROM p IN {self._element_class}, d IN {self._root_class} "
            f"WHERE d -> getAttributeValue('YEAR') = '{year}' AND "
            f"p -> getContaining('{self._root_class}') == d AND "
            f"p -> getIRSValue(coll, $q) > {threshold}"
        )
        return MixedQuery(text, {"q": irs_query}, irs_query, threshold, year)

    def consecutive_elements(self) -> MixedQuery:
        """The paper's second example: adjacent elements on two topics."""
        first, second = self._rng.sample(list(TOPICS), 2)
        threshold = min(self._thresholds)
        text = (
            f"ACCESS d -> getAttributeValue('TITLE') "
            f"FROM d IN {self._root_class}, p1 IN {self._element_class}, "
            f"p2 IN {self._element_class} "
            f"WHERE p1 -> getNext() == p2 AND "
            f"p1 -> getContaining('{self._root_class}') == d AND "
            f"p1 -> getIRSValue(coll, $q1) > {threshold} AND "
            f"p2 -> getIRSValue(coll, $q2) > {threshold}"
        )
        return MixedQuery(
            text, {"q1": first, "q2": second}, f"{first}+{second}", threshold
        )

    def workload(self, size: int = 20, shapes: Tuple[str, ...] = ("content", "structure")) -> List[MixedQuery]:
        """A list of generated queries drawn from the requested shapes."""
        makers = {
            "content": self.content_only,
            "structure": self.content_and_structure,
            "consecutive": self.consecutive_elements,
        }
        unknown = set(shapes) - set(makers)
        if unknown:
            raise ValueError(f"unknown query shapes: {sorted(unknown)}")
        return [makers[self._rng.choice(shapes)]() for _ in range(size)]
