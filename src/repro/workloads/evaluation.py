"""TREC-style retrieval evaluation: qrels, runs, summary measures.

The 1996 IR community evaluated systems with relevance judgments (qrels)
and ranked runs; this module provides that machinery for the reproduction's
experiments: mean average precision, precision-recall curves with the
classic 11-point interpolation, P@k, R-precision, and a paired sign test
for comparing two runs over the same topics.

A *run* is ``{topic_id: ranked list of doc keys}``; *qrels* are
``{topic_id: set of relevant doc keys}``.  Doc keys are strings (OIDs in
the coupled setting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from repro.workloads.metrics import average_precision, precision_at_k, recall

Qrels = Mapping[str, Set[str]]
Run = Mapping[str, Sequence[str]]

#: The classic 11 recall points.
RECALL_POINTS = tuple(i / 10 for i in range(11))


@dataclass(frozen=True)
class TopicResult:
    """Per-topic evaluation measures."""

    topic: str
    average_precision: float
    r_precision: float
    precision_at_5: float
    precision_at_10: float
    recall: float


@dataclass(frozen=True)
class RunEvaluation:
    """Aggregate evaluation of one run."""

    per_topic: Tuple[TopicResult, ...]

    @property
    def mean_average_precision(self) -> float:
        if not self.per_topic:
            return 0.0
        return sum(t.average_precision for t in self.per_topic) / len(self.per_topic)

    @property
    def mean_r_precision(self) -> float:
        if not self.per_topic:
            return 0.0
        return sum(t.r_precision for t in self.per_topic) / len(self.per_topic)

    def mean_precision_at(self, k: int) -> float:
        if not self.per_topic:
            return 0.0
        attr = {5: "precision_at_5", 10: "precision_at_10"}.get(k)
        if attr is None:
            raise ValueError("only P@5 and P@10 are aggregated")
        return sum(getattr(t, attr) for t in self.per_topic) / len(self.per_topic)


def r_precision(ranked: Sequence[str], relevant: Set[str]) -> float:
    """Precision at rank R where R = number of relevant documents."""
    if not relevant:
        return 0.0
    r = len(relevant)
    top = list(ranked)[:r]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / r


def evaluate_run(run: Run, qrels: Qrels) -> RunEvaluation:
    """Evaluate a run against qrels (topics without judgments are skipped)."""
    results = []
    for topic in sorted(qrels):
        relevant = qrels[topic]
        if not relevant:
            continue
        ranked = list(run.get(topic, ()))
        results.append(
            TopicResult(
                topic=topic,
                average_precision=average_precision(ranked, sorted(relevant)),
                r_precision=r_precision(ranked, relevant),
                precision_at_5=precision_at_k(ranked, sorted(relevant), 5) if ranked else 0.0,
                precision_at_10=precision_at_k(ranked, sorted(relevant), 10) if ranked else 0.0,
                recall=recall(ranked, sorted(relevant)),
            )
        )
    return RunEvaluation(tuple(results))


def interpolated_precision_recall(
    ranked: Sequence[str], relevant: Set[str]
) -> List[Tuple[float, float]]:
    """The 11-point interpolated precision-recall curve of one ranking."""
    if not relevant:
        return [(point, 0.0) for point in RECALL_POINTS]
    precisions: List[Tuple[float, float]] = []  # (recall, precision) at hits
    hits = 0
    for index, item in enumerate(ranked, start=1):
        if item in relevant:
            hits += 1
            precisions.append((hits / len(relevant), hits / index))
    curve = []
    for point in RECALL_POINTS:
        attained = [p for r, p in precisions if r >= point]
        curve.append((point, max(attained) if attained else 0.0))
    return curve


def mean_interpolated_curve(run: Run, qrels: Qrels) -> List[Tuple[float, float]]:
    """11-point curve averaged over topics."""
    totals = [0.0] * len(RECALL_POINTS)
    count = 0
    for topic, relevant in qrels.items():
        if not relevant:
            continue
        curve = interpolated_precision_recall(list(run.get(topic, ())), relevant)
        for index, (_point, precision) in enumerate(curve):
            totals[index] += precision
        count += 1
    if count == 0:
        return [(point, 0.0) for point in RECALL_POINTS]
    return [
        (point, totals[index] / count) for index, point in enumerate(RECALL_POINTS)
    ]


def sign_test(run_a: Run, run_b: Run, qrels: Qrels) -> Dict[str, float]:
    """Paired sign test on per-topic average precision.

    Returns wins for each run, ties, and the two-sided binomial p-value
    (exact, no scipy dependency needed for small topic counts).
    """
    eval_a = {t.topic: t.average_precision for t in evaluate_run(run_a, qrels).per_topic}
    eval_b = {t.topic: t.average_precision for t in evaluate_run(run_b, qrels).per_topic}
    wins_a = wins_b = ties = 0
    for topic in eval_a:
        delta = eval_a[topic] - eval_b.get(topic, 0.0)
        if abs(delta) < 1e-12:
            ties += 1
        elif delta > 0:
            wins_a += 1
        else:
            wins_b += 1
    n = wins_a + wins_b
    p_value = 1.0
    if n > 0:
        from math import comb

        k = min(wins_a, wins_b)
        tail = sum(comb(n, i) for i in range(0, k + 1)) / (2**n)
        p_value = min(1.0, 2 * tail)
    return {
        "wins_a": wins_a,
        "wins_b": wins_b,
        "ties": ties,
        "p_value": p_value,
    }


def run_from_results(results: Mapping[str, Mapping[str, float]]) -> Dict[str, List[str]]:
    """Turn ``{topic: {doc_key: score}}`` into a ranked run (score desc,
    key as deterministic tiebreaker)."""
    return {
        topic: [
            key
            for key, _score in sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        for topic, scores in results.items()
    }
